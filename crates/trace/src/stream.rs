//! Chunked, resumable trace decoding for streaming ingestion.
//!
//! [`StreamDecoder`] consumes the existing wire formats (binary or text,
//! sniffed from the first byte) in arbitrary chunk sizes and surfaces the
//! trace as it arrives: the metadata tables become available first (both
//! writers emit every table before any record body), then each task's
//! body fills in task-id order. Decoding is a pure state machine over the
//! bytes, so the resulting trace — and every [`StreamEvent`] boundary
//! except chunk-local [`Records`](StreamEvent::Records) coalescing — is
//! independent of how the stream was chunked.
//!
//! Error behavior matches the batch readers: parse errors carry the same
//! global byte offset (binary) or line number (text) that
//! [`read_binary`](crate::read_binary) / [`read_text`](crate::read_text)
//! would report, and a stream truncated mid-item fails at
//! [`finish`](StreamDecoder::finish) with the same error a batch read of
//! the truncated bytes produces.

use std::io::{ErrorKind, Read};

use crate::binary::{self, Reader, BINARY_VERSION, MAGIC, MAX_BODY_LEN};
use crate::error::ReadError;
use crate::ids::{NameId, ProcessId, QueueId, TaskId};
use crate::interner::Interner;
use crate::serialize::{TextAssembler, TextStep};
use crate::task::{EventOrigin, ListenerInfo, QueueInfo, TaskInfo, TaskKind};
use crate::trace::{Trace, TraceMeta};
use crate::validate::validate;

/// An incremental milestone reported by [`StreamDecoder::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamEvent {
    /// All metadata tables (names, queues, listeners, tasks) are decoded;
    /// [`StreamDecoder::trace`] is available from now on and its task set
    /// is final. Record bodies are still empty.
    TablesReady,
    /// `count` records were appended to `task`'s body. Consecutive
    /// records of one task within a push are coalesced into one event.
    Records {
        /// The task whose body grew.
        task: TaskId,
        /// How many records were appended.
        count: usize,
    },
    /// `task`'s body is complete; no further records will be added to it.
    BodyComplete {
        /// The completed task.
        task: TaskId,
    },
    /// The whole trace has been received. Call
    /// [`StreamDecoder::finish`] to validate and take ownership of it.
    End,
}

/// Coalesces consecutive record appends for one task into one event.
fn note_records(events: &mut Vec<StreamEvent>, task: TaskId) {
    if let Some(StreamEvent::Records { task: t, count }) = events.last_mut() {
        if *t == task {
            *count += 1;
            return;
        }
    }
    events.push(StreamEvent::Records { task, count: 1 });
}

/// A chunked trace decoder with resumable state.
///
/// Feed bytes with [`push`](StreamDecoder::push) in any chunk sizes
/// (including one byte at a time); the decoder buffers only the current
/// incomplete item. Once [`is_complete`](StreamDecoder::is_complete),
/// call [`finish`](StreamDecoder::finish) to validate and obtain the
/// [`Trace`].
///
/// After `push` returns an error the decoder is poisoned: the input is
/// malformed and further pushes will keep failing.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    inner: Inner,
}

#[derive(Debug, Default)]
enum Inner {
    /// No bytes seen yet; the first byte picks the format.
    #[default]
    Sniff,
    Binary(BinDecoder),
    Text(TextDecoder),
}

impl StreamDecoder {
    /// A decoder ready for the first chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one chunk, returning the milestones it completed.
    ///
    /// # Errors
    ///
    /// Returns the same [`ReadError`] a batch read of the stream would,
    /// as soon as the offending bytes arrive. Truncation is not an error
    /// here (more bytes may follow) — it surfaces in
    /// [`finish`](StreamDecoder::finish).
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<StreamEvent>, ReadError> {
        let mut events = Vec::new();
        self.push_into(bytes, &mut events)?;
        Ok(events)
    }

    /// Like [`push`](StreamDecoder::push), appending into `events`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`push`](StreamDecoder::push).
    pub fn push_into(
        &mut self,
        bytes: &[u8],
        events: &mut Vec<StreamEvent>,
    ) -> Result<(), ReadError> {
        if let Inner::Sniff = self.inner {
            let Some(&first) = bytes.first() else {
                return Ok(());
            };
            // Binary traces start with the "CAFT" magic; the text header
            // (and every text directive or comment) never starts with an
            // uppercase 'C'.
            self.inner = if first == MAGIC[0] {
                Inner::Binary(BinDecoder::new())
            } else {
                Inner::Text(TextDecoder::new())
            };
        }
        match &mut self.inner {
            Inner::Sniff => Ok(()),
            Inner::Binary(d) => d.push(bytes, events),
            Inner::Text(d) => d.push(bytes, events),
        }
    }

    /// The decoded trace so far, once the tables are complete.
    ///
    /// `None` before [`StreamEvent::TablesReady`]. The task, queue,
    /// listener, and name tables are final; record bodies grow with each
    /// push.
    pub fn trace(&self) -> Option<&Trace> {
        match &self.inner {
            Inner::Sniff => None,
            Inner::Binary(d) => d.trace.as_ref(),
            Inner::Text(d) => d.asm.trace(),
        }
    }

    /// True once the full trace has been received ([`StreamEvent::End`]).
    pub fn is_complete(&self) -> bool {
        match &self.inner {
            Inner::Sniff => false,
            Inner::Binary(d) => matches!(d.state, BinState::Done),
            Inner::Text(d) => d.asm.is_done(),
        }
    }

    /// Bytes buffered waiting for the current item to complete.
    ///
    /// This is the decoder's only unbounded-input exposure and it is
    /// small by construction: at most one partial record, table entry, or
    /// line, plus any bytes of the last chunk not yet parsed.
    pub fn buffered_bytes(&self) -> usize {
        match &self.inner {
            Inner::Sniff => 0,
            Inner::Binary(d) => d.buf.len(),
            Inner::Text(d) => d.buf.len(),
        }
    }

    /// Validates the completed trace and returns it.
    ///
    /// # Errors
    ///
    /// If the stream ended early, returns the truncation error a batch
    /// read of the received bytes would produce; if the trace is
    /// structurally invalid, returns [`ReadError::Invalid`].
    pub fn finish(self) -> Result<Trace, ReadError> {
        let trace = match self.inner {
            Inner::Sniff => return Err(ReadError::parse(0, "empty input")),
            Inner::Binary(d) => d.finish()?,
            Inner::Text(d) => d.finish()?,
        };
        validate(&trace)?;
        Ok(trace)
    }
}

// ---- binary -------------------------------------------------------------

/// Which item of the binary layout is expected next.
#[derive(Clone, Copy, Debug)]
enum BinState {
    /// Magic, version, and the fixed meta fields.
    Header,
    NameCount,
    Name {
        index: usize,
        total: usize,
    },
    QueueCount,
    Queue {
        remaining: usize,
    },
    ListenerCount,
    Listener {
        remaining: usize,
    },
    TaskCount,
    Task {
        remaining: usize,
    },
    BodyLen {
        task: usize,
    },
    Record {
        task: usize,
        remaining: usize,
    },
    Done,
}

#[derive(Debug)]
struct BinDecoder {
    /// Unparsed tail of the stream (the current incomplete item).
    buf: Vec<u8>,
    /// Global offset of `buf[0]`; keeps error offsets batch-identical.
    consumed: u64,
    state: BinState,
    // Tables staged until all are decoded, then moved into `trace`.
    meta: TraceMeta,
    names: Interner,
    queues: Vec<QueueInfo>,
    listeners: Vec<ListenerInfo>,
    tasks: Vec<TaskInfo>,
    external: Vec<(u32, TaskId)>,
    task_count: usize,
    process_count: u32,
    trace: Option<Trace>,
}

impl BinDecoder {
    fn new() -> Self {
        Self {
            buf: Vec::new(),
            consumed: 0,
            state: BinState::Header,
            meta: TraceMeta::default(),
            names: Interner::new(),
            queues: Vec::new(),
            listeners: Vec::new(),
            tasks: Vec::new(),
            external: Vec::new(),
            task_count: 0,
            process_count: 0,
            trace: None,
        }
    }

    fn push(&mut self, bytes: &[u8], events: &mut Vec<StreamEvent>) -> Result<(), ReadError> {
        self.buf.extend_from_slice(bytes);
        let buf = std::mem::take(&mut self.buf);
        let mut pos = 0usize;
        let mut result = Ok(());
        while !matches!(self.state, BinState::Done) {
            match self.step(&buf[pos..], events) {
                Ok(n) => {
                    pos += n;
                    self.consumed += n as u64;
                }
                // The input slice can only fail with EOF: the item needs
                // bytes that have not arrived yet. Rewind (nothing was
                // consumed) and wait for the next chunk.
                Err(ReadError::Io(ref e)) if e.kind() == ErrorKind::UnexpectedEof => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.buf = buf;
        self.buf.drain(..pos);
        if result.is_ok() && matches!(self.state, BinState::Done) && !self.buf.is_empty() {
            result = Err(ReadError::parse(
                self.consumed,
                "unexpected data after end of trace",
            ));
        }
        result
    }

    /// Attempts to parse exactly one item of the current state from
    /// `data`, returning how many bytes it consumed.
    ///
    /// The parsing logic mirrors [`read_binary`](crate::read_binary) item
    /// for item, with the reader anchored at the item's global offset so
    /// errors are positioned identically.
    fn step(&mut self, data: &[u8], events: &mut Vec<StreamEvent>) -> Result<usize, ReadError> {
        let base = self.consumed;
        let mut r = Reader::new_at(data, base);
        match self.state {
            BinState::Header => {
                let mut magic = [0u8; 4];
                r.input.read_exact(&mut magic)?;
                r.offset += 4;
                if &magic != MAGIC {
                    return Err(ReadError::parse(0, "bad magic; not a cafa binary trace"));
                }
                let version = r.u32()?;
                if version != BINARY_VERSION {
                    return Err(ReadError::UnsupportedVersion { found: version });
                }
                self.meta.app = r.string()?;
                self.meta.seed = r.u64()?;
                self.meta.virtual_ms = r.u64()?;
                self.process_count = r.u32()?;
                self.state = BinState::NameCount;
            }
            BinState::NameCount => {
                let total = binary::table_count(&mut r, "name")?;
                self.state = if total == 0 {
                    BinState::QueueCount
                } else {
                    BinState::Name { index: 0, total }
                };
            }
            BinState::Name { index, total } => {
                let s = r.string()?;
                let id = self.names.intern(&s);
                if id.index() != index {
                    return Err(ReadError::parse(r.offset, "duplicate interned string"));
                }
                self.state = if index + 1 == total {
                    BinState::QueueCount
                } else {
                    BinState::Name {
                        index: index + 1,
                        total,
                    }
                };
            }
            BinState::QueueCount => {
                let total = binary::table_count(&mut r, "queue")?;
                self.queues.reserve(total.min(1 << 16));
                self.state = if total == 0 {
                    BinState::ListenerCount
                } else {
                    BinState::Queue { remaining: total }
                };
            }
            BinState::Queue { remaining } => {
                let p = r.u32()?;
                let process = if p == 0 {
                    None
                } else {
                    Some(ProcessId::new(p - 1))
                };
                self.queues.push(QueueInfo {
                    process,
                    events: Vec::new(),
                });
                self.state = if remaining == 1 {
                    BinState::ListenerCount
                } else {
                    BinState::Queue {
                        remaining: remaining - 1,
                    }
                };
            }
            BinState::ListenerCount => {
                let total = binary::table_count(&mut r, "listener")?;
                self.listeners.reserve(total.min(1 << 16));
                self.state = if total == 0 {
                    BinState::TaskCount
                } else {
                    BinState::Listener { remaining: total }
                };
            }
            BinState::Listener { remaining } => {
                self.listeners.push(ListenerInfo {
                    package: NameId::new(r.u32()?),
                });
                self.state = if remaining == 1 {
                    BinState::TaskCount
                } else {
                    BinState::Listener {
                        remaining: remaining - 1,
                    }
                };
            }
            BinState::TaskCount => {
                let total = binary::table_count(&mut r, "task")?;
                self.task_count = total;
                self.tasks.reserve(total.min(1 << 16));
                if total == 0 {
                    self.tables_ready(events);
                } else {
                    self.state = BinState::Task { remaining: total };
                }
            }
            BinState::Task { remaining } => {
                self.read_task(&mut r)?;
                if remaining == 1 {
                    self.tables_ready(events);
                } else {
                    self.state = BinState::Task {
                        remaining: remaining - 1,
                    };
                }
            }
            BinState::BodyLen { task } => {
                let len = r.u64()?;
                if len > MAX_BODY_LEN {
                    return Err(ReadError::parse(r.offset, "implausible body length"));
                }
                let len = len as usize;
                let trace = self.trace.as_mut().expect("tables are ready");
                trace.bodies[task] = Vec::with_capacity(len.min(1 << 16));
                if len == 0 {
                    events.push(StreamEvent::BodyComplete {
                        task: TaskId::from_usize(task),
                    });
                    self.next_body(task, events);
                } else {
                    self.state = BinState::Record {
                        task,
                        remaining: len,
                    };
                }
            }
            BinState::Record { task, remaining } => {
                let rec = binary::read_record(&mut r)?;
                let trace = self.trace.as_mut().expect("tables are ready");
                trace.bodies[task].push(rec);
                let task_id = TaskId::from_usize(task);
                note_records(events, task_id);
                if remaining == 1 {
                    events.push(StreamEvent::BodyComplete { task: task_id });
                    self.next_body(task, events);
                } else {
                    self.state = BinState::Record {
                        task,
                        remaining: remaining - 1,
                    };
                }
            }
            BinState::Done => {
                return Err(ReadError::parse(base, "unexpected data after end of trace"))
            }
        }
        Ok((r.offset - base) as usize)
    }

    /// Decodes one task-table entry, mirroring the batch reader.
    ///
    /// All decoder-state mutations happen only after the entry has fully
    /// parsed: a partially-received entry fails with `UnexpectedEof` and
    /// is re-attempted from scratch on the next chunk, so mid-entry side
    /// effects would be applied twice.
    fn read_task(&mut self, r: &mut Reader<&[u8]>) -> Result<(), ReadError> {
        let i = self.tasks.len();
        let id = TaskId::from_usize(i);
        let kind = match r.byte()? {
            0 => {
                let process = ProcessId::new(r.u32()?);
                let forked_at = match r.byte()? {
                    0 => None,
                    1 => Some(r.opref()?),
                    b => return Err(ReadError::parse(r.offset, format!("bad fork flag {b}"))),
                };
                TaskKind::Thread { process, forked_at }
            }
            1 => {
                let queue = QueueId::new(r.u32()?);
                let seq = r.u32()?;
                let delay_ms = r.u64()?;
                let origin = match r.byte()? {
                    0 => EventOrigin::Sent { send: r.opref()? },
                    1 => EventOrigin::SentAtFront { send: r.opref()? },
                    2 => EventOrigin::External { sequence: r.u32()? },
                    b => return Err(ReadError::parse(r.offset, format!("bad origin tag {b}"))),
                };
                if self.queues.get(queue.index()).is_none() {
                    return Err(ReadError::parse(r.offset, "event names unknown queue"));
                }
                if seq as usize >= self.task_count {
                    return Err(ReadError::parse(r.offset, "event seq out of range"));
                }
                TaskKind::Event {
                    queue,
                    seq,
                    origin,
                    delay_ms,
                }
            }
            b => return Err(ReadError::parse(r.offset, format!("bad task kind {b}"))),
        };
        let name = NameId::new(r.u32()?);
        // Entry fully parsed; commit the side effects.
        if let TaskKind::Event {
            queue, seq, origin, ..
        } = kind
        {
            if let EventOrigin::External { sequence } = origin {
                self.external.push((sequence, id));
            }
            let q = &mut self.queues[queue.index()];
            let si = seq as usize;
            if q.events.len() <= si {
                q.events.resize(si + 1, TaskId::new(u32::MAX));
            }
            q.events[si] = id;
        }
        self.tasks.push(TaskInfo { id, kind, name });
        Ok(())
    }

    /// Moves the completed tables into the live trace and emits
    /// [`StreamEvent::TablesReady`].
    fn tables_ready(&mut self, events: &mut Vec<StreamEvent>) {
        let mut external = std::mem::take(&mut self.external);
        external.sort_by_key(|(seq, _)| *seq);
        let external_order: Vec<TaskId> = external.into_iter().map(|(_, t)| t).collect();
        self.trace = Some(Trace {
            meta: std::mem::take(&mut self.meta),
            names: std::mem::take(&mut self.names),
            tasks: std::mem::take(&mut self.tasks),
            bodies: vec![Vec::new(); self.task_count],
            queues: std::mem::take(&mut self.queues),
            listeners: std::mem::take(&mut self.listeners),
            external_order,
            process_count: self.process_count,
        });
        events.push(StreamEvent::TablesReady);
        if self.task_count == 0 {
            self.state = BinState::Done;
            events.push(StreamEvent::End);
        } else {
            self.state = BinState::BodyLen { task: 0 };
        }
    }

    /// Advances to the next task's body, or completes the stream.
    fn next_body(&mut self, task: usize, events: &mut Vec<StreamEvent>) {
        if task + 1 == self.task_count {
            self.state = BinState::Done;
            events.push(StreamEvent::End);
        } else {
            self.state = BinState::BodyLen { task: task + 1 };
        }
    }

    fn finish(mut self) -> Result<Trace, ReadError> {
        if !matches!(self.state, BinState::Done) {
            // Re-attempt the pending item against the leftover bytes so
            // truncation surfaces exactly as a batch read would report
            // it (an UnexpectedEof I/O error at the same position).
            let buf = std::mem::take(&mut self.buf);
            let mut events = Vec::new();
            let mut pos = 0usize;
            while !matches!(self.state, BinState::Done) {
                let n = self.step(&buf[pos..], &mut events)?;
                pos += n;
                self.consumed += n as u64;
            }
        }
        Ok(self.trace.expect("done implies a trace"))
    }
}

// ---- text ---------------------------------------------------------------

#[derive(Debug)]
struct TextDecoder {
    /// Bytes of the current incomplete line.
    buf: Vec<u8>,
    line_no: u64,
    asm: TextAssembler,
    tables_done: bool,
}

impl TextDecoder {
    fn new() -> Self {
        Self {
            buf: Vec::new(),
            line_no: 0,
            asm: TextAssembler::new(),
            tables_done: false,
        }
    }

    fn push(&mut self, bytes: &[u8], events: &mut Vec<StreamEvent>) -> Result<(), ReadError> {
        self.buf.extend_from_slice(bytes);
        let buf = std::mem::take(&mut self.buf);
        let mut start = 0usize;
        let mut result = Ok(());
        while let Some(nl) = buf[start..].iter().position(|&b| b == b'\n') {
            let line = &buf[start..start + nl];
            if let Err(e) = self.feed_line(line, events) {
                result = Err(e);
                start += nl + 1;
                break;
            }
            start += nl + 1;
        }
        self.buf = buf;
        self.buf.drain(..start);
        result
    }

    /// Consumes one raw line (without its newline).
    fn feed_line(&mut self, raw: &[u8], events: &mut Vec<StreamEvent>) -> Result<(), ReadError> {
        self.line_no += 1;
        let line = std::str::from_utf8(raw)
            .map_err(|_| ReadError::parse(self.line_no, "invalid UTF-8"))?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        let step = self.asm.feed(line, self.line_no)?;
        match step {
            TextStep::Table => {}
            TextStep::BodyStart { task, done } => {
                if !self.tables_done {
                    self.asm.seal_tables()?;
                    self.tables_done = true;
                    events.push(StreamEvent::TablesReady);
                }
                if done {
                    events.push(StreamEvent::BodyComplete { task });
                }
            }
            TextStep::Record { task, done } => {
                note_records(events, task);
                if done {
                    events.push(StreamEvent::BodyComplete { task });
                }
            }
            TextStep::End => {
                if !self.tables_done {
                    // A trace with no bodies at all: seal now so the
                    // table set is still surfaced before `End`.
                    self.asm.seal_tables()?;
                    self.tables_done = true;
                    events.push(StreamEvent::TablesReady);
                }
                events.push(StreamEvent::End);
            }
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Trace, ReadError> {
        // A final line without a trailing newline is still a line.
        if !self.buf.is_empty() {
            let buf = std::mem::take(&mut self.buf);
            let mut events = Vec::new();
            self.feed_line(&buf, &mut events)?;
        }
        self.asm.finish(self.line_no)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::{ObjId, Pc, VarId};
    use crate::record::DerefKind;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("stream-sample");
        b.set_seed(11);
        b.set_virtual_ms(500);
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let l = b.add_listener("android.view");
        let ev = b.post(t, q, "onClick", 0);
        let ext = b.external(q, "touch");
        b.process_event(ev);
        b.register(ev, l);
        b.obj_read(ev, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x10));
        b.deref(ev, ObjId::new(1), Pc::new(0x14), DerefKind::Field);
        b.process_event(ext);
        b.obj_write(ext, VarId::new(0), None, Pc::new(0x20));
        let w = b.fork(t, p, "worker");
        b.read(w, VarId::new(2));
        b.join(t, w);
        b.finish().expect("valid")
    }

    fn decode_chunked(bytes: &[u8], chunk: usize) -> (Trace, Vec<StreamEvent>) {
        let mut d = StreamDecoder::new();
        let mut events = Vec::new();
        for c in bytes.chunks(chunk.max(1)) {
            d.push_into(c, &mut events).expect("valid stream");
        }
        assert!(d.is_complete());
        (d.finish().expect("valid trace"), events)
    }

    #[test]
    fn binary_chunked_decode_matches_batch() {
        let trace = sample_trace();
        let bytes = crate::binary::to_binary_vec(&trace);
        for chunk in [1, 3, 13, 64, bytes.len()] {
            let (got, events) = decode_chunked(&bytes, chunk);
            assert_eq!(got, trace, "chunk size {chunk}");
            assert_eq!(events.first(), Some(&StreamEvent::TablesReady));
            assert_eq!(events.last(), Some(&StreamEvent::End));
        }
    }

    #[test]
    fn text_chunked_decode_matches_batch() {
        let trace = sample_trace();
        let bytes = crate::serialize::to_text_string(&trace).into_bytes();
        for chunk in [1, 7, 4096] {
            let (got, events) = decode_chunked(&bytes, chunk);
            assert_eq!(got, trace, "chunk size {chunk}");
            assert_eq!(events.first(), Some(&StreamEvent::TablesReady));
            assert_eq!(events.last(), Some(&StreamEvent::End));
        }
    }

    #[test]
    fn record_counts_cover_every_record() {
        let trace = sample_trace();
        let total: usize = trace.stats().records;
        for bytes in [
            crate::binary::to_binary_vec(&trace),
            crate::serialize::to_text_string(&trace).into_bytes(),
        ] {
            let (_, events) = decode_chunked(&bytes, 5);
            let sum: usize = events
                .iter()
                .filter_map(|e| match e {
                    StreamEvent::Records { count, .. } => Some(count),
                    _ => None,
                })
                .sum();
            assert_eq!(sum, total);
            let completes = events
                .iter()
                .filter(|e| matches!(e, StreamEvent::BodyComplete { .. }))
                .count();
            assert_eq!(completes, trace.task_count());
        }
    }

    #[test]
    fn trace_is_live_after_tables_ready() {
        let trace = sample_trace();
        let bytes = crate::binary::to_binary_vec(&trace);
        let mut d = StreamDecoder::new();
        let mut seen_tables = false;
        for c in bytes.chunks(9) {
            for e in d.push(c).expect("valid") {
                if e == StreamEvent::TablesReady {
                    seen_tables = true;
                    let live = d.trace().expect("live trace");
                    assert_eq!(live.task_count(), trace.task_count());
                }
            }
        }
        assert!(seen_tables);
    }

    #[test]
    fn truncated_stream_fails_at_finish_like_batch() {
        let trace = sample_trace();
        let bytes = crate::binary::to_binary_vec(&trace);
        let cut = bytes.len() - 3;
        let mut d = StreamDecoder::new();
        d.push(&bytes[..cut]).expect("no error until finish");
        assert!(!d.is_complete());
        let stream_err = d.finish().expect_err("truncated");
        let batch_err = crate::binary::from_binary_slice(&bytes[..cut]).expect_err("truncated");
        assert_eq!(stream_err.to_string(), batch_err.to_string());
    }

    #[test]
    fn corruption_sweep_matches_batch() {
        let trace = sample_trace();
        let bytes = crate::binary::to_binary_vec(&trace);
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            let batch = crate::binary::from_binary_slice(&mutated);
            let mut d = StreamDecoder::new();
            let mut push_err = None;
            for c in mutated.chunks(3) {
                if let Err(e) = d.push(c) {
                    push_err = Some(e);
                    break;
                }
            }
            let stream = match push_err {
                Some(e) => Err(e),
                None => d.finish(),
            };
            match (batch, stream) {
                (Ok(b), Ok(s)) => assert_eq!(b, s, "pos {i}"),
                // A corrupted length can make the batch parse stop early
                // and silently ignore trailing bytes; the stream decoder
                // rejects them instead.
                (Ok(_), Err(ReadError::Parse { message, .. }))
                    if message == "unexpected data after end of trace" => {}
                // Corrupting the first magic byte reroutes the sniffer to
                // the text parser, which reports a different (but still
                // typed) header error.
                (Err(_), Err(_)) if i == 0 => {}
                (Err(b), Err(s)) => {
                    assert_eq!(b.to_string(), s.to_string(), "pos {i}");
                }
                (b, s) => panic!("pos {i}: batch {b:?} vs stream {s:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let trace = sample_trace();
        let mut bytes = crate::binary::to_binary_vec(&trace);
        bytes.push(0x01);
        let mut d = StreamDecoder::new();
        let mut failed = false;
        for c in bytes.chunks(7) {
            if d.push(c).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "garbage after the trace must error");
    }

    #[test]
    fn text_without_trailing_newline_completes_at_finish() {
        let trace = sample_trace();
        let text = crate::serialize::to_text_string(&trace);
        let bytes = text.trim_end().as_bytes();
        let mut d = StreamDecoder::new();
        d.push(bytes).expect("valid");
        // The final `end` line has no newline, so it is still buffered.
        assert!(!d.is_complete());
        assert_eq!(d.finish().expect("completes at finish"), trace);
    }
}
