//! Strongly-typed identifiers used throughout a trace.
//!
//! Every entity that can appear in a trace record — tasks, queues,
//! processes, variables, heap objects, monitors, listeners, Binder
//! transactions, interned names — gets its own index newtype so that the
//! compiler rejects category errors (passing a monitor where a variable is
//! expected). All ids are dense `u32` indexes into tables owned by
//! [`Trace`](crate::Trace).

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }

            /// Returns the raw index.
            #[inline]
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// Returns the raw index as `usize`, for table lookups.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// A task: either a regular thread or a single event execution.
    ///
    /// Tasks are the unit of logical concurrency in the model of §3.2 of
    /// the paper: "a number of logically concurrent tasks, which are
    /// either events or regular threads".
    TaskId, "t"
);
id_type!(
    /// An event queue. Each queue is drained by exactly one looper.
    QueueId, "q"
);
id_type!(
    /// A simulated OS process (address space + Binder endpoint).
    ProcessId, "p"
);
id_type!(
    /// A shared variable (a field slot holding either a scalar or an
    /// object pointer).
    VarId, "v"
);
id_type!(
    /// A heap object identity, as assigned by the virtual machine
    /// (§5.2: "a unique object ID for each object created").
    ObjId, "o"
);
id_type!(
    /// A monitor used for `lock`/`unlock`/`wait`/`notify`.
    MonitorId, "m"
);
id_type!(
    /// An event listener registered with the runtime (§3.2).
    ListenerId, "l"
);
id_type!(
    /// A Binder RPC transaction id (§5.2: "a unique transaction ID is
    /// generated each time a process initiates a RPC call").
    TxnId, "x"
);
id_type!(
    /// An interned string (method names, package names, app symbols).
    NameId, "n"
);

/// A bytecode address inside the (simulated) Dalvik method space.
///
/// The if-guard check of §4.3 reasons about branch source and target
/// addresses, so code positions are first-class in the trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pc(u32);

impl Pc {
    /// Creates a code address.
    #[inline]
    pub const fn new(addr: u32) -> Self {
        Self(addr)
    }

    /// Returns the raw address.
    #[inline]
    pub const fn addr(self) -> u32 {
        self.0
    }

    /// Returns the address offset by `delta` (may be negative for
    /// backward branches).
    #[inline]
    pub fn offset(self, delta: i32) -> Pc {
        Pc(self.0.wrapping_add(delta as u32))
    }

    /// Size of one method's address block under the simulated code
    /// layout: every method occupies one 4 KiB-aligned block, so a
    /// method never spans a block boundary.
    pub const METHOD_BLOCK: u32 = 0x1000;

    /// Base address of the method containing this address, under the
    /// block layout convention.
    #[inline]
    pub fn method_base(self) -> Pc {
        Pc(self.0 & !(Self::METHOD_BLOCK - 1))
    }

    /// One past the last address of the containing method ("∞" in the
    /// if-guard regions of the paper's Figure 6).
    #[inline]
    pub fn method_end(self) -> Pc {
        Pc(self.method_base().0 + Self::METHOD_BLOCK)
    }

    /// True when both addresses fall in the same method block.
    #[inline]
    pub fn same_method(self, other: Pc) -> bool {
        self.method_base() == other.method_base()
    }
}

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{:#x}", self.0)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A position inside a trace: the `index`-th record of task `task`.
///
/// `OpRef` is the coordinate system of the happens-before relation: the
/// query "does operation *a* happen before operation *b*" is asked of two
/// `OpRef`s. Ordering within one task is just index order (program order,
/// §3.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpRef {
    /// The task the operation belongs to.
    pub task: TaskId,
    /// The index of the record within the task body.
    pub index: u32,
}

impl OpRef {
    /// Creates a reference to the `index`-th record of `task`.
    #[inline]
    pub const fn new(task: TaskId, index: u32) -> Self {
        Self { task, index }
    }
}

impl fmt::Debug for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.task, self.index)
    }
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.task, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let t = TaskId::new(7);
        assert_eq!(t.as_u32(), 7);
        assert_eq!(t.index(), 7);
        assert_eq!(TaskId::from_usize(7), t);
        assert_eq!(u32::from(t), 7);
    }

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(TaskId::new(3).to_string(), "t3");
        assert_eq!(QueueId::new(0).to_string(), "q0");
        assert_eq!(VarId::new(12).to_string(), "v12");
        assert_eq!(format!("{:?}", MonitorId::new(1)), "m1");
    }

    #[test]
    fn id_ordering_follows_index() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert_eq!(ObjId::new(5), ObjId::new(5));
    }

    #[test]
    fn pc_offsets() {
        let pc = Pc::new(0x100);
        assert_eq!(pc.offset(0x20).addr(), 0x120);
        assert_eq!(pc.offset(-0x10).addr(), 0xf0);
        assert_eq!(pc.to_string(), "0x100");
    }

    #[test]
    fn opref_orders_by_task_then_index() {
        let a = OpRef::new(TaskId::new(0), 5);
        let b = OpRef::new(TaskId::new(0), 6);
        let c = OpRef::new(TaskId::new(1), 0);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "t0[5]");
    }

    #[test]
    #[should_panic(expected = "id index overflows u32")]
    fn from_usize_panics_on_overflow() {
        let _ = TaskId::from_usize(usize::MAX);
    }
}
