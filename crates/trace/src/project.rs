//! Projection of a trace onto a subset of its tasks.
//!
//! The island-partitioned analysis pass splits a trace into causally
//! independent sub-traces and analyzes each on its own worker. A
//! sub-trace must be a real [`Trace`] — the happens-before engine and
//! the detector know nothing about partitions — so this module builds
//! one: the selected tasks keep their bodies verbatim and are densely
//! renumbered in id order, every task-, queue-, and position-valued
//! reference is rewritten to the new coordinates, and everything
//! id-stable across the cut (names, listeners, monitors, variables,
//! processes) is carried over unchanged.
//!
//! The caller must hand over a **closed** task set: every task named by
//! a record of a selected task (fork/join children, send targets),
//! every fork site of a selected thread, and every event of every
//! queue that any selected event runs on must itself be selected.
//! Closure violations are a caller bug and panic. The weakly-connected
//! components of the causality skeleton (see `cafa-engine`) are closed
//! by construction.

use crate::ids::{OpRef, QueueId, TaskId};
use crate::record::Record;
use crate::task::{EventOrigin, QueueInfo, TaskInfo, TaskKind};
use crate::trace::Trace;

/// A sub-trace plus the maps back to the original coordinates.
#[derive(Clone, Debug)]
pub struct Projection {
    /// The projected trace. Task and queue ids are dense and ordered
    /// the same way as in the source trace; record bodies, names,
    /// listeners, and all other ids are unchanged.
    pub trace: Trace,
    /// For each projected task id (by index), the source [`TaskId`].
    pub tasks: Vec<TaskId>,
    /// For each projected queue id (by index), the source [`QueueId`].
    pub queues: Vec<QueueId>,
}

impl Projection {
    /// Maps a position in the projected trace back to the source
    /// trace. Record indexes are unchanged by projection.
    ///
    /// # Panics
    ///
    /// Panics if the task is out of range for the projection.
    pub fn unproject(&self, at: OpRef) -> OpRef {
        OpRef::new(self.tasks[at.task.index()], at.index)
    }
}

impl Trace {
    /// Projects the trace onto `tasks`, producing a self-contained
    /// sub-trace (see the [module docs](self::super::project)).
    ///
    /// `tasks` must be strictly increasing source task ids, closed
    /// under record references and queue co-membership.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is unsorted, contains duplicates or
    /// out-of-range ids, or is not closed.
    pub fn project(&self, tasks: &[TaskId]) -> Projection {
        assert!(
            tasks.windows(2).all(|w| w[0] < w[1]),
            "projection task set must be strictly increasing"
        );
        if let Some(&last) = tasks.last() {
            assert!(last.index() < self.task_count(), "task {last} out of range");
        }

        // Dense task remap, old index -> new id.
        const UNMAPPED: u32 = u32::MAX;
        let mut task_map = vec![UNMAPPED; self.task_count()];
        for (new, &old) in tasks.iter().enumerate() {
            task_map[old.index()] = new as u32;
        }
        let map_task = |t: TaskId| -> TaskId {
            let new = task_map[t.index()];
            assert!(new != UNMAPPED, "projection not closed: {t} not selected");
            TaskId::new(new)
        };
        let map_at = |at: OpRef| OpRef::new(map_task(at.task), at.index);

        // Queues: a queue is included iff any selected event runs on
        // it, and then all of its events must be selected (the queue
        // rules and the conventional total order relate every pair).
        let mut queue_included = vec![false; self.queue_count()];
        for &t in tasks {
            if let Some(q) = self.task(t).queue() {
                queue_included[q.index()] = true;
            }
        }
        let mut queue_map = vec![UNMAPPED; self.queue_count()];
        let mut queues: Vec<QueueId> = Vec::new();
        let mut new_queues: Vec<QueueInfo> = Vec::new();
        for (i, included) in queue_included.iter().enumerate() {
            if !included {
                continue;
            }
            let old = QueueId::from_usize(i);
            queue_map[i] = queues.len() as u32;
            queues.push(old);
            let q = self.queue(old);
            new_queues.push(QueueInfo {
                process: q.process,
                events: q.events.iter().map(|&e| map_task(e)).collect(),
            });
        }
        let map_queue = |q: QueueId| -> QueueId {
            let new = queue_map[q.index()];
            assert!(new != UNMAPPED, "projection not closed: {q} not selected");
            QueueId::new(new)
        };

        let mut new_tasks: Vec<TaskInfo> = Vec::with_capacity(tasks.len());
        let mut new_bodies: Vec<Vec<Record>> = Vec::with_capacity(tasks.len());
        for (new, &old) in tasks.iter().enumerate() {
            let info = self.task(old);
            let kind = match info.kind {
                TaskKind::Thread { process, forked_at } => TaskKind::Thread {
                    process,
                    forked_at: forked_at.map(map_at),
                },
                TaskKind::Event {
                    queue,
                    seq,
                    origin,
                    delay_ms,
                } => TaskKind::Event {
                    queue: map_queue(queue),
                    seq,
                    origin: match origin {
                        EventOrigin::Sent { send } => EventOrigin::Sent { send: map_at(send) },
                        EventOrigin::SentAtFront { send } => {
                            EventOrigin::SentAtFront { send: map_at(send) }
                        }
                        EventOrigin::External { sequence } => EventOrigin::External { sequence },
                    },
                    delay_ms,
                },
            };
            new_tasks.push(TaskInfo {
                id: TaskId::from_usize(new),
                kind,
                name: info.name,
            });
            let body = self
                .body(old)
                .iter()
                .map(|r| match *r {
                    Record::Fork { child } => Record::Fork {
                        child: map_task(child),
                    },
                    Record::Join { child } => Record::Join {
                        child: map_task(child),
                    },
                    Record::Send {
                        event,
                        queue,
                        delay_ms,
                    } => Record::Send {
                        event: map_task(event),
                        queue: map_queue(queue),
                        delay_ms,
                    },
                    Record::SendAtFront { event, queue } => Record::SendAtFront {
                        event: map_task(event),
                        queue: map_queue(queue),
                    },
                    ref other => other.clone(),
                })
                .collect();
            new_bodies.push(body);
        }

        // External events keep their global sequence numbers; only the
        // selected ones appear, in the original generation order.
        let external_order: Vec<TaskId> = self
            .external_order
            .iter()
            .filter(|t| task_map[t.index()] != UNMAPPED)
            .map(|&t| map_task(t))
            .collect();

        let trace = Trace {
            meta: self.meta.clone(),
            names: self.names.clone(),
            tasks: new_tasks,
            bodies: new_bodies,
            queues: new_queues,
            listeners: self.listeners.clone(),
            external_order,
            process_count: self.process_count,
        };
        Projection {
            trace,
            tasks: tasks.to_vec(),
            queues,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::{ObjId, Pc, VarId};
    use crate::record::DerefKind;
    use crate::validate::validate;

    /// Two independent islands: a thread+queue pair each.
    fn two_island_trace() -> Trace {
        let mut b = TraceBuilder::new("two-islands");
        let p1 = b.add_process();
        let q1 = b.add_queue(p1);
        let t1 = b.add_thread(p1, "driver-a");
        let e1 = b.post(t1, q1, "ev-a", 0);
        b.process_event(e1);
        b.obj_read(e1, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x10));
        b.deref(e1, ObjId::new(1), Pc::new(0x14), DerefKind::Field);

        let p2 = b.add_process();
        let q2 = b.add_queue(p2);
        let t2 = b.add_thread(p2, "driver-b");
        let w = b.fork(t2, p2, "worker-b");
        let e2 = b.post(w, q2, "ev-b", 0);
        b.process_event(e2);
        b.obj_write(e2, VarId::new(1), None, Pc::new(0x20));
        b.finish().unwrap()
    }

    #[test]
    fn projected_islands_validate_and_keep_bodies() {
        let trace = two_island_trace();
        // Island A = {t1 (thread), e1 (event)} — ids 0 and 1.
        let a = trace.project(&[TaskId::new(0), TaskId::new(1)]);
        assert_eq!(validate(&a.trace), Ok(()));
        assert_eq!(a.trace.task_count(), 2);
        assert_eq!(a.trace.queue_count(), 1);
        assert_eq!(a.trace.stats().derefs, 1);
        assert_eq!(a.unproject(OpRef::new(TaskId::new(1), 0)), {
            OpRef::new(TaskId::new(1), 0)
        });

        // Island B = the remaining three tasks.
        let b = trace.project(&[TaskId::new(2), TaskId::new(3), TaskId::new(4)]);
        assert_eq!(validate(&b.trace), Ok(()));
        assert_eq!(b.trace.task_count(), 3);
        assert_eq!(b.trace.queue_count(), 1);
        assert_eq!(b.trace.stats().frees, 1);
        // The worker's fork back-pointer survived the renumbering.
        let forked = b
            .trace
            .threads()
            .find(|t| b.trace.task_name(t.id) == "worker-b")
            .unwrap();
        assert!(matches!(
            forked.kind,
            TaskKind::Thread {
                forked_at: Some(_),
                ..
            }
        ));
        // Original names resolve through the shared interner.
        assert_eq!(b.trace.task_name(TaskId::new(0)), "driver-b");
        assert_eq!(b.unproject(OpRef::new(TaskId::new(0), 1)).task, {
            TaskId::new(2)
        });
    }

    #[test]
    fn full_projection_is_isomorphic() {
        let trace = two_island_trace();
        let all: Vec<TaskId> = (0..trace.task_count()).map(TaskId::from_usize).collect();
        let p = trace.project(&all);
        assert_eq!(p.trace, trace);
    }

    #[test]
    fn external_order_is_filtered_in_order() {
        let mut b = TraceBuilder::new("externals");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e1 = b.external(q, "ext-1");
        let e2 = b.external(q, "ext-2");
        b.process_event(e1);
        b.process_event(e2);
        let trace = b.finish().unwrap();
        let all: Vec<TaskId> = (0..trace.task_count()).map(TaskId::from_usize).collect();
        let p = trace.project(&all);
        assert_eq!(p.trace.external_events().len(), 2);
        assert_eq!(validate(&p.trace), Ok(()));
    }

    #[test]
    #[should_panic(expected = "projection not closed")]
    fn unclosed_set_panics() {
        let trace = two_island_trace();
        // t1 without its posted event e1: the Send record dangles.
        let _ = trace.project(&[TaskId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_set_panics() {
        let trace = two_island_trace();
        let _ = trace.project(&[TaskId::new(1), TaskId::new(0)]);
    }

    #[test]
    fn empty_trace_projects_to_empty() {
        let trace = TraceBuilder::new("empty").finish().unwrap();
        let p = trace.project(&[]);
        assert_eq!(p.trace.task_count(), 0);
        assert_eq!(p.trace.queue_count(), 0);
        assert_eq!(validate(&p.trace), Ok(()));
    }
}
