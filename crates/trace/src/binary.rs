//! Compact binary serialization of traces.
//!
//! This is the on-flash format the paper's logger device would produce
//! (§5.1: "one can also choose to dump traces into a flash storage and
//! process them later"): a magic header followed by LEB128-varint
//! sections. Roughly 5–8× smaller than the text format.

use std::io::{self, Read, Write};

use crate::error::ReadError;
use crate::ids::{
    ListenerId, MonitorId, NameId, ObjId, OpRef, Pc, ProcessId, QueueId, TaskId, TxnId, VarId,
};
use crate::interner::Interner;
use crate::record::{BranchKind, DerefKind, Record};
use crate::task::{EventOrigin, ListenerInfo, QueueInfo, TaskInfo, TaskKind};
use crate::trace::{Trace, TraceMeta};
use crate::validate::validate;

/// Magic bytes opening a binary trace.
pub const MAGIC: &[u8; 4] = b"CAFT";
/// Current binary format version.
pub const BINARY_VERSION: u32 = 1;

// ---- varint helpers -------------------------------------------------------

fn put_u64<W: Write>(out: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

fn put_u32<W: Write>(out: &mut W, v: u32) -> io::Result<()> {
    put_u64(out, u64::from(v))
}

fn put_str<W: Write>(out: &mut W, s: &str) -> io::Result<()> {
    put_u64(out, s.len() as u64)?;
    out.write_all(s.as_bytes())
}

pub(crate) struct Reader<R> {
    pub(crate) input: R,
    pub(crate) offset: u64,
}

impl<R: Read> Reader<R> {
    pub(crate) fn new(input: R) -> Self {
        Self { input, offset: 0 }
    }

    /// A reader whose reported offsets start at `offset` instead of 0.
    ///
    /// The streaming decoder re-parses from an in-memory tail of the
    /// stream; anchoring the reader at the tail's global position keeps
    /// error offsets identical to a batch parse of the whole stream.
    pub(crate) fn new_at(input: R, offset: u64) -> Self {
        Self { input, offset }
    }

    pub(crate) fn byte(&mut self) -> Result<u8, ReadError> {
        let mut b = [0u8; 1];
        self.input.read_exact(&mut b)?;
        self.offset += 1;
        Ok(b[0])
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ReadError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(ReadError::parse(self.offset, "varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ReadError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| ReadError::parse(self.offset, "value overflows u32"))
    }

    pub(crate) fn string(&mut self) -> Result<String, ReadError> {
        let len = self.u64()? as usize;
        if len > 1 << 24 {
            return Err(ReadError::parse(self.offset, "implausible string length"));
        }
        let mut buf = vec![0u8; len];
        self.input.read_exact(&mut buf)?;
        self.offset += len as u64;
        String::from_utf8(buf).map_err(|_| ReadError::parse(self.offset, "invalid UTF-8"))
    }

    pub(crate) fn opref(&mut self) -> Result<OpRef, ReadError> {
        let task = TaskId::new(self.u32()?);
        let index = self.u32()?;
        Ok(OpRef { task, index })
    }
}

/// Upper bound on any table entry count. A corrupted or hostile varint
/// above this is rejected before it can size an allocation.
pub(crate) const MAX_TABLE_COUNT: u64 = 1 << 24;

/// Upper bound on a single task body's record count.
pub(crate) const MAX_BODY_LEN: u64 = 1 << 28;

/// Reads a table entry count, rejecting implausibly large values.
pub(crate) fn table_count<R: Read>(r: &mut Reader<R>, what: &str) -> Result<usize, ReadError> {
    let n = r.u64()?;
    if n > MAX_TABLE_COUNT {
        return Err(ReadError::parse(
            r.offset,
            format!("implausible {what} count"),
        ));
    }
    Ok(n as usize)
}

fn put_opref<W: Write>(out: &mut W, at: OpRef) -> io::Result<()> {
    put_u32(out, at.task.as_u32())?;
    put_u32(out, at.index)
}

fn put_opt_obj<W: Write>(out: &mut W, obj: Option<ObjId>) -> io::Result<()> {
    match obj {
        None => put_u32(out, 0),
        Some(o) => put_u32(out, o.as_u32() + 1),
    }
}

pub(crate) fn get_opt_obj<R: Read>(r: &mut Reader<R>) -> Result<Option<ObjId>, ReadError> {
    let v = r.u32()?;
    Ok(if v == 0 {
        None
    } else {
        Some(ObjId::new(v - 1))
    })
}

// ---- record codes ----------------------------------------------------------

const R_FORK: u8 = 1;
const R_JOIN: u8 = 2;
const R_WAIT: u8 = 3;
const R_NOTIFY: u8 = 4;
const R_LOCK: u8 = 5;
const R_UNLOCK: u8 = 6;
const R_SEND: u8 = 7;
const R_SENDFRONT: u8 = 8;
const R_REGISTER: u8 = 9;
const R_PERFORM: u8 = 10;
const R_RPCCALL: u8 = 11;
const R_RPCHANDLE: u8 = 12;
const R_RPCREPLY: u8 = 13;
const R_RPCRECV: u8 = 14;
const R_READ: u8 = 15;
const R_WRITE: u8 = 16;
const R_OGET: u8 = 17;
const R_OPUT: u8 = 18;
const R_DEREF_FIELD: u8 = 19;
const R_DEREF_INVOKE: u8 = 20;
const R_GUARD_EQZ: u8 = 21;
const R_GUARD_NEZ: u8 = 22;
const R_GUARD_EQ: u8 = 23;
const R_ENTER: u8 = 24;
const R_EXIT_RET: u8 = 25;
const R_EXIT_THROW: u8 = 26;

fn write_record<W: Write>(out: &mut W, r: &Record) -> io::Result<()> {
    match *r {
        Record::Fork { child } => {
            out.write_all(&[R_FORK])?;
            put_u32(out, child.as_u32())
        }
        Record::Join { child } => {
            out.write_all(&[R_JOIN])?;
            put_u32(out, child.as_u32())
        }
        Record::Wait { monitor, gen } => {
            out.write_all(&[R_WAIT])?;
            put_u32(out, monitor.as_u32())?;
            put_u32(out, gen)
        }
        Record::Notify { monitor, gen } => {
            out.write_all(&[R_NOTIFY])?;
            put_u32(out, monitor.as_u32())?;
            put_u32(out, gen)
        }
        Record::Lock { monitor, gen } => {
            out.write_all(&[R_LOCK])?;
            put_u32(out, monitor.as_u32())?;
            put_u32(out, gen)
        }
        Record::Unlock { monitor, gen } => {
            out.write_all(&[R_UNLOCK])?;
            put_u32(out, monitor.as_u32())?;
            put_u32(out, gen)
        }
        Record::Send {
            event,
            queue,
            delay_ms,
        } => {
            out.write_all(&[R_SEND])?;
            put_u32(out, event.as_u32())?;
            put_u32(out, queue.as_u32())?;
            put_u64(out, delay_ms)
        }
        Record::SendAtFront { event, queue } => {
            out.write_all(&[R_SENDFRONT])?;
            put_u32(out, event.as_u32())?;
            put_u32(out, queue.as_u32())
        }
        Record::Register { listener } => {
            out.write_all(&[R_REGISTER])?;
            put_u32(out, listener.as_u32())
        }
        Record::Perform { listener } => {
            out.write_all(&[R_PERFORM])?;
            put_u32(out, listener.as_u32())
        }
        Record::RpcCall { txn } => {
            out.write_all(&[R_RPCCALL])?;
            put_u32(out, txn.as_u32())
        }
        Record::RpcHandle { txn } => {
            out.write_all(&[R_RPCHANDLE])?;
            put_u32(out, txn.as_u32())
        }
        Record::RpcReply { txn } => {
            out.write_all(&[R_RPCREPLY])?;
            put_u32(out, txn.as_u32())
        }
        Record::RpcReceive { txn } => {
            out.write_all(&[R_RPCRECV])?;
            put_u32(out, txn.as_u32())
        }
        Record::Read { var } => {
            out.write_all(&[R_READ])?;
            put_u32(out, var.as_u32())
        }
        Record::Write { var } => {
            out.write_all(&[R_WRITE])?;
            put_u32(out, var.as_u32())
        }
        Record::ObjRead { var, obj, pc } => {
            out.write_all(&[R_OGET])?;
            put_u32(out, var.as_u32())?;
            put_opt_obj(out, obj)?;
            put_u32(out, pc.addr())
        }
        Record::ObjWrite { var, value, pc } => {
            out.write_all(&[R_OPUT])?;
            put_u32(out, var.as_u32())?;
            put_opt_obj(out, value)?;
            put_u32(out, pc.addr())
        }
        Record::Deref { obj, pc, kind } => {
            let code = match kind {
                DerefKind::Field => R_DEREF_FIELD,
                DerefKind::Invoke => R_DEREF_INVOKE,
            };
            out.write_all(&[code])?;
            put_u32(out, obj.as_u32())?;
            put_u32(out, pc.addr())
        }
        Record::Guard {
            kind,
            pc,
            target,
            obj,
        } => {
            let code = match kind {
                BranchKind::IfEqz => R_GUARD_EQZ,
                BranchKind::IfNez => R_GUARD_NEZ,
                BranchKind::IfEq => R_GUARD_EQ,
            };
            out.write_all(&[code])?;
            put_u32(out, pc.addr())?;
            put_u32(out, target.addr())?;
            put_u32(out, obj.as_u32())
        }
        Record::MethodEnter { pc, name } => {
            out.write_all(&[R_ENTER])?;
            put_u32(out, pc.addr())?;
            put_u32(out, name.as_u32())
        }
        Record::MethodExit { pc, exceptional } => {
            out.write_all(&[if exceptional {
                R_EXIT_THROW
            } else {
                R_EXIT_RET
            }])?;
            put_u32(out, pc.addr())
        }
    }
}

pub(crate) fn read_record<R: Read>(r: &mut Reader<R>) -> Result<Record, ReadError> {
    let code = r.byte()?;
    let rec = match code {
        R_FORK => Record::Fork {
            child: TaskId::new(r.u32()?),
        },
        R_JOIN => Record::Join {
            child: TaskId::new(r.u32()?),
        },
        R_WAIT => Record::Wait {
            monitor: MonitorId::new(r.u32()?),
            gen: r.u32()?,
        },
        R_NOTIFY => Record::Notify {
            monitor: MonitorId::new(r.u32()?),
            gen: r.u32()?,
        },
        R_LOCK => Record::Lock {
            monitor: MonitorId::new(r.u32()?),
            gen: r.u32()?,
        },
        R_UNLOCK => Record::Unlock {
            monitor: MonitorId::new(r.u32()?),
            gen: r.u32()?,
        },
        R_SEND => Record::Send {
            event: TaskId::new(r.u32()?),
            queue: QueueId::new(r.u32()?),
            delay_ms: r.u64()?,
        },
        R_SENDFRONT => Record::SendAtFront {
            event: TaskId::new(r.u32()?),
            queue: QueueId::new(r.u32()?),
        },
        R_REGISTER => Record::Register {
            listener: ListenerId::new(r.u32()?),
        },
        R_PERFORM => Record::Perform {
            listener: ListenerId::new(r.u32()?),
        },
        R_RPCCALL => Record::RpcCall {
            txn: TxnId::new(r.u32()?),
        },
        R_RPCHANDLE => Record::RpcHandle {
            txn: TxnId::new(r.u32()?),
        },
        R_RPCREPLY => Record::RpcReply {
            txn: TxnId::new(r.u32()?),
        },
        R_RPCRECV => Record::RpcReceive {
            txn: TxnId::new(r.u32()?),
        },
        R_READ => Record::Read {
            var: VarId::new(r.u32()?),
        },
        R_WRITE => Record::Write {
            var: VarId::new(r.u32()?),
        },
        R_OGET => Record::ObjRead {
            var: VarId::new(r.u32()?),
            obj: get_opt_obj(r)?,
            pc: Pc::new(r.u32()?),
        },
        R_OPUT => Record::ObjWrite {
            var: VarId::new(r.u32()?),
            value: get_opt_obj(r)?,
            pc: Pc::new(r.u32()?),
        },
        R_DEREF_FIELD | R_DEREF_INVOKE => Record::Deref {
            obj: ObjId::new(r.u32()?),
            pc: Pc::new(r.u32()?),
            kind: if code == R_DEREF_FIELD {
                DerefKind::Field
            } else {
                DerefKind::Invoke
            },
        },
        R_GUARD_EQZ | R_GUARD_NEZ | R_GUARD_EQ => Record::Guard {
            kind: match code {
                R_GUARD_EQZ => BranchKind::IfEqz,
                R_GUARD_NEZ => BranchKind::IfNez,
                _ => BranchKind::IfEq,
            },
            pc: Pc::new(r.u32()?),
            target: Pc::new(r.u32()?),
            obj: ObjId::new(r.u32()?),
        },
        R_ENTER => Record::MethodEnter {
            pc: Pc::new(r.u32()?),
            name: NameId::new(r.u32()?),
        },
        R_EXIT_RET => Record::MethodExit {
            pc: Pc::new(r.u32()?),
            exceptional: false,
        },
        R_EXIT_THROW => Record::MethodExit {
            pc: Pc::new(r.u32()?),
            exceptional: true,
        },
        c => {
            return Err(ReadError::parse(
                r.offset,
                format!("unknown record code {c}"),
            ))
        }
    };
    Ok(rec)
}

// ---- whole-trace codec --------------------------------------------------------

/// Writes `trace` in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_binary<W: Write>(trace: &Trace, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    put_u32(&mut out, BINARY_VERSION)?;
    put_str(&mut out, &trace.meta.app)?;
    put_u64(&mut out, trace.meta.seed)?;
    put_u64(&mut out, trace.meta.virtual_ms)?;
    put_u32(&mut out, trace.process_count)?;

    put_u64(&mut out, trace.names.len() as u64)?;
    for (_, s) in trace.names.iter() {
        put_str(&mut out, s)?;
    }

    put_u64(&mut out, trace.queue_count() as u64)?;
    for (_, q) in trace.queues() {
        match q.process {
            Some(p) => put_u32(&mut out, p.as_u32() + 1)?,
            None => put_u32(&mut out, 0)?,
        }
    }

    put_u64(&mut out, trace.listener_count() as u64)?;
    for l in &trace.listeners {
        put_u32(&mut out, l.package.as_u32())?;
    }

    put_u64(&mut out, trace.task_count() as u64)?;
    for t in trace.tasks() {
        match t.kind {
            TaskKind::Thread { process, forked_at } => {
                out.write_all(&[0])?;
                put_u32(&mut out, process.as_u32())?;
                match forked_at {
                    None => out.write_all(&[0])?,
                    Some(at) => {
                        out.write_all(&[1])?;
                        put_opref(&mut out, at)?;
                    }
                }
            }
            TaskKind::Event {
                queue,
                seq,
                origin,
                delay_ms,
            } => {
                out.write_all(&[1])?;
                put_u32(&mut out, queue.as_u32())?;
                put_u32(&mut out, seq)?;
                put_u64(&mut out, delay_ms)?;
                match origin {
                    EventOrigin::Sent { send } => {
                        out.write_all(&[0])?;
                        put_opref(&mut out, send)?;
                    }
                    EventOrigin::SentAtFront { send } => {
                        out.write_all(&[1])?;
                        put_opref(&mut out, send)?;
                    }
                    EventOrigin::External { sequence } => {
                        out.write_all(&[2])?;
                        put_u32(&mut out, sequence)?;
                    }
                }
            }
        }
        put_u32(&mut out, t.name.as_u32())?;
    }

    for t in trace.tasks() {
        let body = trace.body(t.id);
        put_u64(&mut out, body.len() as u64)?;
        for r in body {
            write_record(&mut out, r)?;
        }
    }
    Ok(())
}

/// Encodes a trace into a fresh byte vector.
pub fn to_binary_vec(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_binary(trace, &mut buf).expect("writing to a Vec cannot fail");
    buf
}

/// Reads a trace in the binary format, validating it.
///
/// # Errors
///
/// Returns [`ReadError`] for malformed input, unsupported versions, or a
/// trace that fails validation.
pub fn read_binary<R: Read>(input: R) -> Result<Trace, ReadError> {
    let mut r = Reader::new(input);
    let mut magic = [0u8; 4];
    r.input.read_exact(&mut magic)?;
    r.offset += 4;
    if &magic != MAGIC {
        return Err(ReadError::parse(0, "bad magic; not a cafa binary trace"));
    }
    let version = r.u32()?;
    if version != BINARY_VERSION {
        return Err(ReadError::UnsupportedVersion { found: version });
    }
    let app = r.string()?;
    let seed = r.u64()?;
    let virtual_ms = r.u64()?;
    let process_count = r.u32()?;

    let name_count = table_count(&mut r, "name")?;
    let mut names = Interner::new();
    for i in 0..name_count {
        let s = r.string()?;
        let id = names.intern(&s);
        if id.index() != i {
            return Err(ReadError::parse(r.offset, "duplicate interned string"));
        }
    }

    let queue_count = table_count(&mut r, "queue")?;
    let mut queues = Vec::with_capacity(queue_count.min(1 << 16));
    for _ in 0..queue_count {
        let p = r.u32()?;
        let process = if p == 0 {
            None
        } else {
            Some(ProcessId::new(p - 1))
        };
        queues.push(QueueInfo {
            process,
            events: Vec::new(),
        });
    }

    let listener_count = table_count(&mut r, "listener")?;
    let mut listeners = Vec::with_capacity(listener_count.min(1 << 16));
    for _ in 0..listener_count {
        listeners.push(ListenerInfo {
            package: NameId::new(r.u32()?),
        });
    }

    let task_count = table_count(&mut r, "task")?;
    let mut tasks = Vec::with_capacity(task_count.min(1 << 16));
    let mut external: Vec<(u32, TaskId)> = Vec::new();
    for i in 0..task_count {
        let id = TaskId::from_usize(i);
        let kind = match r.byte()? {
            0 => {
                let process = ProcessId::new(r.u32()?);
                let forked_at = match r.byte()? {
                    0 => None,
                    1 => Some(r.opref()?),
                    b => return Err(ReadError::parse(r.offset, format!("bad fork flag {b}"))),
                };
                TaskKind::Thread { process, forked_at }
            }
            1 => {
                let queue = QueueId::new(r.u32()?);
                let seq = r.u32()?;
                let delay_ms = r.u64()?;
                let origin = match r.byte()? {
                    0 => EventOrigin::Sent { send: r.opref()? },
                    1 => EventOrigin::SentAtFront { send: r.opref()? },
                    2 => {
                        let sequence = r.u32()?;
                        external.push((sequence, id));
                        EventOrigin::External { sequence }
                    }
                    b => return Err(ReadError::parse(r.offset, format!("bad origin tag {b}"))),
                };
                let q = queues
                    .get_mut(queue.index())
                    .ok_or_else(|| ReadError::parse(r.offset, "event names unknown queue"))?;
                let si = seq as usize;
                // A queue position must name one of the trace's tasks, so
                // any valid seq is below task_count; a corrupt seq (e.g.
                // u32::MAX) would otherwise size a huge resize below.
                if si >= task_count {
                    return Err(ReadError::parse(r.offset, "event seq out of range"));
                }
                if q.events.len() <= si {
                    q.events.resize(si + 1, TaskId::new(u32::MAX));
                }
                q.events[si] = id;
                TaskKind::Event {
                    queue,
                    seq,
                    origin,
                    delay_ms,
                }
            }
            b => return Err(ReadError::parse(r.offset, format!("bad task kind {b}"))),
        };
        let name = NameId::new(r.u32()?);
        tasks.push(TaskInfo { id, kind, name });
    }

    let mut bodies = Vec::with_capacity(task_count);
    for _ in 0..task_count {
        let len = r.u64()?;
        if len > MAX_BODY_LEN {
            return Err(ReadError::parse(r.offset, "implausible body length"));
        }
        let len = len as usize;
        let mut body = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            body.push(read_record(&mut r)?);
        }
        bodies.push(body);
    }

    external.sort_by_key(|(seq, _)| *seq);
    let external_order: Vec<TaskId> = external.into_iter().map(|(_, t)| t).collect();

    let trace = Trace {
        meta: TraceMeta {
            app,
            seed,
            virtual_ms,
        },
        names,
        tasks,
        bodies,
        queues,
        listeners,
        external_order,
        process_count,
    };
    validate(&trace)?;
    Ok(trace)
}

/// Decodes a trace from a byte slice.
///
/// # Errors
///
/// Same conditions as [`read_binary`].
pub fn from_binary_slice(bytes: &[u8]) -> Result<Trace, ReadError> {
    read_binary(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("binary-sample");
        b.set_seed(7);
        b.set_virtual_ms(1000);
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let l = b.add_listener("android.widget");
        let ev = b.post(t, q, "onClick", 0);
        let fr = b.post_front(t, q, "vsync");
        let ext = b.external(q, "key");
        b.process_event(ev);
        b.register(ev, l);
        b.guard(ev, BranchKind::IfNez, Pc::new(8), Pc::new(2), ObjId::new(3));
        b.process_event(fr);
        b.perform(fr, l);
        b.obj_read(fr, VarId::new(1), None, Pc::new(0x20));
        b.process_event(ext);
        b.obj_write(ext, VarId::new(1), Some(ObjId::new(9)), Pc::new(0x30));
        b.deref(ext, ObjId::new(9), Pc::new(0x34), DerefKind::Invoke);
        let w = b.fork(t, p, "net");
        b.method_enter(w, Pc::new(0x50), "Net.connect");
        b.method_exit(w, Pc::new(0x50), false);
        b.finish().expect("valid")
    }

    #[test]
    fn binary_roundtrip_preserves_trace() {
        let trace = sample_trace();
        let bytes = to_binary_vec(&trace);
        let back = from_binary_slice(&bytes).expect("roundtrip parses");
        assert_eq!(trace, back);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let trace = sample_trace();
        let bytes = to_binary_vec(&trace);
        let text = crate::serialize::to_text_string(&trace);
        assert!(bytes.len() < text.len());
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            from_binary_slice(b"NOPE0000"),
            Err(ReadError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let trace = sample_trace();
        let bytes = to_binary_vec(&trace);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                from_binary_slice(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v).unwrap();
            let mut r = Reader::new(buf.as_slice());
            assert_eq!(r.u64().unwrap(), v);
        }
    }
}
