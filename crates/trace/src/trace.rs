//! The [`Trace`] container: an immutable, validated execution trace.

use crate::ids::{ListenerId, OpRef, QueueId, TaskId};
use crate::interner::Interner;
use crate::record::Record;
use crate::task::{ListenerInfo, QueueInfo, TaskInfo};

/// Metadata describing the recorded execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Application name (e.g. `"MyTracks"`).
    pub app: String,
    /// Seed the workload/scheduler ran with, for reproducibility.
    pub seed: u64,
    /// Virtual duration of the recorded execution in milliseconds.
    pub virtual_ms: u64,
}

/// An immutable execution trace of an event-driven program.
///
/// A trace owns a table of [tasks](TaskInfo) (threads and events), one
/// record body per task, the queue processing orders, the listener table,
/// and an interned name table. Construct one with
/// [`TraceBuilder`](crate::TraceBuilder) or by deserializing with
/// [`read_text`](crate::read_text) / [`read_binary`](crate::read_binary).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    pub(crate) meta: TraceMeta,
    pub(crate) names: Interner,
    pub(crate) tasks: Vec<TaskInfo>,
    pub(crate) bodies: Vec<Vec<Record>>,
    pub(crate) queues: Vec<QueueInfo>,
    pub(crate) listeners: Vec<ListenerInfo>,
    pub(crate) external_order: Vec<TaskId>,
    pub(crate) process_count: u32,
}

impl Trace {
    /// Execution metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The interned-name table.
    pub fn names(&self) -> &Interner {
        &self.names
    }

    /// Number of tasks (threads + events).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of simulated processes.
    pub fn process_count(&self) -> usize {
        self.process_count as usize
    }

    /// Metadata for one task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn task(&self, task: TaskId) -> &TaskInfo {
        &self.tasks[task.index()]
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskInfo> {
        self.tasks.iter()
    }

    /// All event tasks in id order.
    pub fn events(&self) -> impl Iterator<Item = &TaskInfo> {
        self.tasks.iter().filter(|t| t.is_event())
    }

    /// All regular-thread tasks in id order.
    pub fn threads(&self) -> impl Iterator<Item = &TaskInfo> {
        self.tasks.iter().filter(|t| t.is_thread())
    }

    /// The record body of a task, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn body(&self, task: TaskId) -> &[Record] {
        &self.bodies[task.index()]
    }

    /// Length of a task's body.
    pub fn body_len(&self, task: TaskId) -> u32 {
        self.bodies[task.index()].len() as u32
    }

    /// The record at a trace position.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    pub fn record(&self, at: OpRef) -> &Record {
        &self.bodies[at.task.index()][at.index as usize]
    }

    /// The record at a trace position, or `None` if out of range.
    pub fn get_record(&self, at: OpRef) -> Option<&Record> {
        self.bodies.get(at.task.index())?.get(at.index as usize)
    }

    /// Number of event queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Metadata for one queue.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn queue(&self, queue: QueueId) -> &QueueInfo {
        &self.queues[queue.index()]
    }

    /// All queues in id order, with their ids.
    pub fn queues(&self) -> impl Iterator<Item = (QueueId, &QueueInfo)> {
        self.queues
            .iter()
            .enumerate()
            .map(|(i, q)| (QueueId::from_usize(i), q))
    }

    /// Number of registered listener identities.
    pub fn listener_count(&self) -> usize {
        self.listeners.len()
    }

    /// Metadata for one listener.
    ///
    /// # Panics
    ///
    /// Panics if `listener` is out of range.
    pub fn listener(&self, listener: ListenerId) -> &ListenerInfo {
        &self.listeners[listener.index()]
    }

    /// External events in generation order (the order the external-input
    /// rule of §3.3 imposes).
    pub fn external_events(&self) -> &[TaskId] {
        &self.external_order
    }

    /// Iterates over every record of every task as `(position, record)`.
    pub fn iter_ops(&self) -> impl Iterator<Item = (OpRef, &Record)> {
        self.bodies.iter().enumerate().flat_map(|(t, body)| {
            let task = TaskId::from_usize(t);
            body.iter()
                .enumerate()
                .map(move |(i, r)| (OpRef::new(task, i as u32), r))
        })
    }

    /// The human-readable name of a task.
    pub fn task_name(&self, task: TaskId) -> &str {
        self.names.resolve(self.task(task).name)
    }

    /// The first event whose handler name is `name`, if any.
    pub fn event_named(&self, name: &str) -> Option<TaskId> {
        self.events()
            .find(|t| self.names.resolve(t.name) == name)
            .map(|t| t.id)
    }

    /// The first thread whose name is `name`, if any.
    pub fn thread_named(&self, name: &str) -> Option<TaskId> {
        self.threads()
            .find(|t| self.names.resolve(t.name) == name)
            .map(|t| t.id)
    }

    /// Summary statistics, used by the evaluation harness and CLI.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats {
            tasks: self.tasks.len(),
            ..TraceStats::default()
        };
        for t in &self.tasks {
            if t.is_event() {
                s.events += 1;
            } else {
                s.threads += 1;
            }
        }
        s.external_events = self.external_order.len();
        for body in &self.bodies {
            s.records += body.len();
            for r in body {
                if r.is_sync() {
                    s.sync_records += 1;
                }
                if r.is_access() {
                    s.accesses += 1;
                }
                match r {
                    Record::ObjWrite { value: None, .. } => s.frees += 1,
                    Record::ObjWrite { value: Some(_), .. } => s.allocations += 1,
                    Record::Deref { .. } => s.derefs += 1,
                    Record::Guard { .. } => s.guards += 1,
                    Record::Send { .. } | Record::SendAtFront { .. } => s.sends += 1,
                    _ => {}
                }
            }
        }
        s
    }
}

/// Aggregate counts over a trace, as reported by [`Trace::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total tasks (threads + events).
    pub tasks: usize,
    /// Regular threads.
    pub threads: usize,
    /// Event executions (the "Events" column of Table 1).
    pub events: usize,
    /// Events generated by the external world.
    pub external_events: usize,
    /// Total records across all bodies.
    pub records: usize,
    /// Records participating in cross-task causality.
    pub sync_records: usize,
    /// Memory accesses (scalar + pointer).
    pub accesses: usize,
    /// Null pointer stores (frees).
    pub frees: usize,
    /// Non-null pointer stores (allocations).
    pub allocations: usize,
    /// Dereference records.
    pub derefs: usize,
    /// Guard-branch records.
    pub guards: usize,
    /// `send` + `sendAtFront` records.
    pub sends: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::{Pc, ProcessId, VarId};

    #[test]
    fn stats_count_kinds() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let e = b.post(t, q, "ev", 0);
        b.process_event(e);
        b.obj_write(e, VarId::new(0), None, Pc::new(4));
        b.obj_write(
            e,
            VarId::new(0),
            Some(crate::ids::ObjId::new(1)),
            Pc::new(8),
        );
        b.read(t, VarId::new(1));
        let trace = b.finish().expect("valid trace");

        let s = trace.stats();
        assert_eq!(s.tasks, 2);
        assert_eq!(s.threads, 1);
        assert_eq!(s.events, 1);
        assert_eq!(s.sends, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.allocations, 1);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.records, 4);
        assert_eq!(s.sync_records, 1);
        assert_eq!(trace.task_name(e), "ev");
        assert_eq!(trace.process_count(), 1);
        let _ = ProcessId::new(0);
    }

    #[test]
    fn tasks_findable_by_name() {
        let mut b = TraceBuilder::new("find");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let e = b.post(t, q, "onCreate", 0);
        b.process_event(e);
        let trace = b.finish().unwrap();
        assert_eq!(trace.event_named("onCreate"), Some(e));
        assert_eq!(trace.event_named("main"), None, "threads are not events");
        assert_eq!(trace.thread_named("main"), Some(t));
        assert_eq!(trace.thread_named("missing"), None);
    }

    #[test]
    fn iter_ops_covers_every_record() {
        let mut b = TraceBuilder::new("app");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        b.read(t, VarId::new(0));
        b.write(t, VarId::new(0));
        let trace = b.finish().unwrap();
        let ops: Vec<_> = trace.iter_ops().collect();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].0, OpRef::new(t, 0));
        assert_eq!(ops[1].0, OpRef::new(t, 1));
        assert!(trace.get_record(OpRef::new(t, 2)).is_none());
    }
}
