//! A small string interner for method, package, and task names.
//!
//! Traces mention the same strings millions of times (§5.3: "we only log
//! the name of a function upon its first invocation to reduce the size of
//! a trace"); interning keeps records fixed-size.

use std::collections::HashMap;

use crate::ids::NameId;

/// Deduplicating string table. Interning the same string twice yields the
/// same [`NameId`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Interner {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, NameId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id. Idempotent.
    pub fn intern(&mut self, s: &str) -> NameId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = NameId::from_usize(self.strings.len());
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// Resolves an id to its string, or `None` if the id is unknown.
    pub fn get(&self, id: NameId) -> Option<&str> {
        self.strings.get(id.index()).map(AsRef::as_ref)
    }

    /// Resolves an id, substituting a placeholder for unknown ids.
    pub fn resolve(&self, id: NameId) -> &str {
        self.get(id).unwrap_or("<unknown>")
    }

    /// Looks up an already-interned string without inserting.
    pub fn lookup(&self, s: &str) -> Option<NameId> {
        self.index.get(s).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (NameId::from_usize(i), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("onResume");
        let b = i.intern("onPause");
        let a2 = i.intern("onResume");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_and_lookup() {
        let mut i = Interner::new();
        let a = i.intern("main");
        assert_eq!(i.get(a), Some("main"));
        assert_eq!(i.resolve(a), "main");
        assert_eq!(i.lookup("main"), Some(a));
        assert_eq!(i.lookup("absent"), None);
        assert_eq!(i.resolve(NameId::new(99)), "<unknown>");
    }

    #[test]
    fn iterates_in_id_order() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("a");
        i.intern("b");
        let all: Vec<_> = i
            .iter()
            .map(|(id, s)| (id.as_u32(), s.to_owned()))
            .collect();
        assert_eq!(all, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
