//! Property tests: serialization round-trips on arbitrary valid traces.

use proptest::prelude::*;

use cafa_trace::arbitrary::trace_from_tape;
use cafa_trace::{from_binary_slice, from_text_str, to_binary_vec, to_text_string, validate};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any tape yields a structurally valid trace.
    #[test]
    fn tapes_always_yield_valid_traces(tape in proptest::collection::vec(any::<u8>(), 0..400)) {
        let trace = trace_from_tape(&tape);
        prop_assert!(validate::validate(&trace).is_ok());
    }

    /// Text serialization is lossless.
    #[test]
    fn text_roundtrip(tape in proptest::collection::vec(any::<u8>(), 0..400)) {
        let trace = trace_from_tape(&tape);
        let back = from_text_str(&to_text_string(&trace)).expect("parses");
        prop_assert_eq!(trace, back);
    }

    /// Binary serialization is lossless.
    #[test]
    fn binary_roundtrip(tape in proptest::collection::vec(any::<u8>(), 0..400)) {
        let trace = trace_from_tape(&tape);
        let back = from_binary_slice(&to_binary_vec(&trace)).expect("parses");
        prop_assert_eq!(trace, back);
    }

    /// Binary decoding never panics on corrupted input (errors are
    /// fine; crashes are not).
    #[test]
    fn binary_decoder_tolerates_corruption(
        tape in proptest::collection::vec(any::<u8>(), 0..200),
        flip in any::<(u16, u8)>(),
    ) {
        let trace = trace_from_tape(&tape);
        let mut bytes = to_binary_vec(&trace);
        if !bytes.is_empty() {
            let idx = flip.0 as usize % bytes.len();
            bytes[idx] ^= flip.1 | 1;
        }
        let _ = from_binary_slice(&bytes); // must not panic
    }

    /// The pretty-printer renders any valid trace without panicking
    /// and mentions every non-empty task.
    #[test]
    fn pretty_renders_all_tasks(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let opts = cafa_trace::pretty::PrettyOptions::default();
        let text = cafa_trace::pretty::render(&trace, &opts);
        for t in trace.tasks() {
            if !trace.body(t.id).is_empty() {
                prop_assert!(text.contains(&t.id.to_string()), "missing {}", t.id);
            }
        }
    }

    /// Text parsing never panics on corrupted input.
    #[test]
    fn text_parser_tolerates_corruption(
        tape in proptest::collection::vec(any::<u8>(), 0..200),
        junk in "[ -~]{0,40}",
        line in any::<u16>(),
    ) {
        let trace = trace_from_tape(&tape);
        let text = to_text_string(&trace);
        let mut lines: Vec<&str> = text.lines().collect();
        let idx = line as usize % (lines.len() + 1);
        lines.insert(idx, &junk);
        let _ = from_text_str(&lines.join("\n")); // must not panic
    }
}
