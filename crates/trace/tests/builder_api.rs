//! Builder and accessor API coverage beyond the unit tests.

use cafa_trace::{DerefKind, EventOrigin, ObjId, OpRef, Pc, Record, TaskKind, TraceBuilder, VarId};

#[test]
fn meta_setters_round_trip() {
    let mut b = TraceBuilder::new("meta");
    b.set_seed(77);
    b.set_virtual_ms(1234);
    let trace = b.finish().unwrap();
    assert_eq!(trace.meta().app, "meta");
    assert_eq!(trace.meta().seed, 77);
    assert_eq!(trace.meta().virtual_ms, 1234);
}

#[test]
fn names_mut_preinterning_is_shared() {
    let mut b = TraceBuilder::new("names");
    let pre = b.names_mut().intern("onCreate");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "main");
    let ev = b.post(t, q, "onCreate", 0);
    b.process_event(ev);
    let trace = b.finish().unwrap();
    assert_eq!(
        trace.task(ev).name,
        pre,
        "builder reuses pre-interned names"
    );
}

#[test]
fn process_of_resolves_events_to_looper_process() {
    let mut b = TraceBuilder::new("proc");
    let p1 = b.add_process();
    let p2 = b.add_process();
    let q = b.add_queue(p2);
    let t = b.add_thread(p1, "main");
    let ev = b.post(t, q, "ev", 0);
    b.process_event(ev);
    assert_eq!(b.process_of(t), p1);
    assert_eq!(b.process_of(ev), p2, "events run in their looper's process");
    assert_eq!(b.task_count(), 2);
    assert_eq!(b.body_len(t), 1);
}

#[test]
fn origin_kinds_expose_their_sites() {
    let mut b = TraceBuilder::new("origin");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "main");
    let plain = b.post(t, q, "plain", 9);
    let front = b.post_front(t, q, "front");
    let ext = b.external(q, "ext");
    b.process_event(front);
    b.process_event(plain);
    b.process_event(ext);
    let trace = b.finish().unwrap();

    let plain_origin = trace.task(plain).origin().unwrap();
    assert!(matches!(plain_origin, EventOrigin::Sent { .. }));
    assert_eq!(trace.task(plain).delay_ms(), Some(9));

    let front_origin = trace.task(front).origin().unwrap();
    assert!(front_origin.is_front());
    assert_eq!(
        trace.task(front).delay_ms(),
        Some(0),
        "front posts carry no delay"
    );

    let ext_origin = trace.task(ext).origin().unwrap();
    assert!(ext_origin.is_external());
    assert_eq!(ext_origin.send_site(), None);

    // Threads report no event metadata.
    match trace.task(t).kind {
        TaskKind::Thread { forked_at, .. } => assert!(forked_at.is_none()),
        TaskKind::Event { .. } => panic!("t is a thread"),
    }
}

#[test]
fn raw_push_positions_are_sequential() {
    let mut b = TraceBuilder::new("push");
    let p = b.add_process();
    let t = b.add_thread(p, "main");
    let a = b.push(t, Record::Read { var: VarId::new(0) });
    let c = b.push(t, Record::Write { var: VarId::new(0) });
    assert_eq!(a, OpRef::new(t, 0));
    assert_eq!(c, OpRef::new(t, 1));
}

#[test]
fn stats_track_guards_and_derefs() {
    let mut b = TraceBuilder::new("stats");
    let p = b.add_process();
    let t = b.add_thread(p, "main");
    let o = ObjId::new(1);
    b.obj_read(t, VarId::new(0), Some(o), Pc::new(0x1000));
    b.guard(
        t,
        cafa_trace::BranchKind::IfNez,
        Pc::new(0x1004),
        Pc::new(0x1010),
        o,
    );
    b.deref(t, o, Pc::new(0x1014), DerefKind::Invoke);
    b.deref(t, o, Pc::new(0x1018), DerefKind::Field);
    let trace = b.finish().unwrap();
    let s = trace.stats();
    assert_eq!(s.guards, 1);
    assert_eq!(s.derefs, 2);
    assert_eq!(s.accesses, 1);
    assert_eq!(s.sync_records, 0);
}

#[test]
fn method_block_convention_is_exposed() {
    // The if-guard "end of function" convention (docs/FORMAT.md).
    let pc = Pc::new(0x3_2a0);
    assert_eq!(pc.method_base().addr(), 0x3000);
    assert_eq!(pc.method_end().addr(), 0x4000);
    assert!(pc.same_method(Pc::new(0x3fff)));
    assert!(!pc.same_method(Pc::new(0x4000)));
    assert_eq!(Pc::METHOD_BLOCK, 0x1000);
}
