//! Fault injection against the binary trace decoder.
//!
//! A trace file is untrusted input: the decoder must turn every
//! corruption — truncation, flipped bytes, hostile length prefixes —
//! into a typed [`ReadError`] at the offending offset, and must never
//! panic or size an allocation from an unchecked wire value. Both
//! entry points are exercised: the batch [`from_binary_slice`] parser
//! and the chunked [`StreamDecoder`].

use proptest::prelude::*;

use cafa_trace::arbitrary::trace_from_tape;
use cafa_trace::{from_binary_slice, to_binary_vec, ReadError, StreamDecoder, StreamEvent};

/// LEB128-encodes `v` the way the wire format does.
fn varint(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return out;
        }
        out.push(b | 0x80);
    }
}

/// Byte offset of the first task's body-length varint in `bytes`,
/// found by feeding the decoder one byte at a time until it reports
/// the metadata tables complete.
fn tables_end(bytes: &[u8]) -> usize {
    let mut d = StreamDecoder::new();
    for (i, b) in bytes.iter().enumerate() {
        let events = d.push(std::slice::from_ref(b)).expect("valid stream");
        if events.contains(&StreamEvent::TablesReady) {
            return i + 1 - d.buffered_bytes();
        }
    }
    panic!("tables never completed");
}

/// Asserts `err` is a parse error with `message` exactly at `at`.
fn assert_parse_at(err: &ReadError, at: u64, message: &str) {
    match err {
        ReadError::Parse { at: a, message: m } => {
            assert_eq!((*a, m.as_str()), (at, message), "wrong error site: {err}");
        }
        other => panic!("expected a parse error, got {other}"),
    }
}

/// A header whose version varint overflows u32 is rejected at the
/// offset just past the varint.
#[test]
fn overflowing_version_is_a_typed_parse_error() {
    let mut bytes = b"CAFT".to_vec();
    bytes.extend(varint(u64::MAX));
    let err = from_binary_slice(&bytes).expect_err("must reject");
    assert_parse_at(&err, bytes.len() as u64, "value overflows u32");
}

/// A string length prefix of 2^60 is rejected before it can size an
/// allocation — the error arrives at the offset just past the prefix,
/// with no buffer of that size ever requested.
#[test]
fn oversized_string_length_is_rejected_before_allocation() {
    let mut bytes = b"CAFT".to_vec();
    bytes.extend(varint(1)); // version
    bytes.extend(varint(1 << 60)); // app-name length
    let err = from_binary_slice(&bytes).expect_err("must reject");
    assert_parse_at(&err, bytes.len() as u64, "implausible string length");
}

/// A metadata-table count of 2^60 is rejected at the offset just past
/// the count varint, before any per-entry reads.
#[test]
fn oversized_table_count_is_rejected_before_allocation() {
    let mut bytes = b"CAFT".to_vec();
    bytes.extend(varint(1)); // version
    bytes.extend(varint(0)); // app name: empty
    bytes.extend(varint(0)); // seed
    bytes.extend(varint(0)); // virtual ms
    bytes.extend(varint(0)); // process count
    bytes.extend(varint(1 << 60)); // name-table count
    let err = from_binary_slice(&bytes).expect_err("must reject");
    assert_parse_at(&err, bytes.len() as u64, "implausible name count");
}

/// A task body-length prefix of 2^60, spliced into an otherwise valid
/// trace, is rejected at its exact offset by both the batch parser
/// and the stream decoder.
#[test]
fn oversized_body_length_is_rejected_at_its_offset() {
    let trace = trace_from_tape(&[7, 3, 9, 1, 4, 1, 5, 9, 2, 6]);
    assert!(trace.task_count() > 0);
    let bytes = to_binary_vec(&trace);
    let cut = tables_end(&bytes);

    let mut corrupted = bytes[..cut].to_vec();
    corrupted.extend(varint(1 << 60));
    let batch = from_binary_slice(&corrupted).expect_err("must reject");
    assert_parse_at(&batch, corrupted.len() as u64, "implausible body length");

    let mut d = StreamDecoder::new();
    let streamed = d
        .push(&corrupted)
        .expect_err("stream must reject the same prefix");
    assert_parse_at(&streamed, corrupted.len() as u64, "implausible body length");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncating a valid trace anywhere yields a typed error from
    /// both decoders — never a panic, never a silent success.
    #[test]
    fn truncation_yields_typed_errors(
        tape in proptest::collection::vec(any::<u8>(), 0..300),
        cut in any::<u32>(),
    ) {
        let bytes = to_binary_vec(&trace_from_tape(&tape));
        let cut = cut as usize % bytes.len();
        let truncated = &bytes[..cut];
        prop_assert!(from_binary_slice(truncated).is_err());

        let mut d = StreamDecoder::new();
        match d.push(truncated) {
            Err(_) => {}
            Ok(_) => {
                prop_assert!(!d.is_complete());
                prop_assert!(d.finish().is_err());
            }
        }
    }

    /// Flipping any byte never panics either decoder, whatever chunk
    /// size carries the corruption in.
    #[test]
    fn byte_flips_never_panic_the_stream_decoder(
        tape in proptest::collection::vec(any::<u8>(), 0..200),
        flip in any::<(u16, u8)>(),
        chunk in 1usize..64,
    ) {
        let mut bytes = to_binary_vec(&trace_from_tape(&tape));
        let idx = flip.0 as usize % bytes.len();
        bytes[idx] ^= flip.1 | 1;
        let _ = from_binary_slice(&bytes); // must not panic

        let mut d = StreamDecoder::new();
        let mut failed = false;
        for c in bytes.chunks(chunk) {
            if d.push(c).is_err() {
                failed = true;
                break;
            }
        }
        if !failed {
            let _ = d.finish(); // must not panic
        }
    }

    /// Any chunking of a valid stream decodes to the batch result.
    #[test]
    fn arbitrary_chunkings_match_the_batch_decode(
        tape in proptest::collection::vec(any::<u8>(), 0..300),
        chunk in 1usize..257,
    ) {
        let trace = trace_from_tape(&tape);
        let bytes = to_binary_vec(&trace);
        let mut d = StreamDecoder::new();
        for c in bytes.chunks(chunk) {
            d.push(c).expect("valid stream");
        }
        prop_assert_eq!(d.finish().expect("valid trace"), trace);
    }
}
