//! Benign "flavor" machinery: realistic app plumbing that exercises
//! every runtime feature (Binder round-trips, monitor handoffs,
//! front-posted input, framework listeners, handler threads) without
//! planting races.
//!
//! Real traces are mostly this: synchronization-heavy plumbing that the
//! causality model must order correctly so the detector stays silent
//! about it. Every helper here is safe by construction — ordered by
//! sends, joins, or monitor generations — so adding flavor never
//! changes a workload's Table 1 row, only the richness of its trace.

use cafa_sim::{Action, Body, GuardStyle, HandlerId};
use cafa_trace::DerefKind;

use crate::patterns::Patterns;

impl Patterns<'_> {
    /// A settings/service poll: a gesture handler makes a synchronous
    /// Binder call to a per-pattern service, then posts a UI-update
    /// event that reads the fetched value. Exercises the full
    /// call/handle/reply/receive causality across processes.
    ///
    /// Plants 2 events (the poll and the update).
    pub fn flavor_service_poll(&mut self, service_name: &str) {
        let t = self.next_slot();
        let tag = self.tag("fsp");
        let value = self.p.scalar_var(0);
        let svcp = self.p.process();
        let svc = self.p.service(svcp, service_name);
        let get = self
            .p
            .method(svc, "query", Body::new().write(value, 7).compute(5));
        let update = self
            .p
            .handler(&format!("{tag}:onValue"), Body::new().read(value));
        let looper = self.looper();
        let poll = self.p.handler(
            &format!("{tag}:onPoll"),
            Body::from_actions(vec![
                Action::Call {
                    service: svc,
                    method: get,
                },
                Action::Post {
                    looper,
                    handler: update,
                    delay_ms: 0,
                },
            ]),
        );
        self.p.gesture(t, looper, poll);
        self.add_events(2);
    }

    /// A worker pipeline: the handler forks a compute thread, hands a
    /// buffer through a monitor (lock/notify/wait), joins it, and posts
    /// a completion event. Exercises fork/join and wait/notify
    /// generations inside one pattern.
    ///
    /// Plants 2 events.
    pub fn flavor_worker_pipeline(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("fwp");
        let buffer = self.p.ptr_var_alloc();
        let m = self.p.monitor();
        let worker = {
            let proc = self.proc();
            self.p.thread_spec(
                proc,
                &format!("{tag}:decoder"),
                Body::from_actions(vec![
                    Action::Lock(m),
                    Action::UsePtr {
                        var: buffer,
                        kind: DerefKind::Field,
                        catch_npe: false,
                    },
                    Action::Compute(20),
                    Action::Notify(m),
                    Action::Unlock(m),
                ]),
            )
        };
        let looper = self.looper();
        let noise = self.noise_var();
        let done = self
            .p
            .handler(&format!("{tag}:onDecoded"), Body::new().read(noise));
        let kick = self.p.handler(
            &format!("{tag}:onDecode"),
            Body::from_actions(vec![
                Action::Lock(m),
                Action::Fork(worker),
                Action::Wait(m),
                Action::Unlock(m),
                Action::JoinLast,
                Action::Post {
                    looper,
                    handler: done,
                    delay_ms: 0,
                },
            ]),
        );
        self.p.gesture(t, looper, kick);
        self.add_events(2);
    }

    /// An input burst: one handler front-posts `count` vsync-style
    /// events (Android's `sendMessageAtFrontOfQueue` for latency-
    /// critical input). Queue rule 4 orders each front-post before the
    /// previously front-posted ones — the Figure 4d machinery on real
    /// plumbing.
    ///
    /// Plants `count + 1` events.
    pub fn flavor_input_burst(&mut self, count: usize) {
        let t = self.next_slot();
        let tag = self.tag("fib");
        let pos = self.p.scalar_var(0);
        let looper = self.looper();
        let mut actions = Vec::with_capacity(count);
        for k in 0..count {
            let vsync = self
                .p
                .handler(&format!("{tag}:vsync{k}"), Body::new().write(pos, k as i64));
            actions.push(Action::PostFront {
                looper,
                handler: vsync,
            });
        }
        let dispatch = self
            .p
            .handler(&format!("{tag}:dispatchInput"), Body::from_actions(actions));
        self.p.gesture(t, looper, dispatch);
        self.add_events(count + 1);
    }

    /// A framework-covered listener round: registration in one event,
    /// performance in a later one, both in `android.view` (always
    /// instrumented) — the model orders them via the listener rule so
    /// the guarded teardown below it stays silent.
    ///
    /// Plants 2 events.
    pub fn flavor_covered_listener(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("fcl");
        let ptr = self.p.ptr_var_alloc();
        let listener = self.p.listener("android.view");
        let setup = self.p.handler(
            &format!("{tag}:onAttach"),
            Body::from_actions(vec![
                Action::Register(listener),
                Action::GuardedUse {
                    var: ptr,
                    kind: DerefKind::Invoke,
                    style: GuardStyle::IfNez,
                },
            ]),
        );
        let teardown = self.p.handler(
            &format!("{tag}:onDetach"),
            Body::from_actions(vec![Action::Perform(listener), Action::FreePtr(ptr)]),
        );
        // Two independent source threads; only the listener rule (plus
        // atomicity) orders setup before teardown for the analyzer.
        self.spawn_post(&format!("{tag}:attachSrc"), t, setup, 0);
        self.spawn_post(&format!("{tag}:detachSrc"), t + 50, teardown, 0);
        self.add_events(2);
    }

    /// A background handler thread (Android `HandlerThread`): a second
    /// looper in the app process running a bounded work chain. The
    /// model must keep the two loopers' atomicity domains separate.
    ///
    /// Plants `len` events (on the *second* looper, which still count
    /// toward the trace's event total).
    pub fn flavor_handler_thread(&mut self, len: usize) {
        let tag = self.tag("fht");
        let proc = self.proc();
        let side = self.p.looper(proc);
        let budget = self.p.counter(len as u32 - 1);
        let var = self.p.scalar_var(0);
        let me = self.p.next_handler_id();
        let work = self.p.handler(
            &format!("{tag}:sideWork"),
            Body::from_actions(vec![
                Action::ReadScalar(var),
                Action::Compute(8),
                Action::WriteScalar(var, 1),
                Action::PostChain {
                    looper: side,
                    handler: me,
                    delay_ms: 2,
                    budget,
                },
            ]),
        );
        self.p.thread(
            proc,
            &format!("{tag}:sideSrc"),
            Body::new().post(side, work, 0),
        );
        self.add_events(len);
    }

    /// The whole flavor bundle most apps use: one of each, sized small.
    ///
    /// Plants `9 + burst` events; pass the burst size to vary apps.
    pub fn flavor_bundle(&mut self, service_name: &str, burst: usize) {
        self.flavor_service_poll(service_name);
        self.flavor_worker_pipeline();
        self.flavor_input_burst(burst);
        self.flavor_covered_listener();
        self.flavor_handler_thread(3);
    }
}

// A handful of accessors Patterns keeps private to this crate.
impl<'a> Patterns<'a> {
    pub(crate) fn looper(&self) -> cafa_sim::LooperId {
        self.looper_id()
    }

    pub(crate) fn proc(&self) -> cafa_sim::ProcId {
        self.proc_id()
    }

    /// Spawns a thread that sleeps then posts `handler`.
    pub(crate) fn spawn_post(&mut self, name: &str, at_ms: u64, handler: HandlerId, delay: u64) {
        let looper = self.looper();
        let proc = self.proc();
        self.p.thread(
            proc,
            name,
            Body::from_actions(vec![
                Action::Sleep(at_ms),
                Action::Post {
                    looper,
                    handler,
                    delay_ms: delay,
                },
            ]),
        );
    }

    /// A throwaway scalar for do-nothing handler bodies.
    pub(crate) fn noise_var(&mut self) -> cafa_sim::SimVar {
        self.p.scalar_var(0)
    }
}
