//! Scale-tier synthetic fleet traces (100k–1M events).
//!
//! The catalog generator ([`crate::generate`]) lowers DSL models
//! through `cafa-sim`, which is faithful but far too slow (and far too
//! densely connected) for million-event scaling studies. This module
//! builds traces directly on [`TraceBuilder`], shaped the way a fleet
//! of independent app sessions looks to a multi-tenant ingest server:
//! many small **islands**, each with its own process, event queue, and
//! a couple of driver threads, plus a pump thread padding the queue
//! with empty ticks. Islands share nothing — no cross-island posts,
//! joins, or RPC — so happens-before cones stay island-sized no matter
//! how many islands the trace holds. That is precisely the workload
//! the demand-driven query engine is built for: rule work per query is
//! bounded by an island, not the trace, so total rule work stays
//! linear in the number of *planted patterns* while the event count
//! scales freely with filler.
//!
//! Every island plants labeled patterns drawn from the Table 1
//! taxonomy, each on a fresh pointer variable so the oracle join in
//! the scale-corpus tests is exact:
//!
//! * **harmful (a)** — two same-looper events, posted by independent
//!   drivers, racing use against free (intra-thread; invisible to
//!   thread-based detectors);
//! * **harmful (b)** — a driver-thread use racing an event free that
//!   the conventional total event order *would* serialize (the column
//!   only CAFA's relaxed order exposes);
//! * **harmful (c)** — a plain thread-vs-thread race the conventional
//!   model also reports;
//! * **fp** — the harmful (a) shape on a commutative flag the
//!   heuristics cannot prove safe (§6.3 Type II): reported, benign;
//! * **filtered** — a same-looper candidate the §4.3 heuristics
//!   suppress (intra-event allocation or an if-guard, alternating);
//! * **ordered** — sequential equal-delay posts from one driver, so
//!   queue rule 1 orders the pair and nothing is reported.
//!
//! Determinism is absolute: the trace and label table are a pure
//! function of [`ScaleConfig`], built with the crate's private
//! SplitMix64 stream — same config, same bytes, on any machine.

use cafa_trace::{
    BranchKind, DerefKind, ObjId, Pc, ProcessId, QueueId, TaskId, Trace, TraceBuilder, VarId,
};

use crate::generator::{mix, Rng};
use crate::truth::{FpType, GroundTruth, Label, TrueClass};

/// Parameters of one scale-tier trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Corpus seed; every byte of the trace derives from it.
    pub seed: u64,
    /// Generation stops at the first island boundary at or past this
    /// many events.
    pub target_events: usize,
}

impl ScaleConfig {
    /// A tier of `target_events` under `seed`.
    pub fn new(seed: u64, target_events: usize) -> Self {
        Self {
            seed,
            target_events,
        }
    }
}

/// A generated scale-tier workload: the trace plus its label oracle.
#[derive(Debug)]
pub struct ScaleApp {
    /// The recorded trace.
    pub trace: Trace,
    /// Ground-truth labels, one per planted pattern variable.
    pub truth: GroundTruth,
    /// Number of independent islands the trace contains.
    pub islands: usize,
    /// Exact event count (≥ the configured target).
    pub events: usize,
}

/// Monotone id/address allocator shared by all islands, so every
/// pattern gets a fresh variable, a fresh object, and its own 4 KiB
/// method block (if-guard regions never alias across patterns).
struct Alloc {
    next_var: u32,
    next_obj: u32,
    next_block: u32,
}

impl Alloc {
    fn var(&mut self) -> VarId {
        self.next_var += 1;
        VarId::new(self.next_var - 1)
    }

    fn obj(&mut self) -> ObjId {
        self.next_obj += 1;
        ObjId::new(self.next_obj - 1)
    }

    /// Base address of a fresh method block.
    fn block(&mut self) -> Pc {
        self.next_block += 1;
        Pc::new((self.next_block - 1) * Pc::METHOD_BLOCK)
    }
}

/// One island's fixed cast.
struct Island {
    queue: QueueId,
    /// Independent driver threads; mutually concurrent.
    t1: TaskId,
    t2: TaskId,
    /// Filler-only thread, never referenced by a pattern.
    pump: TaskId,
}

/// Generates a labeled scale-tier trace.
///
/// # Examples
///
/// ```
/// use cafa_model::scale::{generate_scale, ScaleConfig};
///
/// let app = generate_scale(ScaleConfig::new(42, 2_000));
/// assert!(app.events >= 2_000);
/// assert!(app.truth.len() >= app.islands); // ≥ one pattern per island
/// ```
///
/// # Panics
///
/// Panics if the generated trace fails validation — impossible by
/// construction; a panic indicates a bug in this module.
pub fn generate_scale(config: ScaleConfig) -> ScaleApp {
    let mut b = TraceBuilder::new(format!("scale-s{}-e{}", config.seed, config.target_events));
    b.set_seed(config.seed);
    let mut truth = GroundTruth::new();
    let mut rng = Rng::new(mix(config.seed ^ 0x5ca1_ab1e));
    let mut ids = Alloc {
        next_var: 0,
        next_obj: 0,
        next_block: 1,
    };
    let mut events = 0usize;
    let mut islands = 0usize;
    while events < config.target_events {
        events += build_island(&mut b, &mut truth, &mut rng, &mut ids, islands);
        islands += 1;
    }
    let trace = b.finish().expect("generated scale trace is well-formed");
    ScaleApp {
        trace,
        truth,
        islands,
        events,
    }
}

/// Builds one island and returns how many events it added.
fn build_island(
    b: &mut TraceBuilder,
    truth: &mut GroundTruth,
    rng: &mut Rng,
    ids: &mut Alloc,
    index: usize,
) -> usize {
    let p = b.add_process();
    let island = Island {
        queue: b.add_queue(p),
        t1: b.add_thread(p, "driver-0"),
        t2: b.add_thread(p, "driver-1"),
        pump: b.add_thread(p, "pump"),
    };
    let mut events = 0usize;

    // Rotate the harmful class so every tier carries all three
    // Table 1 columns regardless of where generation stops.
    events += match index % 3 {
        0 => plant_harmful_a(b, truth, ids, &island),
        1 => plant_harmful_b(b, truth, ids, &island),
        _ => plant_harmful_c(b, truth, ids, &island, p),
    };
    if rng.chance(1, 2) {
        events += plant_fp(b, truth, ids, &island);
    }
    if rng.chance(1, 2) {
        let guard_variant = rng.chance(1, 2);
        events += plant_filtered(b, truth, ids, &island, guard_variant);
    }
    if rng.chance(1, 2) {
        events += plant_ordered(b, truth, ids, &island);
    }

    // Empty queue ticks: volume without rule work. Nothing reads or
    // writes in them, so no query ever probes their cones.
    let filler = rng.range(40, 170) as usize;
    for _ in 0..filler {
        let e = b.post(island.pump, island.queue, "pump-tick", 0);
        b.process_event(e);
    }
    events + filler
}

/// Harmful (a): use and free in two events of the island's looper,
/// posted by independent drivers — no queue rule fires (the sends are
/// unordered), so CAFA reports the pair; both endpoints share the
/// looper, so the class is intra-thread.
fn plant_harmful_a(
    b: &mut TraceBuilder,
    truth: &mut GroundTruth,
    ids: &mut Alloc,
    i: &Island,
) -> usize {
    let (var, obj, pc) = (ids.var(), ids.obj(), ids.block());
    let e_use = b.post(i.t1, i.queue, "a-use", 0);
    let e_free = b.post(i.t2, i.queue, "a-free", 0);
    b.process_event(e_use);
    b.obj_read(e_use, var, Some(obj), pc.offset(0x10));
    b.deref(e_use, obj, pc.offset(0x14), DerefKind::Invoke);
    b.process_event(e_free);
    b.obj_write(e_free, var, None, pc.offset(0x20));
    truth.insert(
        var,
        Label::Harmful {
            class: TrueClass::IntraThread,
            known: false,
        },
    );
    2
}

/// Harmful (b): the driver uses the pointer, *then* posts an event;
/// an independent driver's later-processed event frees it. The
/// conventional total event order chains the two events, serializing
/// use before free — only CAFA's relaxed order exposes the race.
fn plant_harmful_b(
    b: &mut TraceBuilder,
    truth: &mut GroundTruth,
    ids: &mut Alloc,
    i: &Island,
) -> usize {
    let (var, obj, pc) = (ids.var(), ids.obj(), ids.block());
    b.obj_read(i.t1, var, Some(obj), pc.offset(0x10));
    b.deref(i.t1, obj, pc.offset(0x14), DerefKind::Field);
    let e_anchor = b.post(i.t1, i.queue, "b-anchor", 5);
    let e_free = b.post(i.t2, i.queue, "b-free", 5);
    b.process_event(e_anchor);
    b.process_event(e_free);
    b.obj_write(e_free, var, None, pc.offset(0x20));
    truth.insert(
        var,
        Label::Harmful {
            class: TrueClass::InterThread,
            known: false,
        },
    );
    2
}

/// Harmful (c): a plain thread-vs-thread race on a child the island
/// forks — concurrent under the conventional model too.
fn plant_harmful_c(
    b: &mut TraceBuilder,
    truth: &mut GroundTruth,
    ids: &mut Alloc,
    i: &Island,
    p: ProcessId,
) -> usize {
    let (var, obj, pc) = (ids.var(), ids.obj(), ids.block());
    let worker = b.fork(i.t1, p, "worker");
    b.obj_read(worker, var, Some(obj), pc.offset(0x10));
    b.deref(worker, obj, pc.offset(0x14), DerefKind::Field);
    b.obj_write(i.t2, var, None, pc.offset(0x20));
    truth.insert(
        var,
        Label::Harmful {
            class: TrueClass::Conventional,
            known: false,
        },
    );
    0
}

/// False positive (§6.3 Type II): structurally identical to harmful
/// (a), but the raced value is a commutative flag — the detector
/// reports it, the oracle knows better.
fn plant_fp(b: &mut TraceBuilder, truth: &mut GroundTruth, ids: &mut Alloc, i: &Island) -> usize {
    let (var, obj, pc) = (ids.var(), ids.obj(), ids.block());
    let e_use = b.post(i.t1, i.queue, "fp-use", 0);
    let e_free = b.post(i.t2, i.queue, "fp-free", 0);
    b.process_event(e_use);
    b.obj_read(e_use, var, Some(obj), pc.offset(0x10));
    b.deref(e_use, obj, pc.offset(0x14), DerefKind::Invoke);
    b.process_event(e_free);
    b.obj_write(e_free, var, None, pc.offset(0x20));
    truth.insert(
        var,
        Label::Benign {
            fp: FpType::ImpreciseCommutativity,
        },
    );
    2
}

/// Filtered: a same-looper concurrent pair the §4.3 heuristics
/// suppress — either an intra-event allocation feeding the use, or an
/// if-eqz guard whose safe region covers it.
fn plant_filtered(
    b: &mut TraceBuilder,
    truth: &mut GroundTruth,
    ids: &mut Alloc,
    i: &Island,
    guard_variant: bool,
) -> usize {
    let (var, obj, pc) = (ids.var(), ids.obj(), ids.block());
    let e_use = b.post(i.t1, i.queue, "filtered-use", 0);
    let e_free = b.post(i.t2, i.queue, "filtered-free", 0);
    b.process_event(e_use);
    if guard_variant {
        // `if (p != null) p.run();` — the guarded read at +0x18 sits
        // inside the if-eqz fall-through region (+0x14, +0x40).
        b.obj_read(e_use, var, Some(obj), pc.offset(0x10));
        b.guard(
            e_use,
            BranchKind::IfEqz,
            pc.offset(0x14),
            pc.offset(0x40),
            obj,
        );
        b.obj_read(e_use, var, Some(obj), pc.offset(0x18));
        b.deref(e_use, obj, pc.offset(0x1c), DerefKind::Invoke);
    } else {
        // Allocation before use within the event.
        b.obj_write(e_use, var, Some(obj), pc.offset(0x10));
        b.obj_read(e_use, var, Some(obj), pc.offset(0x14));
        b.deref(e_use, obj, pc.offset(0x18), DerefKind::Invoke);
    }
    b.process_event(e_free);
    b.obj_write(e_free, var, None, pc.offset(0x20));
    truth.insert(var, Label::Filtered);
    2
}

/// Ordered: one driver posts use-event then free-event with equal
/// delays, so queue rule 1 derives `end(use) ≺ begin(free)` and the
/// pair never becomes a candidate. (An EventRacer-style model without
/// queue rules would report it — the §7.1.1 comparison.)
fn plant_ordered(
    b: &mut TraceBuilder,
    truth: &mut GroundTruth,
    ids: &mut Alloc,
    i: &Island,
) -> usize {
    let (var, obj, pc) = (ids.var(), ids.obj(), ids.block());
    let e_use = b.post(i.t1, i.queue, "ordered-use", 3);
    let e_free = b.post(i.t1, i.queue, "ordered-free", 3);
    b.process_event(e_use);
    b.obj_read(e_use, var, Some(obj), pc.offset(0x10));
    b.deref(e_use, obj, pc.offset(0x14), DerefKind::Invoke);
    b.process_event(e_free);
    b.obj_write(e_free, var, None, pc.offset(0x20));
    truth.insert(var, Label::Ordered);
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_is_byte_identical() {
        let a = generate_scale(ScaleConfig::new(7, 3_000));
        let b = generate_scale(ScaleConfig::new(7, 3_000));
        assert_eq!(
            cafa_trace::to_binary_vec(&a.trace),
            cafa_trace::to_binary_vec(&b.trace)
        );
        assert_eq!(a.islands, b.islands);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_scale(ScaleConfig::new(7, 3_000));
        let b = generate_scale(ScaleConfig::new(8, 3_000));
        assert_ne!(
            cafa_trace::to_binary_vec(&a.trace),
            cafa_trace::to_binary_vec(&b.trace)
        );
    }

    #[test]
    fn meets_target_and_labels_every_island() {
        let app = generate_scale(ScaleConfig::new(42, 5_000));
        assert!(app.events >= 5_000);
        assert_eq!(app.events, app.trace.stats().events);
        assert!(app.truth.len() >= app.islands, "≥ one pattern per island");
        // All three harmful classes appear.
        for class in [
            TrueClass::IntraThread,
            TrueClass::InterThread,
            TrueClass::Conventional,
        ] {
            assert!(app.truth.harmful_count(class) > 0, "{class:?} missing");
        }
    }
}
