//! Typed errors for model validation and parsing.

use std::fmt;

/// Why a model could not be parsed, validated, or lowered.
///
/// Malformed models never panic the interpreter: every shape the
/// lowering cannot handle is rejected up front by
/// [`AppModel::check`](crate::AppModel::check) with an error naming the
/// offending statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// The textual form could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The model parsed (or was constructed) but is not lowerable.
    Invalid {
        /// The app the model names.
        app: String,
        /// The offending statement: its 0-based index in
        /// [`AppModel::stmts`](crate::AppModel::stmts) and its DSL
        /// keyword. `None` for model-level problems (e.g. an event
        /// budget below the planted total).
        stmt: Option<(usize, &'static str)>,
        /// Why the statement (or model) is rejected.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Parse { line, message } => {
                write!(f, "model parse error at line {line}: {message}")
            }
            ModelError::Invalid {
                app,
                stmt: Some((index, keyword)),
                reason,
            } => write!(
                f,
                "invalid model `{app}`: stmt {index} ({keyword}): {reason}"
            ),
            ModelError::Invalid {
                app,
                stmt: None,
                reason,
            } => write!(f, "invalid model `{app}`: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_statement() {
        let e = ModelError::Invalid {
            app: "gen0-0001".to_owned(),
            stmt: Some((3, "ssh-relay")),
            reason: "updates must be >= 1".to_owned(),
        };
        let s = e.to_string();
        assert!(s.contains("gen0-0001"));
        assert!(s.contains("stmt 3"));
        assert!(s.contains("ssh-relay"));
    }

    #[test]
    fn display_parse_names_the_line() {
        let e = ModelError::Parse {
            line: 7,
            message: "unknown statement `frobnicate`".to_owned(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
