//! Seeded generation of labeled app corpora.
//!
//! The generator composes the DSL's pattern space — race kinds
//! (a)/(b)/(c), false-positive types I/II/III, commutative patterns,
//! lifecycle churn, Binder plumbing, event-source pipelines, scalar
//! textures — into arbitrarily many [`AppModel`]s, each carrying its
//! own ground-truth labels. Determinism is absolute: app `index` of
//! seed `s` is a pure function of `(s, index, size)`, computed with a
//! private SplitMix64 stream, so the same `--seed`/`--count` produce
//! byte-identical corpora on any machine, in any iteration order, and
//! at any analysis thread count.

use crate::dsl::{AppModel, Stmt};
use crate::error::ModelError;
use crate::lower::{lower, AppSpec};

/// SplitMix64's output mix (Steele et al.); also used to whiten the
/// per-app seed derivation.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny deterministic PRNG (SplitMix64). Hand-rolled so corpus
/// identity depends on nothing but this file.
pub(crate) struct Rng {
    state: u64,
}

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform-ish integer in `lo..=hi` (modulo bias is irrelevant
    /// here: only determinism matters, and ranges are tiny).
    pub(crate) fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next() % (hi - lo + 1)
    }

    /// True with probability `num`/`den`.
    pub(crate) fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

/// Workload size classes for generated apps, controlling both how many
/// patterns an app plants and how much timer-chain filler pads it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// A handful of patterns, a few hundred events.
    Small,
    /// The catalog's texture at reduced event counts.
    Medium,
    /// Pattern-dense apps approaching catalog event counts.
    Large,
    /// Per-app random draw among the three (the default).
    Mixed,
}

impl SizeClass {
    /// Parses the `--size` CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "small" => Ok(Self::Small),
            "medium" => Ok(Self::Medium),
            "large" => Ok(Self::Large),
            "mixed" => Ok(Self::Mixed),
            other => Err(format!(
                "unknown size class `{other}` (expected small, medium, large, or mixed)"
            )),
        }
    }
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Corpus seed: apps are `gen{seed}-0000` through `gen{seed}-NNNN`.
    pub seed: u64,
    /// Number of apps to generate.
    pub count: usize,
    /// Size class for every app ([`SizeClass::Mixed`] draws per app).
    pub size: SizeClass,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            count: 200,
            size: SizeClass::Mixed,
        }
    }
}

/// Service-name pool for generated Binder plumbing.
const SERVICES: &[&str] = &[
    "SyncService",
    "UploadService",
    "TelemetryService",
    "CacheService",
    "IndexService",
    "PrefetchService",
];

/// Uninstrumented packages for Type I listener patterns. None of these
/// share a prefix with the four instrumented framework packages
/// (`android.app`, `android.view`, `android.widget`,
/// `android.content`), so a listener registered here is invisible
/// under paper coverage.
const PACKAGES: &[&str] = &[
    "com.gen.app",
    "org.gen.widget",
    "net.gen.sync",
    "io.gen.player",
    "dev.gen.feed",
];

/// One entry per bespoke pipeline kind; each generated app uses at
/// most one so pipelines stay recognizable textures, not noise.
fn pipeline_stmt(rng: &mut Rng) -> Stmt {
    match rng.range(0, 9) {
        0 => Stmt::SshRelay {
            updates: rng.range(2, 10) as u32,
            keys: rng.range(1, 6) as u32,
        },
        1 => Stmt::GpsFixPipeline {
            fixes: rng.range(3, 14) as u32,
        },
        2 => Stmt::ScanPipeline {
            frames: rng.range(3, 10) as u32,
        },
        3 => Stmt::NoteSavePath {
            saves: rng.range(1, 4) as u32,
        },
        4 => Stmt::PageLoadPipeline,
        5 => Stmt::CompositorBounce {
            rounds: rng.range(2, 8) as u32,
        },
        6 => Stmt::PlaybackEngine,
        7 => Stmt::PlaybackChain {
            packets: rng.range(2, 8) as u32,
        },
        8 => Stmt::ShutterSequence,
        _ => Stmt::PaginationPrefetch {
            turns: rng.range(2, 8) as u32,
        },
    }
}

/// Per-class generation knobs.
struct Knobs {
    max_intra: u64,
    max_inter: u64,
    max_conv: u64,
    max_fp: u64,
    max_bursts: u64,
    burst_hi: u64,
    bundle_hi: u64,
    filler_lo: u64,
    filler_hi: u64,
}

fn knobs(size: SizeClass) -> Knobs {
    match size {
        SizeClass::Small => Knobs {
            max_intra: 1,
            max_inter: 1,
            max_conv: 1,
            max_fp: 1,
            max_bursts: 1,
            burst_hi: 8,
            bundle_hi: 4,
            filler_lo: 60,
            filler_hi: 160,
        },
        SizeClass::Medium => Knobs {
            max_intra: 2,
            max_inter: 2,
            max_conv: 3,
            max_fp: 2,
            max_bursts: 2,
            burst_hi: 16,
            bundle_hi: 6,
            filler_lo: 200,
            filler_hi: 400,
        },
        SizeClass::Large => Knobs {
            max_intra: 3,
            max_inter: 4,
            max_conv: 5,
            max_fp: 3,
            max_bursts: 3,
            burst_hi: 24,
            bundle_hi: 9,
            filler_lo: 500,
            filler_hi: 900,
        },
        SizeClass::Mixed => unreachable!("Mixed resolves to a concrete class per app"),
    }
}

fn gen_app(seed: u64, index: usize, size: SizeClass) -> AppModel {
    // The app's entire identity derives from (seed, index): whitened
    // separately so neighboring indices share no stream structure.
    let mut rng = Rng::new(mix(seed ^ mix(index as u64 ^ 0xa5a5_5a5a_c3c3_3c3c)));
    let size = match size {
        SizeClass::Mixed => match rng.range(0, 2) {
            0 => SizeClass::Small,
            1 => SizeClass::Medium,
            _ => SizeClass::Large,
        },
        concrete => concrete,
    };
    let k = knobs(size);
    let mut stmts = Vec::new();

    // Harmful patterns, catalog order: the Figure 1 shape first (rare),
    // then intra/inter/conv populations.
    if rng.chance(1, 4) {
        let svc = SERVICES[rng.range(0, SERVICES.len() as u64 - 1) as usize];
        stmts.push(Stmt::Fig1Binder {
            service: format!("{svc}{index}"),
        });
    }
    for _ in 0..rng.range(0, k.max_intra) {
        stmts.push(Stmt::Intra {
            known: false,
            caught: rng.chance(1, 3),
        });
    }
    for _ in 0..rng.range(0, k.max_inter) {
        stmts.push(Stmt::Inter { known: false });
    }
    for _ in 0..rng.range(0, k.max_conv) {
        stmts.push(Stmt::Conv);
    }

    // False positives, one population per §6.3 type.
    for _ in 0..rng.range(0, k.max_fp) {
        let pkg = PACKAGES[rng.range(0, PACKAGES.len() as u64 - 1) as usize];
        stmts.push(Stmt::FpListener {
            package: pkg.to_owned(),
        });
    }
    for _ in 0..rng.range(0, k.max_fp) {
        stmts.push(Stmt::FpBoolGuard);
    }
    for _ in 0..rng.range(0, k.max_fp) {
        stmts.push(Stmt::FpAlias);
    }

    // Commutative patterns: what the heuristics and queue rules must
    // keep silent.
    if rng.chance(1, 2) {
        stmts.push(Stmt::FilteredGuard);
    }
    if rng.chance(1, 2) {
        stmts.push(Stmt::FilteredAlloc);
    }
    for _ in 0..rng.range(1, 2) {
        stmts.push(Stmt::QueueProtected);
    }
    if rng.chance(1, 2) {
        stmts.push(Stmt::LifecycleChurn {
            cycles: rng.range(1, 4) as u32,
        });
    }

    // Low-level texture.
    if rng.chance(1, 3) {
        stmts.push(Stmt::Fig2ScalarRw);
    }

    // Plumbing: every app gets the flavor bundle (Binder poll, worker
    // pipeline, input burst, covered listener, handler thread).
    let svc = SERVICES[rng.range(0, SERVICES.len() as u64 - 1) as usize];
    stmts.push(Stmt::FlavorBundle {
        service: format!("{svc}{index}"),
        burst: rng.range(2, k.bundle_hi) as u32,
    });

    // At most one bespoke pipeline.
    if rng.chance(3, 4) {
        stmts.push(pipeline_stmt(&mut rng));
    }

    // Scalar bursts last, as in the catalog.
    for _ in 0..rng.range(0, k.max_bursts) {
        stmts.push(Stmt::ScalarBurst {
            writers: rng.range(1, 8) as u32,
            readers: rng.range(1, k.burst_hi) as u32,
        });
    }

    // Filler and compute draws come before the predictive draws so
    // every pre-existing (seed, index) keeps its original statement
    // population, filler budget, and compute knob.
    let filler = rng.range(k.filler_lo, k.filler_hi) as usize;
    let compute_units = rng.range(1, 50) as u32;

    // Predictive-only patterns: a lock handoff whose flip replay can
    // confirm, and a FIFO handoff whose flip is infeasible (adjudicated
    // as a false positive).
    if rng.chance(1, 2) {
        stmts.push(Stmt::LockHandoff);
    }
    if rng.chance(1, 3) {
        stmts.push(Stmt::FifoHandoff);
    }

    let planted: usize = stmts.iter().map(Stmt::events).sum();
    let events = planted + filler;
    let model = AppModel {
        name: format!("gen{seed}-{index:04}"),
        events,
        compute_units,
        lowlevel_pairs: None,
        stmts,
    };
    debug_assert!(model.check().is_ok(), "generator produced an invalid model");
    model
}

/// Generates the corpus described by `config`.
pub fn generate(config: &GenConfig) -> Vec<AppModel> {
    (0..config.count)
        .map(|i| gen_app(config.seed, i, config.size))
        .collect()
}

/// Generates app `index` of seed `seed`'s *default* (mixed-size)
/// corpus — the app `cafa record gen:<seed>:<index>` resolves to.
/// Identical to `generate(&GenConfig { seed, count: index + 1, size:
/// SizeClass::Mixed })[index]` without building the prefix.
pub fn generate_one(seed: u64, index: usize) -> AppModel {
    gen_app(seed, index, SizeClass::Mixed)
}

/// A generated corpus with its lowering, ready to plug into the same
/// harnesses (engine, fleet, validate, bench) that consume the
/// hand-curated catalog.
#[derive(Debug)]
pub struct GeneratedCatalog {
    /// The configuration the corpus was generated from.
    pub config: GenConfig,
    /// The generated models, in index order.
    pub models: Vec<AppModel>,
}

impl GeneratedCatalog {
    /// Generates the corpus for `config`.
    pub fn new(config: GenConfig) -> Self {
        let models = generate(&config);
        Self { config, models }
    }

    /// Lowers every model to a runnable [`AppSpec`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`ModelError`]; generated models always
    /// lower (`debug_assert`ed at generation).
    pub fn specs(&self) -> Result<Vec<AppSpec>, ModelError> {
        self.models.iter().map(lower).collect()
    }

    /// Number of apps in the corpus.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_corpus() {
        let cfg = GenConfig {
            seed: 42,
            count: 30,
            size: SizeClass::Mixed,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = GenConfig {
            seed: 1,
            count: 10,
            size: SizeClass::Mixed,
        };
        let b = GenConfig { seed: 2, ..a };
        assert_ne!(generate(&a), generate(&b));
    }

    #[test]
    fn generate_one_matches_the_corpus() {
        let cfg = GenConfig {
            seed: 7,
            count: 25,
            size: SizeClass::Mixed,
        };
        let corpus = generate(&cfg);
        for (i, model) in corpus.iter().enumerate() {
            assert_eq!(&generate_one(7, i), model, "index {i}");
        }
    }

    #[test]
    fn every_generated_model_checks_and_lowers() {
        let cfg = GenConfig {
            seed: 3,
            count: 40,
            size: SizeClass::Mixed,
        };
        for model in generate(&cfg) {
            model.check().unwrap_or_else(|e| panic!("{e}"));
            lower(&model).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn corpus_has_label_diversity() {
        // A healthy corpus exercises every label family.
        let specs = GeneratedCatalog::new(GenConfig {
            seed: 0,
            count: 60,
            size: SizeClass::Mixed,
        });
        let rows: Vec<_> = specs.models.iter().map(AppModel::expected_row).collect();
        assert!(rows.iter().any(|r| r.a > 0));
        assert!(rows.iter().any(|r| r.b > 0));
        assert!(rows.iter().any(|r| r.c > 0));
        assert!(rows.iter().any(|r| r.fp1 > 0));
        assert!(rows.iter().any(|r| r.fp2 > 0));
        assert!(rows.iter().any(|r| r.fp3 > 0));
        let confirmable: usize = specs
            .models
            .iter()
            .map(|m| m.predictive_count(Some(true)))
            .sum();
        let fp: usize = specs
            .models
            .iter()
            .map(|m| m.predictive_count(Some(false)))
            .sum();
        assert!(
            confirmable > 0,
            "corpus plants no confirmable predictive race"
        );
        assert!(fp > 0, "corpus plants no predictive false positive");
    }

    #[test]
    fn size_classes_scale_event_budgets() {
        let small = generate(&GenConfig {
            seed: 5,
            count: 20,
            size: SizeClass::Small,
        });
        let large = generate(&GenConfig {
            seed: 5,
            count: 20,
            size: SizeClass::Large,
        });
        let avg = |ms: &[AppModel]| ms.iter().map(|m| m.events).sum::<usize>() / ms.len();
        assert!(avg(&large) > 2 * avg(&small));
    }

    #[test]
    fn text_round_trip_of_generated_corpus() {
        let corpus = generate(&GenConfig {
            seed: 11,
            count: 15,
            size: SizeClass::Mixed,
        });
        let text = crate::text::corpus_to_text(&corpus);
        assert_eq!(crate::text::parse_corpus(&text).unwrap(), corpus);
    }
}
