//! Ground-truth labels for planted patterns.
//!
//! Each race/false-positive pattern a workload plants uses a dedicated
//! pointer variable; the label table maps that variable to what an
//! oracle knows about it. The detector never sees these labels — the
//! evaluation harness joins the detector's report against them to
//! produce the true/false-positive columns of Table 1.

use std::collections::HashMap;

use cafa_trace::VarId;

/// The true-race classes of Table 1 (columns a/b/c).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrueClass {
    /// (a) Intra-thread: both endpoints are events of one looper.
    IntraThread,
    /// (b) Inter-thread, invisible to a conventional detector.
    InterThread,
    /// (c) Conventionally detectable.
    Conventional,
}

/// The false-positive taxonomy of §6.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FpType {
    /// Type I: a listener registration edge the instrumentation missed.
    MissingListener,
    /// Type II: commutativity the heuristics cannot see (e.g. boolean
    /// flag guards).
    ImpreciseCommutativity,
    /// Type III: the dereference was matched to the wrong pointer read.
    DerefMismatch,
}

/// What the oracle knows about a planted pattern's variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// A real use-after-free hazard.
    Harmful {
        /// Which Table 1 class the race belongs to.
        class: TrueClass,
        /// True for the two previously-known bugs (ConnectBot r90632bd
        /// and the MyTracks Figure 1 bug).
        known: bool,
    },
    /// A benign report the detector should ideally not have made.
    Benign {
        /// Why the detector reports it anyway.
        fp: FpType,
    },
    /// A commutative pattern the heuristics are expected to filter
    /// (never reported; used to verify the filters actually fire).
    Filtered,
    /// A pattern ordered by the event-queue rules and therefore safe:
    /// never reported by CAFA, but reported by an EventRacer-style
    /// model without queue rules (the §7.1.1 comparison; exercised by
    /// the ablation bench).
    Ordered,
    /// A pattern the HB backend keeps silent on (ordered or filtered in
    /// the observed trace) that the *predictive* backend reports:
    /// `confirmable` says whether the claimed reordering is actually
    /// feasible — replay adjudication must confirm it with a witness
    /// when `true` and count it as a false positive when `false`.
    Predictive {
        /// The flip is feasible and a directed replay can witness it.
        confirmable: bool,
    },
}

/// Label table for one workload.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    labels: HashMap<VarId, Label>,
}

impl GroundTruth {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Labels `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is already labelled (each pattern must use a
    /// fresh variable).
    pub fn insert(&mut self, var: VarId, label: Label) {
        let prev = self.labels.insert(var, label);
        assert!(prev.is_none(), "variable {var} labelled twice");
    }

    /// The label of `var`, if any.
    pub fn get(&self, var: VarId) -> Option<Label> {
        self.labels.get(&var).copied()
    }

    /// Iterates over all labels.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Label)> + '_ {
        self.labels.iter().map(|(&v, &l)| (v, l))
    }

    /// Number of labelled variables.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no variable is labelled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Count of harmful labels of a class.
    pub fn harmful_count(&self, class: TrueClass) -> usize {
        self.labels
            .values()
            .filter(|l| matches!(l, Label::Harmful { class: c, .. } if *c == class))
            .count()
    }

    /// Count of benign labels of an FP type.
    pub fn benign_count(&self, fp: FpType) -> usize {
        self.labels
            .values()
            .filter(|l| matches!(l, Label::Benign { fp: f } if *f == fp))
            .count()
    }

    /// Count of predictive-only labels; `confirmable` filters to one
    /// adjudication outcome when `Some`.
    pub fn predictive_count(&self, confirmable: Option<bool>) -> usize {
        self.labels
            .values()
            .filter(|l| match **l {
                Label::Predictive { confirmable: c } => confirmable.map_or(true, |want| c == want),
                _ => false,
            })
            .count()
    }

    /// Count of known-bug labels.
    pub fn known_count(&self) -> usize {
        self.labels
            .values()
            .filter(|l| matches!(l, Label::Harmful { known: true, .. }))
            .count()
    }
}

/// One row of Table 1: the paper's published numbers for an app.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpectedRow {
    /// The "Events" column.
    pub events: usize,
    /// Races reported.
    pub reported: usize,
    /// True races (a): intra-thread violations.
    pub a: usize,
    /// True races (b): inter-thread violations.
    pub b: usize,
    /// True races (c): conventional violations.
    pub c: usize,
    /// Type I false positives.
    pub fp1: usize,
    /// Type II false positives.
    pub fp2: usize,
    /// Type III false positives.
    pub fp3: usize,
}

impl ExpectedRow {
    /// Total true races.
    pub fn true_races(&self) -> usize {
        self.a + self.b + self.c
    }

    /// Total false positives.
    pub fn false_positives(&self) -> usize {
        self.fp1 + self.fp2 + self.fp3
    }

    /// Internal consistency: reported = true + false.
    pub fn is_consistent(&self) -> bool {
        self.reported == self.true_races() + self.false_positives()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_kind() {
        let mut t = GroundTruth::new();
        t.insert(
            VarId::new(0),
            Label::Harmful {
                class: TrueClass::IntraThread,
                known: true,
            },
        );
        t.insert(
            VarId::new(1),
            Label::Harmful {
                class: TrueClass::InterThread,
                known: false,
            },
        );
        t.insert(
            VarId::new(2),
            Label::Benign {
                fp: FpType::DerefMismatch,
            },
        );
        t.insert(VarId::new(3), Label::Filtered);
        assert_eq!(t.harmful_count(TrueClass::IntraThread), 1);
        assert_eq!(t.harmful_count(TrueClass::Conventional), 0);
        assert_eq!(t.benign_count(FpType::DerefMismatch), 1);
        assert_eq!(t.known_count(), 1);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(VarId::new(3)), Some(Label::Filtered));
        assert_eq!(t.get(VarId::new(9)), None);
    }

    #[test]
    #[should_panic(expected = "labelled twice")]
    fn double_label_panics() {
        let mut t = GroundTruth::new();
        t.insert(VarId::new(0), Label::Filtered);
        t.insert(VarId::new(0), Label::Filtered);
    }

    #[test]
    fn expected_row_consistency() {
        let row = ExpectedRow {
            events: 10,
            reported: 5,
            a: 1,
            b: 1,
            c: 1,
            fp1: 1,
            fp2: 1,
            fp3: 0,
        };
        assert!(row.is_consistent());
        assert_eq!(row.true_races(), 3);
        assert_eq!(row.false_positives(), 2);
    }
}
