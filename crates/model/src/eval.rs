//! Scoring a detector's report against a model's embedded labels.
//!
//! Every planted statement carries its ground-truth [`Label`], so a
//! corpus of models doubles as a precision/recall suite: harmful and
//! benign labels are *expected* in the report (the benign ones are the
//! false positives the paper's Table 1 counts), while `Filtered` and
//! `Ordered` labels are expected to be suppressed — by the heuristic
//! filters and the happens-before model respectively. [`Score`]
//! tallies both sides per label bucket; the `catalog_regression`
//! suite, `cafa gen --format counts`, and the `--catalog` bench all
//! join reports through it.

use crate::truth::{FpType, GroundTruth, Label, TrueClass};
use cafa_trace::VarId;

/// Planted-vs-reported tally for one label bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Variables carrying this label in the ground truth.
    pub planted: usize,
    /// Of those, how many the detector reported.
    pub reported: usize,
}

impl Tally {
    /// Fraction of planted variables that were reported (1.0 when
    /// nothing was planted: vacuous recall).
    pub fn recall(&self) -> f64 {
        if self.planted == 0 {
            1.0
        } else {
            self.reported as f64 / self.planted as f64
        }
    }

    /// Fraction of planted variables the detector kept *out* of the
    /// report — the success metric for `Filtered`/`Ordered` buckets.
    pub fn suppression(&self) -> f64 {
        if self.planted == 0 {
            1.0
        } else {
            1.0 - self.recall()
        }
    }
}

/// Per-label detection tallies over one app or a whole corpus.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Score {
    /// Apps tallied into this score.
    pub apps: usize,
    /// Races the detector reported in total.
    pub reported: usize,
    /// True intra-thread races (class a).
    pub a: Tally,
    /// True inter-thread races (class b).
    pub b: Tally,
    /// True conventional races (class c).
    pub c: Tally,
    /// Type I false positives (missing listener records).
    pub fp1: Tally,
    /// Type II false positives (imprecise commutativity).
    pub fp2: Tally,
    /// Type III false positives (dereference mismatch).
    pub fp3: Tally,
    /// Patterns the heuristic filters must prune.
    pub filtered: Tally,
    /// Patterns the happens-before rules must order.
    pub ordered: Tally,
    /// Predictive-only patterns: silent under the HB backend (this
    /// tally's `reported` counts any that leak into its report, and
    /// must stay 0); the predictive backend's extra reports on them
    /// are scored by the replay adjudication harness, not here.
    pub predictive: Tally,
    /// Reported races with no ground-truth label (must stay 0: the
    /// workloads label every variable a correct detector can report).
    pub unlabeled: usize,
}

impl Score {
    /// Empty score.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tallies one app: its ground truth against the variables the
    /// detector reported for its trace.
    pub fn tally_app(&mut self, truth: &GroundTruth, reported: impl IntoIterator<Item = VarId>) {
        self.apps += 1;
        for (_, label) in truth.iter() {
            self.bucket_mut(label).planted += 1;
        }
        for var in reported {
            self.reported += 1;
            match truth.get(var) {
                Some(label) => self.bucket_mut(label).reported += 1,
                None => self.unlabeled += 1,
            }
        }
    }

    /// Folds another score (e.g. one app's) into this one.
    pub fn merge(&mut self, other: &Score) {
        self.apps += other.apps;
        self.reported += other.reported;
        self.unlabeled += other.unlabeled;
        for (mine, theirs) in self.buckets_mut().into_iter().zip(other.buckets()) {
            mine.planted += theirs.planted;
            mine.reported += theirs.reported;
        }
    }

    fn bucket_mut(&mut self, label: Label) -> &mut Tally {
        match label {
            Label::Harmful {
                class: TrueClass::IntraThread,
                ..
            } => &mut self.a,
            Label::Harmful {
                class: TrueClass::InterThread,
                ..
            } => &mut self.b,
            Label::Harmful {
                class: TrueClass::Conventional,
                ..
            } => &mut self.c,
            Label::Benign {
                fp: FpType::MissingListener,
            } => &mut self.fp1,
            Label::Benign {
                fp: FpType::ImpreciseCommutativity,
            } => &mut self.fp2,
            Label::Benign {
                fp: FpType::DerefMismatch,
            } => &mut self.fp3,
            Label::Filtered => &mut self.filtered,
            Label::Ordered => &mut self.ordered,
            Label::Predictive { .. } => &mut self.predictive,
        }
    }

    fn buckets(&self) -> [Tally; 9] {
        [
            self.a,
            self.b,
            self.c,
            self.fp1,
            self.fp2,
            self.fp3,
            self.filtered,
            self.ordered,
            self.predictive,
        ]
    }

    fn buckets_mut(&mut self) -> [&mut Tally; 9] {
        [
            &mut self.a,
            &mut self.b,
            &mut self.c,
            &mut self.fp1,
            &mut self.fp2,
            &mut self.fp3,
            &mut self.filtered,
            &mut self.ordered,
            &mut self.predictive,
        ]
    }

    /// Reported true races (classes a+b+c).
    pub fn true_reported(&self) -> usize {
        self.a.reported + self.b.reported + self.c.reported
    }

    /// Planted true races (classes a+b+c).
    pub fn true_planted(&self) -> usize {
        self.a.planted + self.b.planted + self.c.planted
    }

    /// Reported benign races (FP types I+II+III).
    pub fn benign_reported(&self) -> usize {
        self.fp1.reported + self.fp2.reported + self.fp3.reported
    }

    /// Planted benign races (FP types I+II+III).
    pub fn benign_planted(&self) -> usize {
        self.fp1.planted + self.fp2.planted + self.fp3.planted
    }

    /// Detector precision: true reports over all reports (the paper's
    /// headline 60%). 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        if self.reported == 0 {
            1.0
        } else {
            self.true_reported() as f64 / self.reported as f64
        }
    }

    /// Recall over planted harmful races.
    pub fn harmful_recall(&self) -> f64 {
        if self.true_planted() == 0 {
            1.0
        } else {
            self.true_reported() as f64 / self.true_planted() as f64
        }
    }

    /// Recall over planted benign (expected-false-positive) races.
    pub fn benign_recall(&self) -> f64 {
        if self.benign_planted() == 0 {
            1.0
        } else {
            self.benign_reported() as f64 / self.benign_planted() as f64
        }
    }

    /// The stable one-line rendering `cafa gen --format counts` prints
    /// per app (and as a TOTAL row), pinned by the CI golden file:
    /// each bucket shows `reported/planted`.
    pub fn counts_line(&self, name: &str) -> String {
        format!(
            "{name} reported={} a={}/{} b={}/{} c={}/{} fp1={}/{} fp2={}/{} fp3={}/{} \
             filtered={}/{} ordered={}/{} predictive={}/{} unlabeled={}",
            self.reported,
            self.a.reported,
            self.a.planted,
            self.b.reported,
            self.b.planted,
            self.c.reported,
            self.c.planted,
            self.fp1.reported,
            self.fp1.planted,
            self.fp2.reported,
            self.fp2.planted,
            self.fp3.reported,
            self.fp3.planted,
            self.filtered.reported,
            self.filtered.planted,
            self.ordered.reported,
            self.ordered.planted,
            self.predictive.reported,
            self.predictive.planted,
            self.unlabeled,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: u32) -> VarId {
        VarId::new(n)
    }

    fn sample_truth() -> GroundTruth {
        let mut t = GroundTruth::new();
        t.insert(
            var(1),
            Label::Harmful {
                class: TrueClass::IntraThread,
                known: false,
            },
        );
        t.insert(
            var(2),
            Label::Benign {
                fp: FpType::ImpreciseCommutativity,
            },
        );
        t.insert(var(3), Label::Filtered);
        t.insert(var(4), Label::Ordered);
        t.insert(var(5), Label::Predictive { confirmable: true });
        t
    }

    #[test]
    fn tallies_planted_and_reported_per_bucket() {
        let mut s = Score::new();
        s.tally_app(&sample_truth(), [var(1), var(2)]);
        assert_eq!(s.apps, 1);
        assert_eq!(s.reported, 2);
        assert_eq!(
            s.a,
            Tally {
                planted: 1,
                reported: 1
            }
        );
        assert_eq!(
            s.fp2,
            Tally {
                planted: 1,
                reported: 1
            }
        );
        assert_eq!(
            s.filtered,
            Tally {
                planted: 1,
                reported: 0
            }
        );
        assert_eq!(
            s.ordered,
            Tally {
                planted: 1,
                reported: 0
            }
        );
        assert_eq!(
            s.predictive,
            Tally {
                planted: 1,
                reported: 0
            }
        );
        assert_eq!(s.unlabeled, 0);
        assert!((s.precision() - 0.5).abs() < f64::EPSILON);
        assert!((s.harmful_recall() - 1.0).abs() < f64::EPSILON);
        assert!((s.filtered.suppression() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn unlabeled_reports_are_counted_not_dropped() {
        let mut s = Score::new();
        s.tally_app(&sample_truth(), [var(99)]);
        assert_eq!(s.unlabeled, 1);
        assert_eq!(s.reported, 1);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Score::new();
        a.tally_app(&sample_truth(), [var(1)]);
        let mut b = Score::new();
        b.tally_app(&sample_truth(), [var(2), var(3)]);
        let mut total = Score::new();
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.apps, 2);
        assert_eq!(total.reported, 3);
        assert_eq!(
            total.a,
            Tally {
                planted: 2,
                reported: 1
            }
        );
        assert_eq!(
            total.fp2,
            Tally {
                planted: 2,
                reported: 1
            }
        );
        assert_eq!(
            total.filtered,
            Tally {
                planted: 2,
                reported: 1
            }
        );
    }

    #[test]
    fn counts_line_is_stable() {
        let mut s = Score::new();
        s.tally_app(&sample_truth(), [var(1), var(2)]);
        assert_eq!(
            s.counts_line("demo"),
            "demo reported=2 a=1/1 b=0/0 c=0/0 fp1=0/0 fp2=1/1 fp3=0/0 \
             filtered=0/1 ordered=0/1 predictive=0/1 unlabeled=0"
        );
    }
}
