//! The app-model DSL: workloads as plain data.

use crate::error::ModelError;
use crate::truth::{ExpectedRow, FpType, Label, TrueClass};

/// Largest number of same-body posts the 4 KiB method-block layout
/// admits (mirrors `cafa_sim::MAX_BODY_ACTIONS`).
const MAX_BODY: u32 = 120;

/// One statement of an app model.
///
/// Statements fall into five groups, mirroring how the hand-written
/// catalog was organized:
///
/// * **harmful patterns** — planted use-after-free races of the Table 1
///   true classes (a)/(b)/(c), each labelling its pointer variable
///   [`Label::Harmful`];
/// * **false-positive patterns** — benign shapes the detector reports
///   anyway, one per §6.3 type I/II/III, labelled [`Label::Benign`];
/// * **commutative patterns** — shapes the heuristics or queue rules
///   must keep silent ([`Label::Filtered`] / [`Label::Ordered`]);
/// * **low-level texture** — scalar races that feed the §4.1
///   conventional-definition counter but are not use-free races;
/// * **plumbing and pipelines** — benign Binder/monitor/looper
///   machinery and the bespoke per-app event sources (sensor streams,
///   decode pipelines, compositor bounces), unlabelled by design.
///
/// Every statement knows how many trace events it plants
/// ([`Stmt::events`]) and which labels it embeds ([`Stmt::label`]), so
/// an [`AppModel`]'s Table 1 row is *derived from the data* rather than
/// maintained in a parallel table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    // ---- harmful patterns ------------------------------------------------
    /// Class (a): two logically concurrent events on the main looper,
    /// one using a pointer the other frees. `caught` swallows the NPE
    /// (the ToDoList §6.2 shape).
    Intra {
        /// A previously-known bug (Table 1's "known" column).
        known: bool,
        /// The handler catches the NPE instead of crashing.
        caught: bool,
    },
    /// Class (a), full Figure 1: an async Binder bind posts
    /// `onServiceConnected`, racing a later lifecycle free.
    Fig1Binder {
        /// Binder service name (hosted in its own process).
        service: String,
    },
    /// Class (b): inter-thread, invisible to a conventional detector.
    Inter {
        /// A previously-known bug.
        known: bool,
    },
    /// Class (c): a plain thread-versus-thread hazard both models see.
    Conv,
    // ---- false-positive patterns -----------------------------------------
    /// Type I: listener registration in an *uninstrumented* package
    /// orders the real execution; the analyzer cannot see it.
    FpListener {
        /// The uninstrumented Android package owning the listener.
        package: String,
    },
    /// Type II: a boolean flag guards the use; the if-guard heuristic
    /// only understands pointer tests.
    FpBoolGuard,
    /// Type III: a decoy alias makes nearest-previous-read matching
    /// attribute the dereference to the wrong variable.
    FpAlias,
    // ---- commutative patterns --------------------------------------------
    /// Figure 5 `onFocus`: an if-guard the detector must filter.
    FilteredGuard,
    /// Figure 5 `onResume`: an in-event allocation the detector must
    /// filter.
    FilteredAlloc,
    /// A use/free pair ordered by queue rule 1 (safe under CAFA,
    /// reported by an EventRacer-style model).
    QueueProtected,
    /// Lifecycle churn: repeated resume/pause gesture pairs that alloc,
    /// use, and free one pointer — ordered end to end by the
    /// external-input rule, so CAFA stays silent.
    LifecycleChurn {
        /// Resume/pause round trips.
        cycles: u32,
    },
    // ---- predictive-only patterns ----------------------------------------
    /// A monitor-guarded use/free handoff where the lock protects
    /// *nothing but the racing pointer*: the HB backend's lockset
    /// filter suppresses the pair, the predictive backend re-reports
    /// it, and a directed replay can flip the critical sections to
    /// confirm the violation ([`Label::Predictive`], confirmable).
    LockHandoff,
    /// A use/free pair ordered only through a FIFO posting chain the
    /// predictive relation relaxes away: predictive-only report whose
    /// flip the queue discipline makes infeasible — adjudication must
    /// count it as a false positive ([`Label::Predictive`], not
    /// confirmable).
    FifoHandoff,
    // ---- low-level texture -----------------------------------------------
    /// Figure 2's scalar read-write race (`onPause` vs `onLayout`).
    Fig2ScalarRw,
    /// A burst of mutually concurrent scalar writers/readers: `w·r +
    /// C(w,2)` conventional racy site pairs, zero use-free reports.
    ScalarBurst {
        /// Writer events.
        writers: u32,
        /// Reader events.
        readers: u32,
    },
    // ---- benign plumbing -------------------------------------------------
    /// A synchronous Binder poll to a per-pattern service process.
    ServicePoll {
        /// Binder service name.
        service: String,
    },
    /// Fork/notify/wait/join worker handshake.
    WorkerPipeline,
    /// `count` front-posted vsync-style input events.
    InputBurst {
        /// Events front-posted by the dispatch handler.
        count: u32,
    },
    /// A framework-covered (always instrumented) listener round.
    CoveredListener,
    /// A background `HandlerThread` looper running a bounded chain.
    HandlerThread {
        /// Chain length (events on the side looper).
        len: u32,
    },
    /// The bundle most catalog apps use: one of each flavor, sized by
    /// `burst`.
    FlavorBundle {
        /// Binder service name for the poll.
        service: String,
        /// Input-burst size.
        burst: u32,
    },
    // ---- bespoke event-source pipelines ----------------------------------
    /// ConnectBot's SSH transport relay + front-posted keystrokes.
    SshRelay {
        /// Terminal update chain length.
        updates: u32,
        /// Front-posted key events.
        keys: u32,
    },
    /// MyTracks' lock-protected GPS fix stream.
    GpsFixPipeline {
        /// Location fixes delivered.
        fixes: u32,
    },
    /// ZXing's preview chain + fork/join decode + result publication.
    ScanPipeline {
        /// Preview frames.
        frames: u32,
    },
    /// ToDoList's looper-blocking db-writer handshake per save.
    NoteSavePath {
        /// Notes saved.
        saves: u32,
    },
    /// Browser's network → cache → parse → layout → paint pipeline.
    PageLoadPipeline,
    /// Firefox's UI/compositor looper ping-pong.
    CompositorBounce {
        /// Submit/composite round trips.
        rounds: u32,
    },
    /// Music's producer/consumer audio handoff.
    PlaybackEngine,
    /// VLC's demux → video-looper decode → render-tick chain.
    PlaybackChain {
        /// Packets decoded.
        packets: u32,
    },
    /// Camera's Binder-triggered shutter with storage join.
    ShutterSequence,
    /// FBReader's fork/join page-turn prefetch.
    PaginationPrefetch {
        /// Page turns.
        turns: u32,
    },
}

impl Stmt {
    /// The DSL keyword of this statement (also its serialized name).
    pub fn keyword(&self) -> &'static str {
        match self {
            Stmt::Intra { .. } => "intra",
            Stmt::Fig1Binder { .. } => "fig1-binder",
            Stmt::Inter { .. } => "inter",
            Stmt::Conv => "conv",
            Stmt::FpListener { .. } => "fp-listener",
            Stmt::FpBoolGuard => "fp-bool-guard",
            Stmt::FpAlias => "fp-alias",
            Stmt::FilteredGuard => "filtered-guard",
            Stmt::FilteredAlloc => "filtered-alloc",
            Stmt::QueueProtected => "queue-protected",
            Stmt::LifecycleChurn { .. } => "lifecycle-churn",
            Stmt::LockHandoff => "lock-handoff",
            Stmt::FifoHandoff => "fifo-handoff",
            Stmt::Fig2ScalarRw => "fig2-scalar-rw",
            Stmt::ScalarBurst { .. } => "scalar-burst",
            Stmt::ServicePoll { .. } => "service-poll",
            Stmt::WorkerPipeline => "worker-pipeline",
            Stmt::InputBurst { .. } => "input-burst",
            Stmt::CoveredListener => "covered-listener",
            Stmt::HandlerThread { .. } => "handler-thread",
            Stmt::FlavorBundle { .. } => "flavor-bundle",
            Stmt::SshRelay { .. } => "ssh-relay",
            Stmt::GpsFixPipeline { .. } => "gps-fix-pipeline",
            Stmt::ScanPipeline { .. } => "scan-pipeline",
            Stmt::NoteSavePath { .. } => "note-save-path",
            Stmt::PageLoadPipeline => "page-load-pipeline",
            Stmt::CompositorBounce { .. } => "compositor-bounce",
            Stmt::PlaybackEngine => "playback-engine",
            Stmt::PlaybackChain { .. } => "playback-chain",
            Stmt::ShutterSequence => "shutter-sequence",
            Stmt::PaginationPrefetch { .. } => "pagination-prefetch",
        }
    }

    /// Trace events this statement plants when lowered (the amounts the
    /// interpreter's `add_events` calls will report).
    pub fn events(&self) -> usize {
        match *self {
            Stmt::Intra { .. } => 2,
            Stmt::Fig1Binder { .. } => 3,
            Stmt::Inter { .. } => 2,
            Stmt::Conv => 0,
            Stmt::FpListener { .. } => 2,
            Stmt::FpBoolGuard => 2,
            Stmt::FpAlias => 3,
            Stmt::FilteredGuard => 2,
            Stmt::FilteredAlloc => 2,
            Stmt::QueueProtected => 2,
            Stmt::LifecycleChurn { cycles } => 2 * cycles as usize,
            Stmt::LockHandoff => 0,
            Stmt::FifoHandoff => 3,
            Stmt::Fig2ScalarRw => 2,
            Stmt::ScalarBurst { writers, readers } => (writers + readers) as usize,
            Stmt::ServicePoll { .. } => 2,
            Stmt::WorkerPipeline => 2,
            Stmt::InputBurst { count } => count as usize + 1,
            Stmt::CoveredListener => 2,
            Stmt::HandlerThread { len } => len as usize,
            Stmt::FlavorBundle { burst, .. } => 9 + burst as usize,
            Stmt::SshRelay { updates, keys } => updates as usize + keys as usize + 1,
            Stmt::GpsFixPipeline { fixes } => fixes as usize,
            Stmt::ScanPipeline { frames } => frames as usize + 2,
            Stmt::NoteSavePath { saves } => 2 * saves as usize,
            Stmt::PageLoadPipeline => 5,
            Stmt::CompositorBounce { rounds } => 2 * rounds as usize,
            Stmt::PlaybackEngine => 2,
            Stmt::PlaybackChain { packets } => 2 * packets as usize,
            Stmt::ShutterSequence => 3,
            Stmt::PaginationPrefetch { turns } => turns as usize,
        }
    }

    /// The ground-truth label this statement embeds, if it plants a
    /// labelled pattern. Plumbing and pipeline statements are
    /// unlabelled: they must never appear in a report at all.
    pub fn label(&self) -> Option<Label> {
        match *self {
            Stmt::Intra { known, .. } => Some(Label::Harmful {
                class: TrueClass::IntraThread,
                known,
            }),
            Stmt::Fig1Binder { .. } => Some(Label::Harmful {
                class: TrueClass::IntraThread,
                known: true,
            }),
            Stmt::Inter { known } => Some(Label::Harmful {
                class: TrueClass::InterThread,
                known,
            }),
            Stmt::Conv => Some(Label::Harmful {
                class: TrueClass::Conventional,
                known: false,
            }),
            Stmt::FpListener { .. } => Some(Label::Benign {
                fp: FpType::MissingListener,
            }),
            Stmt::FpBoolGuard => Some(Label::Benign {
                fp: FpType::ImpreciseCommutativity,
            }),
            Stmt::FpAlias => Some(Label::Benign {
                fp: FpType::DerefMismatch,
            }),
            Stmt::FilteredGuard | Stmt::FilteredAlloc => Some(Label::Filtered),
            Stmt::QueueProtected | Stmt::LifecycleChurn { .. } => Some(Label::Ordered),
            Stmt::LockHandoff => Some(Label::Predictive { confirmable: true }),
            Stmt::FifoHandoff => Some(Label::Predictive { confirmable: false }),
            _ => None,
        }
    }

    /// Statement-local validity: parameter ranges the lowering requires.
    fn validate(&self) -> Result<(), String> {
        let need = |cond: bool, msg: &str| {
            if cond {
                Ok(())
            } else {
                Err(msg.to_owned())
            }
        };
        match *self {
            Stmt::Fig1Binder { ref service } => {
                need(!service.is_empty(), "service name must be non-empty")
            }
            Stmt::FpListener { ref package } => {
                need(!package.is_empty(), "listener package must be non-empty")
            }
            Stmt::LifecycleChurn { cycles } => need(cycles >= 1, "cycles must be >= 1"),
            Stmt::ScalarBurst { writers, readers } => need(
                writers + readers <= MAX_BODY,
                "writers + readers must fit one post body (<= 120)",
            ),
            Stmt::ServicePoll { ref service } => {
                need(!service.is_empty(), "service name must be non-empty")
            }
            Stmt::InputBurst { count } => {
                need(count < MAX_BODY, "count must fit one dispatch body (< 120)")
            }
            Stmt::HandlerThread { len } => need(len >= 1, "len must be >= 1"),
            Stmt::FlavorBundle { ref service, burst } => {
                need(!service.is_empty(), "service name must be non-empty")?;
                need(burst < MAX_BODY, "burst must fit one dispatch body (< 120)")
            }
            Stmt::SshRelay { updates, keys } => {
                need(updates >= 1, "updates must be >= 1")?;
                need(keys < MAX_BODY, "keys must fit one dispatch body (< 120)")
            }
            Stmt::GpsFixPipeline { fixes } => need(fixes >= 1, "fixes must be >= 1"),
            Stmt::ScanPipeline { frames } => need(frames >= 1, "frames must be >= 1"),
            Stmt::CompositorBounce { rounds } => need(rounds >= 1, "rounds must be >= 1"),
            Stmt::PlaybackChain { packets } => need(packets >= 1, "packets must be >= 1"),
            _ => Ok(()),
        }
    }
}

/// One application workload as data: the complete input from which the
/// interpreter builds both the deterministic Table 1 program and its
/// stress variant, plus the ground-truth label table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppModel {
    /// Application name (becomes the trace's `app` metadata).
    pub name: String,
    /// Total trace events the recorded run must contain; the
    /// interpreter adds timer-chain filler on top of the planted
    /// statements to reach this target exactly (the Table 1 "Events"
    /// column).
    pub events: usize,
    /// Uninstrumented CPU work per filler event — the per-app knob
    /// behind the Figure 8 tracing-overhead spread.
    pub compute_units: u32,
    /// Expected conventional-definition racy site pairs, where a
    /// published number exists (ConnectBot's 1,664 of §4.1).
    pub lowlevel_pairs: Option<usize>,
    /// The planted statements, lowered in order.
    pub stmts: Vec<Stmt>,
}

impl AppModel {
    /// Trace events the statements plant before filler.
    pub fn planted_events(&self) -> usize {
        self.stmts.iter().map(Stmt::events).sum()
    }

    /// Number of labelled pattern variables the model embeds.
    pub fn label_count(&self) -> usize {
        self.stmts.iter().filter(|s| s.label().is_some()).count()
    }

    /// Count of embedded harmful labels of `class`.
    pub fn harmful_count(&self, class: TrueClass) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s.label(), Some(Label::Harmful { class: c, .. }) if c == class))
            .count()
    }

    /// Count of embedded benign labels of `fp`.
    pub fn benign_count(&self, fp: FpType) -> usize {
        self.stmts
            .iter()
            .filter(|s| matches!(s.label(), Some(Label::Benign { fp: f }) if f == fp))
            .count()
    }

    /// Count of embedded predictive-only labels; `confirmable` filters
    /// to one adjudication outcome when `Some`. These do not enter the
    /// Table 1 row: the HB backend must stay silent on them.
    pub fn predictive_count(&self, confirmable: Option<bool>) -> usize {
        self.stmts
            .iter()
            .filter(|s| match s.label() {
                Some(Label::Predictive { confirmable: c }) => {
                    confirmable.map_or(true, |want| c == want)
                }
                _ => false,
            })
            .count()
    }

    /// The Table 1 row this model implies, derived entirely from the
    /// embedded labels: the data is the single source of truth for
    /// what the detector is expected to report.
    pub fn expected_row(&self) -> ExpectedRow {
        let a = self.harmful_count(TrueClass::IntraThread);
        let b = self.harmful_count(TrueClass::InterThread);
        let c = self.harmful_count(TrueClass::Conventional);
        let fp1 = self.benign_count(FpType::MissingListener);
        let fp2 = self.benign_count(FpType::ImpreciseCommutativity);
        let fp3 = self.benign_count(FpType::DerefMismatch);
        ExpectedRow {
            events: self.events,
            reported: a + b + c + fp1 + fp2 + fp3,
            a,
            b,
            c,
            fp1,
            fp2,
            fp3,
        }
    }

    /// Validates the model without lowering it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] naming the offending statement
    /// (index and keyword) for out-of-range parameters, or a
    /// model-level error when the event budget is below the planted
    /// total. A model that passes `check` lowers without panicking.
    pub fn check(&self) -> Result<(), ModelError> {
        if self.name.is_empty() {
            return Err(ModelError::Invalid {
                app: String::from("<unnamed>"),
                stmt: None,
                reason: "app name must be non-empty".to_owned(),
            });
        }
        for (index, stmt) in self.stmts.iter().enumerate() {
            stmt.validate().map_err(|reason| ModelError::Invalid {
                app: self.name.clone(),
                stmt: Some((index, stmt.keyword())),
                reason,
            })?;
        }
        let planted = self.planted_events();
        if planted > self.events {
            return Err(ModelError::Invalid {
                app: self.name.clone(),
                stmt: None,
                reason: format!(
                    "event budget {} is below the {planted} events the statements plant",
                    self.events
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(stmts: Vec<Stmt>) -> AppModel {
        AppModel {
            name: "t".to_owned(),
            events: 500,
            compute_units: 10,
            lowlevel_pairs: None,
            stmts,
        }
    }

    #[test]
    fn derived_row_counts_labels() {
        let m = tiny(vec![
            Stmt::Intra {
                known: false,
                caught: true,
            },
            Stmt::Inter { known: true },
            Stmt::Conv,
            Stmt::FpListener {
                package: "com.example".to_owned(),
            },
            Stmt::FpBoolGuard,
            Stmt::FpAlias,
            Stmt::FilteredGuard,
            Stmt::QueueProtected,
            Stmt::PageLoadPipeline,
        ]);
        let row = m.expected_row();
        assert_eq!((row.a, row.b, row.c), (1, 1, 1));
        assert_eq!((row.fp1, row.fp2, row.fp3), (1, 1, 1));
        assert_eq!(row.reported, 6);
        assert!(row.is_consistent());
        assert_eq!(m.label_count(), 8);
    }

    #[test]
    fn check_rejects_zero_updates_naming_the_statement() {
        let m = tiny(vec![
            Stmt::Conv,
            Stmt::SshRelay {
                updates: 0,
                keys: 3,
            },
        ]);
        let err = m.check().unwrap_err();
        match err {
            ModelError::Invalid {
                stmt: Some((1, "ssh-relay")),
                ..
            } => {}
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn check_rejects_overfull_event_budget() {
        let mut m = tiny(vec![Stmt::ScalarBurst {
            writers: 10,
            readers: 30,
        }]);
        m.events = 10;
        let err = m.check().unwrap_err();
        assert!(err.to_string().contains("below the 40 events"));
    }

    #[test]
    fn check_accepts_the_empty_model() {
        assert!(tiny(vec![]).check().is_ok());
    }

    #[test]
    fn statement_events_match_interpreter_accounting() {
        assert_eq!(
            Stmt::SshRelay {
                updates: 8,
                keys: 3
            }
            .events(),
            12
        );
        assert_eq!(
            Stmt::FlavorBundle {
                service: "s".to_owned(),
                burst: 4
            }
            .events(),
            13
        );
        assert_eq!(Stmt::LifecycleChurn { cycles: 3 }.events(), 6);
    }
}
