//! The bespoke per-app event-source pipelines of the ten evaluated
//! applications, moved verbatim from the hand-written catalog modules.
//!
//! Each function plants a fully-ordered event source (sensor stream,
//! decode pipeline, compositor bounce, ...) that touches shared state at
//! every stage — the detector must stay silent about all of them. They
//! operate on [`Patterns`] exactly like the shared patterns do, so the
//! interpreter can dispatch a pipeline statement with the same builder
//! call sequence the original per-app builder used, keeping recorded
//! traces byte-identical.

use cafa_sim::{Action, Body, HandlerId};
use cafa_trace::DerefKind;

use crate::patterns::Patterns;

/// ConnectBot's SSH transport relay: a network thread receives
/// ciphertext, decrypts under the session lock, and posts a chain of
/// terminal update events; each keystroke is front-posted for latency.
/// All ordered — the detector must not confuse the relay with the
/// planted teardown races.
///
/// Plants `updates + keys + 1` events.
pub(crate) fn ssh_relay(pats: &mut Patterns<'_>, updates: u32, keys: usize) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let session = p.ptr_var_alloc();
    let screen = p.scalar_var(0);
    let m = p.monitor();

    // Terminal update chain, driven by the relay thread's first post.
    let budget = p.counter(updates - 1);
    let update = {
        let me = p.next_handler_id();
        p.handler(
            "connectbot:onTermUpdate",
            Body::from_actions(vec![
                Action::ReadScalar(screen),
                Action::Compute(15),
                Action::WriteScalar(screen, 1),
                Action::PostChain {
                    looper,
                    handler: me,
                    delay_ms: 4,
                    budget,
                },
            ]),
        )
    };
    p.thread(
        proc,
        "connectbot:relay",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Lock(m),
            Action::UsePtr {
                var: session,
                kind: DerefKind::Invoke,
                catch_npe: false,
            },
            Action::Compute(40),
            Action::Unlock(m),
            Action::Post {
                looper,
                handler: update,
                delay_ms: 0,
            },
        ]),
    );

    // Keystrokes: a dispatch gesture front-posts each key event. They
    // touch the input buffer, not the screen var (the update chain and
    // the key events are concurrent, and this is the low-level-race
    // calibrated app — ConnectBot's 1,664 must stay exact).
    let input_buf = p.scalar_var(0);
    let mut key_actions = Vec::with_capacity(keys);
    for k in 0..keys {
        let key = p.handler(
            &format!("connectbot:onKey{k}"),
            Body::new().write(input_buf, k as i64),
        );
        key_actions.push(Action::PostFront {
            looper,
            handler: key,
        });
    }
    let dispatch = p.handler("connectbot:dispatchKeys", Body::from_actions(key_actions));
    p.gesture(t + 100, looper, dispatch);
    pats.add_events(updates as usize + keys + 1);
}

/// MyTracks' GPS fix pipeline: the location service delivers a sequence
/// of fixes as events; each fix updates the track distance under the
/// recording lock, which the stats thread also takes to snapshot the
/// distance. Lock-protected on both sides, so the lockset check (not a
/// happens-before edge — CAFA derives none from locks) is what keeps
/// the detector quiet.
///
/// Plants `fixes` events.
pub(crate) fn gps_fix_pipeline(pats: &mut Patterns<'_>, fixes: u32) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let distance = p.scalar_var(0);
    let m = p.monitor();

    let budget = p.counter(fixes - 1);
    let on_fix = {
        let me = p.next_handler_id();
        p.handler(
            "mytracks:onLocationChanged",
            Body::from_actions(vec![
                Action::Lock(m),
                Action::ReadScalar(distance),
                Action::WriteScalar(distance, 1),
                Action::Unlock(m),
                Action::Compute(20),
                Action::PostChain {
                    looper,
                    handler: me,
                    delay_ms: 5,
                    budget,
                },
            ]),
        )
    };
    p.thread(
        proc,
        "mytracks:gpsSource",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Post {
                looper,
                handler: on_fix,
                delay_ms: 0,
            },
        ]),
    );
    p.thread(
        proc,
        "mytracks:statsThread",
        Body::from_actions(vec![
            Action::Sleep(t + 60),
            Action::Lock(m),
            Action::ReadScalar(distance),
            Action::Unlock(m),
        ]),
    );
    pats.add_events(fixes as usize);
}

/// ZXing's scan pipeline: preview frames arrive as a chain; the capture
/// frame forks a decode thread whose result is joined and published by
/// a result event that dereferences the decoded object.
///
/// Plants `frames + 2` events.
pub(crate) fn scan_pipeline(pats: &mut Patterns<'_>, frames: u32) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let luma = p.scalar_var(0);
    let result = p.ptr_var();

    let budget = p.counter(frames - 1);
    let preview = {
        let me = p.next_handler_id();
        p.handler(
            "zxing:onPreviewFrame",
            Body::from_actions(vec![
                Action::ReadScalar(luma),
                Action::Compute(25),
                Action::PostChain {
                    looper,
                    handler: me,
                    delay_ms: 33,
                    budget,
                },
            ]),
        )
    };
    let publish = p.handler(
        "zxing:onDecodeResult",
        Body::from_actions(vec![Action::UsePtr {
            var: result,
            kind: DerefKind::Invoke,
            catch_npe: false,
        }]),
    );
    let decoder = p.thread_spec(
        proc,
        "zxing:decodeThread",
        Body::from_actions(vec![Action::Compute(120), Action::AllocPtr(result)]),
    );
    let capture = p.handler(
        "zxing:onCaptureFrame",
        Body::from_actions(vec![
            Action::Fork(decoder),
            Action::JoinLast,
            Action::Post {
                looper,
                handler: publish,
                delay_ms: 0,
            },
        ]),
    );
    p.thread(
        proc,
        "zxing:frameSource",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Post {
                looper,
                handler: preview,
                delay_ms: 0,
            },
        ]),
    );
    p.gesture(t + 80, looper, capture);
    pats.add_events(frames as usize + 2);
}

/// ToDoList's note-save path: each save gesture hands the note to a db
/// writer thread through a monitor and waits for the commit
/// acknowledgement before posting the widget refresh. Exercises
/// looper-blocking waits (the anti-pattern Android docs warn about, but
/// common in small apps like this one).
///
/// Plants 2 events per save.
pub(crate) fn note_save_path(pats: &mut Patterns<'_>, saves: usize) {
    for _ in 0..saves {
        let t = pats.next_slot();
        let proc = pats.proc();
        let looper = pats.looper();
        let p = &mut *pats.p;
        let note = p.ptr_var_alloc();
        let m = p.monitor();
        let writer = p.thread_spec(
            proc,
            "todolist:dbWriter",
            Body::from_actions(vec![
                Action::Lock(m),
                Action::UsePtr {
                    var: note,
                    kind: cafa_trace::DerefKind::Field,
                    catch_npe: false,
                },
                Action::Compute(70),
                Action::Notify(m),
                Action::Unlock(m),
            ]),
        );
        let refresh = p.handler("todolist:onWidgetRefresh", Body::new().compute(10));
        let save = p.handler(
            "todolist:onSaveNote",
            Body::from_actions(vec![
                Action::Lock(m),
                Action::Fork(writer),
                Action::Wait(m),
                Action::Unlock(m),
                Action::JoinLast,
                Action::Post {
                    looper,
                    handler: refresh,
                    delay_ms: 0,
                },
            ]),
        );
        p.gesture(t, looper, save);
        pats.add_events(2);
    }
}

/// Browser's page-load pipeline: a network thread streams chunks to a
/// cache thread through a monitor, the cache thread posts a parse
/// event, parsing posts layout, layout posts a short chain of paint
/// events. All ordered — fork/notify/send edges end to end — so the
/// detector must stay silent about a pipeline that touches shared state
/// at every stage.
///
/// Plants 5 events (parse, layout, 3 paints).
pub(crate) fn page_load_pipeline(pats: &mut Patterns<'_>) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let chunk_buf = p.ptr_var_alloc();
    let dom = p.ptr_var_alloc();
    let m = p.monitor();

    // paint chain (declared first so layout can reference it).
    let frame_no = p.scalar_var(0);
    let paint_budget = p.counter(2);
    let paint = {
        let me = p.next_handler_id();
        p.handler(
            "browser:paint",
            Body::from_actions(vec![
                Action::ReadScalar(frame_no),
                Action::Compute(30),
                Action::PostChain {
                    looper,
                    handler: me,
                    delay_ms: 16,
                    budget: paint_budget,
                },
            ]),
        )
    };
    let layout = p.handler(
        "browser:layout",
        Body::from_actions(vec![
            Action::UsePtr {
                var: dom,
                kind: DerefKind::Field,
                catch_npe: false,
            },
            Action::Compute(40),
            Action::Post {
                looper,
                handler: paint,
                delay_ms: 16,
            },
        ]),
    );
    let parse = p.handler(
        "browser:parse",
        Body::from_actions(vec![
            Action::UsePtr {
                var: chunk_buf,
                kind: DerefKind::Field,
                catch_npe: false,
            },
            Action::AllocPtr(dom),
            Action::Post {
                looper,
                handler: layout,
                delay_ms: 0,
            },
        ]),
    );
    // Cache thread: waits for the network thread's chunk, then posts
    // parse to the main looper.
    let cache = p.thread_spec(
        proc,
        "browser:cache",
        Body::from_actions(vec![
            Action::Lock(m),
            Action::Wait(m),
            Action::Unlock(m),
            Action::UsePtr {
                var: chunk_buf,
                kind: DerefKind::Field,
                catch_npe: false,
            },
            Action::Post {
                looper,
                handler: parse,
                delay_ms: 0,
            },
        ]),
    );
    // Network thread: forks the cache consumer, fills the buffer,
    // signals, joins.
    p.thread(
        proc,
        "browser:net",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Fork(cache),
            // Virtual time only advances when every entity is blocked,
            // so this sleep guarantees the cache thread reached its
            // `Wait` before the chunk is published — no lost wake-up.
            Action::Sleep(1),
            Action::AllocPtr(chunk_buf),
            Action::Compute(60),
            Action::Lock(m),
            Action::Notify(m),
            Action::Unlock(m),
            Action::JoinLast,
        ]),
    );
    pats.add_events(5);
}

/// Firefox's compositor bounce: frames ping-pong between the UI looper
/// and a dedicated compositor looper (Gecko's architecture): the UI
/// submits a layer tree, the compositor composites it and posts the
/// frame-done callback back. Each hop is a send, so every pair of hops
/// is ordered across the two atomicity domains.
///
/// Plants `2 × rounds` events.
pub(crate) fn compositor_bounce(pats: &mut Patterns<'_>, rounds: u32) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let ui = pats.looper();
    let p = &mut *pats.p;
    let compositor = p.looper(proc);
    let layer_epoch = p.scalar_var(0);

    // submit (ui) -> composite (compositor) -> submit ... bounded by a
    // shared budget; handler ids are interleaved so each can name the
    // other via a forward reference.
    let budget = p.counter(2 * rounds - 1);
    let submit_id = p.next_handler_id();
    let composite_id = HandlerId::from_index(submit_id.index() + 1);
    let _submit = p.handler(
        "firefox:submitLayers",
        Body::from_actions(vec![
            Action::WriteScalar(layer_epoch, 1),
            Action::Compute(45),
            Action::PostChain {
                looper: compositor,
                handler: composite_id,
                delay_ms: 3,
                budget,
            },
        ]),
    );
    let _composite = p.handler(
        "firefox:composite",
        Body::from_actions(vec![
            Action::ReadScalar(layer_epoch),
            Action::Compute(60),
            Action::PostChain {
                looper: ui,
                handler: submit_id,
                delay_ms: 3,
                budget,
            },
        ]),
    );
    p.thread(
        proc,
        "firefox:vsyncSource",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Post {
                looper: ui,
                handler: submit_id,
                delay_ms: 0,
            },
        ]),
    );
    pats.add_events(2 * rounds as usize);
}

/// VLC's playback chain: a demux thread produces packets under the
/// stream lock; the video looper decodes each packet and posts render
/// ticks to the main looper — two atomicity domains bridged by sends,
/// everything ordered.
///
/// Plants `2 × packets` events.
pub(crate) fn playback_chain(pats: &mut Patterns<'_>, packets: u32) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let main = pats.looper();
    let p = &mut *pats.p;
    let video = p.looper(proc);
    let stream = p.ptr_var_alloc();
    let pts = p.scalar_var(0);

    let budget = p.counter(packets - 1);
    let render = p.handler("vlc:onRenderTick", Body::new().read(pts));
    let decode = {
        let me = p.next_handler_id();
        p.handler(
            "vlc:decodePacket",
            Body::from_actions(vec![
                Action::UsePtr {
                    var: stream,
                    kind: DerefKind::Field,
                    catch_npe: false,
                },
                Action::Compute(55),
                Action::WriteScalar(pts, 1),
                Action::Post {
                    looper: main,
                    handler: render,
                    delay_ms: 0,
                },
                Action::PostChain {
                    looper: video,
                    handler: me,
                    delay_ms: 10,
                    budget,
                },
            ]),
        )
    };
    p.thread(
        proc,
        "vlc:demux",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Compute(35),
            Action::Post {
                looper: video,
                handler: decode,
                delay_ms: 0,
            },
        ]),
    );
    pats.add_events(2 * packets as usize);
}

/// FBReader's page-turn prefetch: every turn gesture displays the
/// prefetched page and forks a worker to lay out the next one, joined
/// by the *next* turn... modelled as turn events that fork-join their
/// own prefetch worker before displaying.
///
/// Plants `turns` events.
pub(crate) fn pagination_prefetch(pats: &mut Patterns<'_>, turns: usize) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let page = p.ptr_var_alloc();

    for k in 0..turns {
        let worker = p.thread_spec(
            proc,
            &format!("fbreader:layout{k}"),
            Body::from_actions(vec![Action::Compute(65), Action::AllocPtr(page)]),
        );
        let turn = p.handler(
            &format!("fbreader:onPageTurn{k}"),
            Body::from_actions(vec![
                Action::UsePtr {
                    var: page,
                    kind: DerefKind::Field,
                    catch_npe: false,
                },
                Action::Fork(worker),
                Action::JoinLast,
            ]),
        );
        // Sequential gestures: the external-input rule orders the turns,
        // and each turn's join orders its worker's allocation before the
        // next turn's use.
        p.gesture(t + 20 * k as u64, looper, turn);
    }
    pats.add_events(turns);
}

/// Camera's shutter sequence: the capture gesture calls the media
/// server over Binder, front-posts a shutter-feedback event (latency
/// critical), forks a storage writer that persists the JPEG and is
/// joined before the review event shows the result.
///
/// Plants 3 events (capture, shutter feedback, review).
pub(crate) fn shutter_sequence(pats: &mut Patterns<'_>) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let jpeg = p.ptr_var_alloc();
    let svcp = p.process();
    let media = p.service(svcp, "media.camera");
    let trigger = p.method(media, "takePicture", Body::new().compute(50));

    let shutter = p.handler("camera:onShutter", Body::new().compute(10));
    let review = p.handler(
        "camera:onReview",
        Body::from_actions(vec![Action::UsePtr {
            var: jpeg,
            kind: DerefKind::Field,
            catch_npe: false,
        }]),
    );
    let writer = p.thread_spec(
        proc,
        "camera:storageWriter",
        Body::from_actions(vec![Action::AllocPtr(jpeg), Action::Compute(80)]),
    );
    let capture = p.handler(
        "camera:onCapture",
        Body::from_actions(vec![
            Action::Call {
                service: media,
                method: trigger,
            },
            Action::PostFront {
                looper,
                handler: shutter,
            },
            Action::Fork(writer),
            Action::JoinLast,
            Action::Post {
                looper,
                handler: review,
                delay_ms: 0,
            },
        ]),
    );
    p.gesture(t, looper, capture);
    pats.add_events(3);
}

/// Music's playback engine: a producer thread decodes audio frames into
/// a shared buffer, a consumer thread drains it, both hand off through
/// a monitor; the consumer posts a seekbar update per drained batch.
///
/// Plants 2 events.
pub(crate) fn playback_engine(pats: &mut Patterns<'_>) {
    let t = pats.next_slot();
    let proc = pats.proc();
    let looper = pats.looper();
    let p = &mut *pats.p;
    let frames = p.scalar_var(0);
    let m = p.monitor();

    let tick1 = p.handler("music:onSeekTick", Body::new().read(frames));
    let tick2 = p.handler("music:onSeekDone", Body::new().read(frames));
    let consumer = p.thread_spec(
        proc,
        "music:audioOut",
        Body::from_actions(vec![
            Action::Lock(m),
            Action::Wait(m),
            Action::ReadScalar(frames),
            Action::Unlock(m),
            Action::Post {
                looper,
                handler: tick1,
                delay_ms: 0,
            },
            Action::Post {
                looper,
                handler: tick2,
                delay_ms: 0,
            },
        ]),
    );
    p.thread(
        proc,
        "music:decoder",
        Body::from_actions(vec![
            Action::Sleep(t),
            Action::Fork(consumer),
            // Quiesce: the consumer is guaranteed to be waiting before
            // the decoder publishes (see the page-load pipeline for the
            // idiom).
            Action::Sleep(1),
            Action::Lock(m),
            Action::WriteScalar(frames, 1024),
            Action::Compute(60),
            Action::Notify(m),
            Action::Unlock(m),
            Action::JoinLast,
        ]),
    );
    pats.add_events(2);
}
