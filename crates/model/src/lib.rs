//! Data-driven app-model DSL.
//!
//! The ten hand-ported applications of the CAFA paper's evaluation used
//! to be ~1,200 lines of imperative simulator-building Rust. This crate
//! turns that vocabulary into *data*: an [`AppModel`] is a plain value —
//! a name, an event budget, and a list of [`Stmt`]s drawn from the
//! pattern space the paper describes (planted race kinds a/b/c, false-
//! positive types I/II/III, commutative patterns the heuristics must
//! filter, Binder RPC graphs, lifecycle churn, sensor-style event
//! sources, and shared-variable access textures). Each statement
//! carries its ground-truth [`Label`] *in the data itself*, so the
//! model is simultaneously the workload and the oracle.
//!
//! Three consumers sit on top:
//!
//! * [`lower`] — a deterministic interpreter that lowers a model onto
//!   `cafa-sim` exactly the way the hand-written builders did: same
//!   builder-call order, hence byte-identical recorded traces per seed.
//! * [`text`] — a line-oriented serialization with a byte-exact
//!   round-trip guarantee (`model → text → parse → lower` records the
//!   same trace) and typed parse errors naming the offending line.
//! * [`generate`] — a seeded generator composing the pattern space
//!   (race kind × FP type × process topology × event-source mix) into
//!   corpora of hundreds of labeled apps; same seed and count produce
//!   byte-identical corpora on any machine and at any thread count.
//!
//! The detector never sees the labels: they only enter when an
//! evaluation harness joins a report against [`AppSpec::truth`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dsl;
mod error;
pub mod eval;
mod flavor;
mod generator;
mod lower;
pub mod patterns;
mod pipelines;
pub mod scale;
pub mod text;
mod truth;

pub use dsl::{AppModel, Stmt};
pub use error::ModelError;
pub use generator::{generate, generate_one, GenConfig, GeneratedCatalog, SizeClass};
pub use lower::{lower, AppSpec};
pub use truth::{ExpectedRow, FpType, GroundTruth, Label, TrueClass};
