//! Line-oriented textual form of app models.
//!
//! One model per block:
//!
//! ```text
//! model v1
//! name "ConnectBot"
//! events 3058
//! compute 880
//! lowlevel 1664
//! stmt inter known=true
//! stmt fp-listener package="org.connectbot.service"
//! stmt scalar-burst writers=8 readers=46
//! end
//! ```
//!
//! `lowlevel` is optional; `#` starts a comment; blank lines are
//! ignored. A corpus file is a sequence of blocks. Parsing is total:
//! malformed input yields a typed [`ModelError::Parse`] naming the
//! 1-based offending line, never a panic — and the round trip is exact:
//! `parse(&to_text(&m)) == m`, so serialized models lower to
//! byte-identical traces.

use std::fmt::Write as _;

use crate::dsl::{AppModel, Stmt};
use crate::error::ModelError;

/// Serializes one model.
pub fn to_text(model: &AppModel) -> String {
    let mut out = String::new();
    out.push_str("model v1\n");
    let _ = writeln!(out, "name {:?}", model.name);
    let _ = writeln!(out, "events {}", model.events);
    let _ = writeln!(out, "compute {}", model.compute_units);
    if let Some(pairs) = model.lowlevel_pairs {
        let _ = writeln!(out, "lowlevel {pairs}");
    }
    for stmt in &model.stmts {
        out.push_str("stmt ");
        out.push_str(stmt.keyword());
        match *stmt {
            Stmt::Intra { known, caught } => {
                let _ = write!(out, " known={known} caught={caught}");
            }
            Stmt::Fig1Binder { ref service } => {
                let _ = write!(out, " service={service:?}");
            }
            Stmt::Inter { known } => {
                let _ = write!(out, " known={known}");
            }
            Stmt::FpListener { ref package } => {
                let _ = write!(out, " package={package:?}");
            }
            Stmt::LifecycleChurn { cycles } => {
                let _ = write!(out, " cycles={cycles}");
            }
            Stmt::ScalarBurst { writers, readers } => {
                let _ = write!(out, " writers={writers} readers={readers}");
            }
            Stmt::ServicePoll { ref service } => {
                let _ = write!(out, " service={service:?}");
            }
            Stmt::InputBurst { count } => {
                let _ = write!(out, " count={count}");
            }
            Stmt::HandlerThread { len } => {
                let _ = write!(out, " len={len}");
            }
            Stmt::FlavorBundle { ref service, burst } => {
                let _ = write!(out, " service={service:?} burst={burst}");
            }
            Stmt::SshRelay { updates, keys } => {
                let _ = write!(out, " updates={updates} keys={keys}");
            }
            Stmt::GpsFixPipeline { fixes } => {
                let _ = write!(out, " fixes={fixes}");
            }
            Stmt::ScanPipeline { frames } => {
                let _ = write!(out, " frames={frames}");
            }
            Stmt::NoteSavePath { saves } => {
                let _ = write!(out, " saves={saves}");
            }
            Stmt::CompositorBounce { rounds } => {
                let _ = write!(out, " rounds={rounds}");
            }
            Stmt::PlaybackChain { packets } => {
                let _ = write!(out, " packets={packets}");
            }
            Stmt::PaginationPrefetch { turns } => {
                let _ = write!(out, " turns={turns}");
            }
            Stmt::Conv
            | Stmt::LockHandoff
            | Stmt::FifoHandoff
            | Stmt::FpBoolGuard
            | Stmt::FpAlias
            | Stmt::FilteredGuard
            | Stmt::FilteredAlloc
            | Stmt::QueueProtected
            | Stmt::Fig2ScalarRw
            | Stmt::WorkerPipeline
            | Stmt::CoveredListener
            | Stmt::PageLoadPipeline
            | Stmt::PlaybackEngine
            | Stmt::ShutterSequence => {}
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Serializes a corpus: the models back to back, blank-line separated.
pub fn corpus_to_text(models: &[AppModel]) -> String {
    let mut out = String::new();
    for (i, m) in models.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&to_text(m));
    }
    out
}

/// Parses exactly one model.
///
/// # Errors
///
/// [`ModelError::Parse`] for malformed input, including trailing
/// content after the model's `end`.
pub fn parse(input: &str) -> Result<AppModel, ModelError> {
    let mut models = parse_corpus(input)?;
    match models.len() {
        1 => Ok(models.pop().expect("len checked")),
        0 => Err(ModelError::Parse {
            line: input.lines().count().max(1),
            message: "expected one model, found none".to_owned(),
        }),
        n => Err(ModelError::Parse {
            line: input.lines().count().max(1),
            message: format!("expected one model, found {n}"),
        }),
    }
}

/// Parses a corpus file: zero or more `model v1 ... end` blocks.
///
/// # Errors
///
/// [`ModelError::Parse`] naming the first offending line.
pub fn parse_corpus(input: &str) -> Result<Vec<AppModel>, ModelError> {
    let mut models = Vec::new();
    let mut current: Option<Partial> = None;
    let mut last_line = 0;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        last_line = line_no;
        let line = match raw.find('#') {
            Some(h) => &raw[..h],
            None => raw,
        };
        let tokens = tokenize(line, line_no)?;
        if tokens.is_empty() {
            continue;
        }
        let err = |message: String| ModelError::Parse {
            line: line_no,
            message,
        };
        match tokens[0].text.as_str() {
            "model" => {
                if current.is_some() {
                    return Err(err("`model` inside an unfinished model block".to_owned()));
                }
                match tokens.get(1).map(|t| t.text.as_str()) {
                    Some("v1") => current = Some(Partial::default()),
                    Some(v) => return Err(err(format!("unsupported model version `{v}`"))),
                    None => return Err(err("missing model version (expected `v1`)".to_owned())),
                }
            }
            "end" => {
                let partial = current
                    .take()
                    .ok_or_else(|| err("`end` outside a model block".to_owned()))?;
                models.push(partial.finish(line_no)?);
            }
            key @ ("name" | "events" | "compute" | "lowlevel") => {
                let partial = current
                    .as_mut()
                    .ok_or_else(|| err(format!("`{key}` outside a model block")))?;
                let value = match tokens.len() {
                    2 => &tokens[1],
                    _ => return Err(err(format!("`{key}` takes exactly one value"))),
                };
                match key {
                    "name" => partial.name = Some(value.text.clone()),
                    "events" => partial.events = Some(parse_num(value, line_no, "events")?),
                    "compute" => {
                        let n: usize = parse_num(value, line_no, "compute")?;
                        partial.compute =
                            Some(u32::try_from(n).map_err(|_| {
                                err("`compute` does not fit in 32 bits".to_owned())
                            })?);
                    }
                    "lowlevel" => {
                        partial.lowlevel = Some(parse_num(value, line_no, "lowlevel")?);
                    }
                    _ => unreachable!(),
                }
            }
            "stmt" => {
                let partial = current
                    .as_mut()
                    .ok_or_else(|| err("`stmt` outside a model block".to_owned()))?;
                let keyword = tokens
                    .get(1)
                    .ok_or_else(|| err("`stmt` missing a statement keyword".to_owned()))?;
                let stmt = parse_stmt(&keyword.text, &tokens[2..], line_no)?;
                partial.stmts.push(stmt);
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(ModelError::Parse {
            line: last_line.max(1),
            message: "unterminated model block (missing `end`)".to_owned(),
        });
    }
    Ok(models)
}

#[derive(Default)]
struct Partial {
    name: Option<String>,
    events: Option<usize>,
    compute: Option<u32>,
    lowlevel: Option<usize>,
    stmts: Vec<Stmt>,
}

impl Partial {
    fn finish(self, line: usize) -> Result<AppModel, ModelError> {
        let missing = |field: &str| ModelError::Parse {
            line,
            message: format!("model block is missing `{field}`"),
        };
        Ok(AppModel {
            name: self.name.ok_or_else(|| missing("name"))?,
            events: self.events.ok_or_else(|| missing("events"))?,
            compute_units: self.compute.ok_or_else(|| missing("compute"))?,
            lowlevel_pairs: self.lowlevel,
            stmts: self.stmts,
        })
    }
}

/// One token: its text (unquoted if it was a string literal) and
/// whether it came from a quoted literal.
struct Token {
    text: String,
    quoted: bool,
}

fn tokenize(line: &str, line_no: usize) -> Result<Vec<Token>, ModelError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        let mut text = String::new();
        let mut quoted = false;
        // A token runs to the next whitespace; a `"` opens a quoted
        // span (used after `key=`) that may contain spaces.
        loop {
            match chars.peek() {
                Some(&'"') => {
                    chars.next();
                    quoted = true;
                    loop {
                        match chars.next() {
                            Some('"') => break,
                            Some(ch) => text.push(ch),
                            None => {
                                return Err(ModelError::Parse {
                                    line: line_no,
                                    message: "unterminated string literal".to_owned(),
                                })
                            }
                        }
                    }
                }
                Some(&ch) if !ch.is_whitespace() => {
                    text.push(ch);
                    chars.next();
                }
                _ => break,
            }
        }
        tokens.push(Token { text, quoted });
    }
    Ok(tokens)
}

fn parse_num<T: std::str::FromStr>(
    token: &Token,
    line: usize,
    what: &str,
) -> Result<T, ModelError> {
    if token.quoted {
        return Err(ModelError::Parse {
            line,
            message: format!("`{what}` expects a number, got a string"),
        });
    }
    token.text.parse().map_err(|_| ModelError::Parse {
        line,
        message: format!("`{what}` expects a number, got `{}`", token.text),
    })
}

/// The `key=value` arguments of one `stmt` line.
struct Args<'t> {
    keyword: &'t str,
    pairs: Vec<(&'t str, &'t Token)>,
    used: Vec<bool>,
    line: usize,
}

impl<'t> Args<'t> {
    fn new(keyword: &'t str, tokens: &'t [Token], line: usize) -> Result<Self, ModelError> {
        let mut pairs = Vec::with_capacity(tokens.len());
        for token in tokens {
            let eq = token.text.find('=').ok_or_else(|| ModelError::Parse {
                line,
                message: format!("`{keyword}`: expected key=value, got `{}`", token.text),
            })?;
            // Leak-free split: key is a prefix of the token's text.
            pairs.push((&token.text[..eq], token));
        }
        let used = vec![false; pairs.len()];
        Ok(Self {
            keyword,
            pairs,
            used,
            line,
        })
    }

    fn value(&mut self, key: &str) -> Result<(String, bool), ModelError> {
        for (i, (k, token)) in self.pairs.iter().enumerate() {
            if *k == key {
                self.used[i] = true;
                let eq = k.len() + 1;
                let quoted = token.quoted;
                return Ok((token.text[eq..].to_owned(), quoted));
            }
        }
        Err(ModelError::Parse {
            line: self.line,
            message: format!("`{}` requires `{key}=...`", self.keyword),
        })
    }

    fn string(&mut self, key: &str) -> Result<String, ModelError> {
        Ok(self.value(key)?.0)
    }

    fn num<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, ModelError> {
        let (text, quoted) = self.value(key)?;
        if quoted {
            return Err(ModelError::Parse {
                line: self.line,
                message: format!("`{}`: `{key}` expects a number, got a string", self.keyword),
            });
        }
        text.parse().map_err(|_| ModelError::Parse {
            line: self.line,
            message: format!("`{}`: `{key}` expects a number, got `{text}`", self.keyword),
        })
    }

    fn flag(&mut self, key: &str) -> Result<bool, ModelError> {
        let (text, _) = self.value(key)?;
        match text.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(ModelError::Parse {
                line: self.line,
                message: format!(
                    "`{}`: `{key}` expects true or false, got `{other}`",
                    self.keyword
                ),
            }),
        }
    }

    fn done(self) -> Result<(), ModelError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(ModelError::Parse {
                    line: self.line,
                    message: format!("`{}`: unknown argument `{k}`", self.keyword),
                });
            }
        }
        Ok(())
    }
}

fn parse_stmt(keyword: &str, tokens: &[Token], line: usize) -> Result<Stmt, ModelError> {
    let mut args = Args::new(keyword, tokens, line)?;
    let stmt = match keyword {
        "intra" => Stmt::Intra {
            known: args.flag("known")?,
            caught: args.flag("caught")?,
        },
        "fig1-binder" => Stmt::Fig1Binder {
            service: args.string("service")?,
        },
        "inter" => Stmt::Inter {
            known: args.flag("known")?,
        },
        "conv" => Stmt::Conv,
        "fp-listener" => Stmt::FpListener {
            package: args.string("package")?,
        },
        "fp-bool-guard" => Stmt::FpBoolGuard,
        "fp-alias" => Stmt::FpAlias,
        "filtered-guard" => Stmt::FilteredGuard,
        "filtered-alloc" => Stmt::FilteredAlloc,
        "queue-protected" => Stmt::QueueProtected,
        "lifecycle-churn" => Stmt::LifecycleChurn {
            cycles: args.num("cycles")?,
        },
        "lock-handoff" => Stmt::LockHandoff,
        "fifo-handoff" => Stmt::FifoHandoff,
        "fig2-scalar-rw" => Stmt::Fig2ScalarRw,
        "scalar-burst" => Stmt::ScalarBurst {
            writers: args.num("writers")?,
            readers: args.num("readers")?,
        },
        "service-poll" => Stmt::ServicePoll {
            service: args.string("service")?,
        },
        "worker-pipeline" => Stmt::WorkerPipeline,
        "input-burst" => Stmt::InputBurst {
            count: args.num("count")?,
        },
        "covered-listener" => Stmt::CoveredListener,
        "handler-thread" => Stmt::HandlerThread {
            len: args.num("len")?,
        },
        "flavor-bundle" => Stmt::FlavorBundle {
            service: args.string("service")?,
            burst: args.num("burst")?,
        },
        "ssh-relay" => Stmt::SshRelay {
            updates: args.num("updates")?,
            keys: args.num("keys")?,
        },
        "gps-fix-pipeline" => Stmt::GpsFixPipeline {
            fixes: args.num("fixes")?,
        },
        "scan-pipeline" => Stmt::ScanPipeline {
            frames: args.num("frames")?,
        },
        "note-save-path" => Stmt::NoteSavePath {
            saves: args.num("saves")?,
        },
        "page-load-pipeline" => Stmt::PageLoadPipeline,
        "compositor-bounce" => Stmt::CompositorBounce {
            rounds: args.num("rounds")?,
        },
        "playback-engine" => Stmt::PlaybackEngine,
        "playback-chain" => Stmt::PlaybackChain {
            packets: args.num("packets")?,
        },
        "shutter-sequence" => Stmt::ShutterSequence,
        "pagination-prefetch" => Stmt::PaginationPrefetch {
            turns: args.num("turns")?,
        },
        other => {
            return Err(ModelError::Parse {
                line,
                message: format!("unknown statement `{other}`"),
            })
        }
    };
    args.done()?;
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppModel {
        AppModel {
            name: "Sample".to_owned(),
            events: 1234,
            compute_units: 55,
            lowlevel_pairs: Some(9),
            stmts: vec![
                Stmt::Intra {
                    known: true,
                    caught: false,
                },
                Stmt::FpListener {
                    package: "org.example.app".to_owned(),
                },
                Stmt::ScalarBurst {
                    writers: 3,
                    readers: 7,
                },
                Stmt::Conv,
                Stmt::FlavorBundle {
                    service: "SampleService".to_owned(),
                    burst: 4,
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let m = sample();
        assert_eq!(parse(&to_text(&m)).unwrap(), m);
    }

    #[test]
    fn corpus_round_trip_is_exact() {
        let mut m2 = sample();
        m2.name = "Second".to_owned();
        m2.lowlevel_pairs = None;
        let corpus = vec![sample(), m2];
        assert_eq!(parse_corpus(&corpus_to_text(&corpus)).unwrap(), corpus);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# a corpus\n\nmodel v1\nname \"X\"\nevents 10 # inline\ncompute 1\nend\n";
        let m = parse(text).unwrap();
        assert_eq!(m.name, "X");
        assert_eq!(m.events, 10);
        assert!(m.stmts.is_empty());
    }

    #[test]
    fn unknown_statement_names_the_line() {
        let text = "model v1\nname \"X\"\nevents 10\ncompute 1\nstmt frobnicate\nend\n";
        match parse(text).unwrap_err() {
            ModelError::Parse { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("frobnicate"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn missing_argument_is_reported() {
        let text = "model v1\nname \"X\"\nevents 10\ncompute 1\nstmt inter\nend\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("known"));
    }

    #[test]
    fn extra_argument_is_rejected() {
        let text = "model v1\nname \"X\"\nevents 10\ncompute 1\nstmt conv bogus=1\nend\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn missing_end_is_reported() {
        let text = "model v1\nname \"X\"\nevents 10\ncompute 1\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("missing `end`"));
    }

    #[test]
    fn missing_field_is_reported() {
        let text = "model v1\nname \"X\"\ncompute 1\nend\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("`events`"));
    }

    #[test]
    fn every_statement_kind_round_trips() {
        let m = AppModel {
            name: "All".to_owned(),
            events: 100_000,
            compute_units: 1,
            lowlevel_pairs: None,
            stmts: vec![
                Stmt::Intra {
                    known: false,
                    caught: true,
                },
                Stmt::Fig1Binder {
                    service: "Svc".to_owned(),
                },
                Stmt::Inter { known: false },
                Stmt::Conv,
                Stmt::FpListener {
                    package: "p.q".to_owned(),
                },
                Stmt::FpBoolGuard,
                Stmt::FpAlias,
                Stmt::FilteredGuard,
                Stmt::FilteredAlloc,
                Stmt::QueueProtected,
                Stmt::LifecycleChurn { cycles: 2 },
                Stmt::LockHandoff,
                Stmt::FifoHandoff,
                Stmt::Fig2ScalarRw,
                Stmt::ScalarBurst {
                    writers: 1,
                    readers: 2,
                },
                Stmt::ServicePoll {
                    service: "S".to_owned(),
                },
                Stmt::WorkerPipeline,
                Stmt::InputBurst { count: 3 },
                Stmt::CoveredListener,
                Stmt::HandlerThread { len: 2 },
                Stmt::FlavorBundle {
                    service: "B".to_owned(),
                    burst: 2,
                },
                Stmt::SshRelay {
                    updates: 2,
                    keys: 1,
                },
                Stmt::GpsFixPipeline { fixes: 2 },
                Stmt::ScanPipeline { frames: 2 },
                Stmt::NoteSavePath { saves: 1 },
                Stmt::PageLoadPipeline,
                Stmt::CompositorBounce { rounds: 2 },
                Stmt::PlaybackEngine,
                Stmt::PlaybackChain { packets: 2 },
                Stmt::ShutterSequence,
                Stmt::PaginationPrefetch { turns: 2 },
            ],
        };
        assert_eq!(parse(&to_text(&m)).unwrap(), m);
    }
}
