//! Reusable race and false-positive pattern builders.
//!
//! Every entry of Table 1 is produced by planting one of these patterns
//! in a workload. Patterns are mutually independent: each uses fresh
//! variables, fresh threads with unique names, and a private time slot,
//! so detector reports never merge or interfere across patterns.
//!
//! A design subtlety shared by all harmful patterns: the *use* is
//! scheduled to execute while the pointer is still valid (use first,
//! free a few virtual milliseconds later). The race is a property of
//! the happens-before relation, not of the observed order — but the
//! trace only contains a `use` if the dereference actually executed, so
//! the recorded run must take the benign order. The paper's runs have
//! the same property: CAFA reports races from crash-free executions.

use cafa_sim::{Action, Body, GuardStyle, LooperId, ProcId, ProgramBuilder, SimVar};
use cafa_trace::{DerefKind, VarId};

use crate::truth::{FpType, GroundTruth, Label, TrueClass};

/// Spacing between pattern time slots, in virtual milliseconds.
const SLOT_MS: u64 = 400;
/// First slot start.
const SLOT_BASE_MS: u64 = 100;

/// Pattern-planting context for one workload.
#[derive(Debug)]
pub struct Patterns<'a> {
    /// The program under construction.
    pub p: &'a mut ProgramBuilder,
    looper: LooperId,
    proc: ProcId,
    truth: GroundTruth,
    slot: u64,
    seq: u32,
    events: usize,
    stress: bool,
}

impl<'a> Patterns<'a> {
    /// Starts planting patterns into `p`, targeting `looper` in `proc`.
    pub fn new(p: &'a mut ProgramBuilder, proc: ProcId, looper: LooperId) -> Self {
        Self {
            p,
            looper,
            proc,
            truth: GroundTruth::new(),
            slot: 0,
            seq: 0,
            events: 0,
            stress: false,
        }
    }

    /// Like [`new`](Self::new), but in **stress mode**: harmful
    /// patterns lose their benign-order timing margins, so the racing
    /// sides land simultaneously and the schedule decides who wins —
    /// the configuration the §6.2 violation survey runs. Patterns that
    /// are benign *because of a real platform guarantee* (listener
    /// registration order, flag atomicity) keep their guarantees.
    pub fn new_stress(p: &'a mut ProgramBuilder, proc: ProcId, looper: LooperId) -> Self {
        Self {
            stress: true,
            ..Self::new(p, proc, looper)
        }
    }

    /// Timing margin between the racy sides of a harmful pattern: a
    /// comfortable gap normally (the recorded run takes the benign
    /// order), zero under stress (the schedule decides).
    fn gap(&self, ms: u64) -> u64 {
        if self.stress {
            0
        } else {
            ms
        }
    }

    /// Events the planted patterns will generate when run.
    pub fn events_planted(&self) -> usize {
        self.events
    }

    /// Consumes the context, returning the accumulated ground truth.
    pub fn finish(self) -> GroundTruth {
        self.truth
    }

    pub(crate) fn add_events(&mut self, n: usize) {
        self.events += n;
    }

    pub(crate) fn looper_id(&self) -> LooperId {
        self.looper
    }

    pub(crate) fn proc_id(&self) -> ProcId {
        self.proc
    }

    pub(crate) fn next_slot(&mut self) -> u64 {
        let t = SLOT_BASE_MS + self.slot * SLOT_MS;
        self.slot += 1;
        t
    }

    pub(crate) fn tag(&mut self, kind: &str) -> String {
        let n = self.seq;
        self.seq += 1;
        format!("{kind}{n}")
    }

    /// Spawns a thread that sleeps until `at_ms` and then runs `rest`.
    fn thread_at(&mut self, name: &str, at_ms: u64, rest: Vec<Action>) {
        let mut actions = vec![Action::Sleep(at_ms)];
        actions.extend(rest);
        self.p.thread(self.proc, name, Body::from_actions(actions));
    }

    fn var_id(v: SimVar) -> VarId {
        // SimVar indices map one-to-one onto trace VarIds.
        VarId::new(v.index())
    }

    // ---- harmful patterns --------------------------------------------------

    /// Class (a): two logically concurrent events on the main looper,
    /// one using a pointer the other frees — the Figure 1 shape without
    /// the Binder detour. `caught` models handlers that swallow the NPE
    /// (the ToDoList pattern of §6.2, still harmful: data loss).
    pub fn intra(&mut self, known: bool, caught: bool) {
        let t = self.next_slot();
        let tag = self.tag("ia");
        let ptr = self.p.ptr_var_alloc();
        let use_h = self.p.handler(
            &format!("{tag}:onUpdate"),
            Body::from_actions(vec![Action::UsePtr {
                var: ptr,
                kind: DerefKind::Invoke,
                catch_npe: caught,
            }]),
        );
        let free_h = self
            .p
            .handler(&format!("{tag}:onCleanup"), Body::new().free(ptr));
        let (l, u, f) = (self.looper, use_h, free_h);
        self.thread_at(
            &format!("{tag}:userSrc"),
            t,
            vec![Action::Post {
                looper: l,
                handler: u,
                delay_ms: 0,
            }],
        );
        let gap = self.gap(30);
        self.thread_at(
            &format!("{tag}:freeSrc"),
            t + gap,
            vec![Action::Post {
                looper: l,
                handler: f,
                delay_ms: 0,
            }],
        );
        self.events += 2;
        self.truth.insert(
            Self::var_id(ptr),
            Label::Harmful {
                class: TrueClass::IntraThread,
                known,
            },
        );
    }

    /// Class (a), full Figure 1: a gesture binds a Binder service
    /// asynchronously; the service posts `onServiceConnected`, which
    /// uses `providerUtils`; a later gesture (`onDestroy`) frees it.
    /// This is the known MyTracks bug.
    pub fn fig1_binder(&mut self, service_name: &str) {
        let t = self.next_slot();
        let tag = self.tag("f1");
        let ptr = self.p.ptr_var_alloc();
        let connected = self.p.handler(
            &format!("{tag}:onServiceConnected"),
            Body::new().use_ptr(ptr),
        );
        let svcp = self.p.process();
        let svc = self.p.service(svcp, service_name);
        let bind = self
            .p
            .method(svc, "onBind", Body::new().post(self.looper, connected, 0));
        let resume = self.p.handler(
            &format!("{tag}:onResume"),
            Body::from_actions(vec![Action::CallAsync {
                service: svc,
                method: bind,
            }]),
        );
        let destroy = self
            .p
            .handler(&format!("{tag}:onDestroy"), Body::new().free(ptr));
        self.p.gesture(t, self.looper, resume);
        // Under stress the destroy gesture lands while the Binder
        // round-trip is still in flight, so the schedule decides
        // whether onServiceConnected still sees a live pointer.
        self.p
            .gesture(t + self.gap(300).max(1), self.looper, destroy);
        self.events += 3;
        self.truth.insert(
            Self::var_id(ptr),
            Label::Harmful {
                class: TrueClass::IntraThread,
                known: true,
            },
        );
    }

    /// Class (b): the free happens on a regular thread that then posts a
    /// bridge event; a later event uses the pointer (revalidated by an
    /// independent re-allocating thread, so the recorded run is clean).
    /// The conventional model orders free ≺ use through the looper's
    /// total event order; CAFA correctly leaves them concurrent.
    pub fn inter(&mut self, known: bool) {
        let t = self.next_slot();
        let tag = self.tag("ib");
        let ptr = self.p.ptr_var_alloc();
        let noise = self.p.scalar_var(0);
        let bridge = self
            .p
            .handler(&format!("{tag}:bridge"), Body::new().read(noise));
        let use_h = self
            .p
            .handler(&format!("{tag}:onRefresh"), Body::new().use_ptr(ptr));
        let (l, b, u) = (self.looper, bridge, use_h);
        self.thread_at(
            &format!("{tag}:freer"),
            t,
            vec![
                Action::FreePtr(ptr),
                Action::Post {
                    looper: l,
                    handler: b,
                    delay_ms: 0,
                },
            ],
        );
        self.thread_at(
            &format!("{tag}:realloc"),
            t + self.gap(20),
            vec![Action::AllocPtr(ptr)],
        );
        self.thread_at(
            &format!("{tag}:userSrc"),
            t + self.gap(40),
            vec![Action::Post {
                looper: l,
                handler: u,
                delay_ms: 0,
            }],
        );
        self.events += 2;
        self.truth.insert(
            Self::var_id(ptr),
            Label::Harmful {
                class: TrueClass::InterThread,
                known,
            },
        );
    }

    /// Class (c): a plain thread-versus-thread use-after-free hazard.
    /// Both models see it; a conventional detector reports it too.
    pub fn conv(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("cv");
        let ptr = self.p.ptr_var_alloc();
        self.thread_at(
            &format!("{tag}:worker"),
            t,
            vec![Action::UsePtr {
                var: ptr,
                kind: DerefKind::Field,
                catch_npe: false,
            }],
        );
        self.thread_at(
            &format!("{tag}:closer"),
            t + self.gap(30),
            vec![Action::FreePtr(ptr)],
        );
        self.truth.insert(
            Self::var_id(ptr),
            Label::Harmful {
                class: TrueClass::Conventional,
                known: false,
            },
        );
    }

    // ---- false-positive patterns -------------------------------------------

    /// Type I: the using event registers a listener from an
    /// *uninstrumented* package; the freeing event performs it first.
    /// The real execution is ordered use ≺ register ≺ perform ≺ free,
    /// but with the paper's partial listener coverage the analyzer
    /// never sees the register/perform records and reports a race.
    pub fn fp_listener(&mut self, package: &str) {
        let t = self.next_slot();
        let tag = self.tag("l1");
        let ptr = self.p.ptr_var_alloc();
        let listener = self.p.listener(package);
        let use_h = self.p.handler(
            &format!("{tag}:onShow"),
            Body::from_actions(vec![
                Action::UsePtr {
                    var: ptr,
                    kind: DerefKind::Invoke,
                    catch_npe: false,
                },
                Action::Register(listener),
            ]),
        );
        let free_h = self.p.handler(
            &format!("{tag}:onHide"),
            Body::from_actions(vec![Action::Perform(listener), Action::FreePtr(ptr)]),
        );
        let (l, u, f) = (self.looper, use_h, free_h);
        self.thread_at(
            &format!("{tag}:showSrc"),
            t,
            vec![Action::Post {
                looper: l,
                handler: u,
                delay_ms: 0,
            }],
        );
        self.thread_at(
            &format!("{tag}:hideSrc"),
            t + 50,
            vec![Action::Post {
                looper: l,
                handler: f,
                delay_ms: 0,
            }],
        );
        self.events += 2;
        self.truth.insert(
            Self::var_id(ptr),
            Label::Benign {
                fp: FpType::MissingListener,
            },
        );
    }

    /// Type II: a boolean flag guards the use; flag and pointer are
    /// updated together in the freeing event, so any same-looper order
    /// is safe — but the if-guard heuristic only understands pointer
    /// tests and reports the race.
    pub fn fp_bool_guard(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("b2");
        let ptr = self.p.ptr_var_alloc();
        let flag = self.p.scalar_var(1);
        let use_h = self.p.handler(
            &format!("{tag}:onDraw"),
            Body::new().bool_guarded_use(flag, ptr),
        );
        let free_h = self.p.handler(
            &format!("{tag}:onStop"),
            Body::from_actions(vec![Action::WriteScalar(flag, 0), Action::FreePtr(ptr)]),
        );
        let (l, u, f) = (self.looper, use_h, free_h);
        self.thread_at(
            &format!("{tag}:drawSrc"),
            t,
            vec![Action::Post {
                looper: l,
                handler: u,
                delay_ms: 0,
            }],
        );
        self.thread_at(
            &format!("{tag}:stopSrc"),
            t + 30,
            vec![Action::Post {
                looper: l,
                handler: f,
                delay_ms: 0,
            }],
        );
        self.events += 2;
        self.truth.insert(
            Self::var_id(ptr),
            Label::Benign {
                fp: FpType::ImpreciseCommutativity,
            },
        );
    }

    /// Type III: a decoy variable aliases the object actually
    /// dereferenced; the nearest-previous-read matcher attributes the
    /// use to the decoy, whose concurrent free then looks racy even
    /// though the dereference goes through the other pointer.
    pub fn fp_alias(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("a3");
        let real = self.p.ptr_var_alloc();
        let decoy = self.p.ptr_var();
        let setup = self.p.handler(
            &format!("{tag}:onInit"),
            Body::from_actions(vec![Action::CopyPtr {
                from: real,
                to: decoy,
            }]),
        );
        let use_h = self.p.handler(
            &format!("{tag}:onRender"),
            Body::from_actions(vec![Action::AliasedUse {
                first: real,
                second: decoy,
                kind: DerefKind::Field,
            }]),
        );
        let free_h = self
            .p
            .handler(&format!("{tag}:onEvict"), Body::new().free(decoy));
        let (l, s, u, f) = (self.looper, setup, use_h, free_h);
        // setup and use posted in order from one thread (queue rule 1
        // orders them); the free comes from an independent thread.
        self.thread_at(
            &format!("{tag}:renderSrc"),
            t,
            vec![
                Action::Post {
                    looper: l,
                    handler: s,
                    delay_ms: 0,
                },
                Action::Post {
                    looper: l,
                    handler: u,
                    delay_ms: 0,
                },
            ],
        );
        self.thread_at(
            &format!("{tag}:evictSrc"),
            t + 60,
            vec![Action::Post {
                looper: l,
                handler: f,
                delay_ms: 0,
            }],
        );
        self.events += 3;
        self.truth.insert(
            Self::var_id(decoy),
            Label::Benign {
                fp: FpType::DerefMismatch,
            },
        );
    }

    // ---- commutative patterns the heuristics must filter ---------------------

    /// Figure 5's `onFocus`: an if-guard makes the concurrent free
    /// commutative; the detector must *filter* this candidate.
    pub fn filtered_guard(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("fg");
        let ptr = self.p.ptr_var_alloc();
        let use_h = self.p.handler(
            &format!("{tag}:onFocus"),
            Body::from_actions(vec![Action::GuardedUse {
                var: ptr,
                kind: DerefKind::Invoke,
                style: GuardStyle::IfEqz,
            }]),
        );
        let free_h = self
            .p
            .handler(&format!("{tag}:onPause"), Body::new().free(ptr));
        let (l, u, f) = (self.looper, use_h, free_h);
        self.thread_at(
            &format!("{tag}:focusSrc"),
            t,
            vec![Action::Post {
                looper: l,
                handler: u,
                delay_ms: 0,
            }],
        );
        self.thread_at(
            &format!("{tag}:pauseSrc"),
            t + 30,
            vec![Action::Post {
                looper: l,
                handler: f,
                delay_ms: 0,
            }],
        );
        self.events += 2;
        self.truth.insert(Self::var_id(ptr), Label::Filtered);
    }

    /// Figure 5's `onResume`: an allocation inside the using event makes
    /// the pattern commutative; the detector must filter it.
    pub fn filtered_alloc(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("fa");
        let ptr = self.p.ptr_var_alloc();
        let use_h = self.p.handler(
            &format!("{tag}:onResume"),
            Body::new().alloc(ptr).use_ptr(ptr),
        );
        let free_h = self
            .p
            .handler(&format!("{tag}:onPause"), Body::new().free(ptr));
        let (l, u, f) = (self.looper, use_h, free_h);
        self.thread_at(
            &format!("{tag}:resumeSrc"),
            t,
            vec![Action::Post {
                looper: l,
                handler: u,
                delay_ms: 0,
            }],
        );
        self.thread_at(
            &format!("{tag}:pauseSrc"),
            t + 30,
            vec![Action::Post {
                looper: l,
                handler: f,
                delay_ms: 0,
            }],
        );
        self.events += 2;
        self.truth.insert(Self::var_id(ptr), Label::Filtered);
    }

    /// A use/free pair that is *safe because of queue rule 1*: one
    /// thread posts the using event and then the freeing event with
    /// equal delays, so the FIFO guarantee orders use ≺ free. CAFA
    /// derives the order and stays silent; an EventRacer-style model
    /// without queue rules (§7.1.1) reports it — the ablation bench
    /// quantifies exactly this difference.
    pub fn queue_protected(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("qp");
        let ptr = self.p.ptr_var_alloc();
        let use_h = self
            .p
            .handler(&format!("{tag}:onLoad"), Body::new().use_ptr(ptr));
        let free_h = self
            .p
            .handler(&format!("{tag}:onUnload"), Body::new().free(ptr));
        let (l, u, f) = (self.looper, use_h, free_h);
        self.thread_at(
            &format!("{tag}:src"),
            t,
            vec![
                Action::Post {
                    looper: l,
                    handler: u,
                    delay_ms: 2,
                },
                Action::Post {
                    looper: l,
                    handler: f,
                    delay_ms: 2,
                },
            ],
        );
        self.events += 2;
        self.truth.insert(Self::var_id(ptr), Label::Ordered);
    }

    /// Lifecycle churn: `cycles` resume/pause gesture pairs on one
    /// pointer — resume re-allocates it, pause uses it and frees it.
    /// The external-input rule chains the gestures, so every
    /// cross-cycle use/free candidate is HB-ordered and the detector
    /// stays silent without any heuristic's help. This is the
    /// "background the user keeps flipping away from" texture of
    /// generated workloads.
    pub fn lifecycle_churn(&mut self, cycles: u32) {
        let t = self.next_slot();
        let tag = self.tag("lcy");
        let ptr = self.p.ptr_var();
        let resume = self
            .p
            .handler(&format!("{tag}:onResume"), Body::new().alloc(ptr));
        let pause = self.p.handler(
            &format!("{tag}:onPause"),
            Body::new().use_ptr(ptr).free(ptr),
        );
        for k in 0..cycles as u64 {
            self.p.gesture(t + 40 * k, self.looper, resume);
            self.p.gesture(t + 40 * k + 20, self.looper, pause);
        }
        self.events += 2 * cycles as usize;
        self.truth.insert(Self::var_id(ptr), Label::Ordered);
    }

    // ---- predictive-only patterns ----------------------------------------------

    /// A monitor-guarded handoff the lock does not actually protect:
    /// two plain threads take the same monitor, one dereferencing a
    /// pointer, the other freeing it — and the critical sections share
    /// *nothing except the racing pointer itself*, so mutual exclusion
    /// pins no order between them. The HB backend's lockset filter
    /// suppresses the pair (common lock held at both sites); the
    /// predictive backend re-reports it because no other conflicting
    /// access fixes which section runs first, and a directed replay of
    /// the stress variant can run the freeing section first to confirm
    /// the violation.
    pub fn lock_handoff(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("lh");
        let ptr = self.p.ptr_var_alloc();
        let m = self.p.monitor();
        self.thread_at(
            &format!("{tag}:worker"),
            t,
            vec![
                Action::Lock(m),
                Action::UsePtr {
                    var: ptr,
                    kind: DerefKind::Invoke,
                    catch_npe: false,
                },
                Action::Unlock(m),
            ],
        );
        self.thread_at(
            &format!("{tag}:closer"),
            t + self.gap(30),
            vec![Action::Lock(m), Action::FreePtr(ptr), Action::Unlock(m)],
        );
        self.truth
            .insert(Self::var_id(ptr), Label::Predictive { confirmable: true });
    }

    /// A use/free pair whose only ordering is a FIFO posting chain the
    /// predictive relation relaxes away: one thread posts the using
    /// event and then a flush event with equal delays (queue rule 1
    /// orders them in HB, but the two events conflict on nothing, so
    /// the predictive conflict gate drops the edge); the flush event
    /// touches a private scalar and posts the freeing event. HB chains
    /// use ≺ flush ≺ free and stays silent; the predictive backend
    /// reports the pair — but the queue's FIFO discipline means no
    /// real schedule can run the free first, so adjudication must
    /// count the report as a false positive.
    pub fn fifo_handoff(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("fh");
        let ptr = self.p.ptr_var_alloc();
        let noise = self.p.scalar_var(0);
        let use_h = self
            .p
            .handler(&format!("{tag}:onShow"), Body::new().use_ptr(ptr));
        let free_h = self
            .p
            .handler(&format!("{tag}:onTeardown"), Body::new().free(ptr));
        let flush_h = self.p.handler(
            &format!("{tag}:onFlush"),
            Body::new().write(noise, 1).post(self.looper, free_h, 0),
        );
        let (l, u, fl) = (self.looper, use_h, flush_h);
        self.thread_at(
            &format!("{tag}:src"),
            t,
            vec![
                Action::Post {
                    looper: l,
                    handler: u,
                    delay_ms: 2,
                },
                Action::Post {
                    looper: l,
                    handler: fl,
                    delay_ms: 2,
                },
            ],
        );
        self.events += 3;
        self.truth
            .insert(Self::var_id(ptr), Label::Predictive { confirmable: false });
    }

    // ---- low-level-race texture -----------------------------------------------

    /// Figure 2's ConnectBot pattern: a scalar read-write race between
    /// `onPause` and `onLayout` that is *not* a use-free race (CAFA
    /// stays silent; the low-level counter sees one racy pair).
    pub fn fig2_scalar_rw(&mut self) {
        let t = self.next_slot();
        let tag = self.tag("f2");
        let resize_allowed = self.p.scalar_var(1);
        let pause = self.p.handler(
            &format!("{tag}:onPause"),
            Body::new().write(resize_allowed, 0),
        );
        let layout = self.p.handler(
            &format!("{tag}:onLayout"),
            Body::new().read(resize_allowed).read(resize_allowed),
        );
        let (l, pa, la) = (self.looper, pause, layout);
        self.thread_at(
            &format!("{tag}:pauseSrc"),
            t,
            vec![Action::Post {
                looper: l,
                handler: pa,
                delay_ms: 0,
            }],
        );
        self.thread_at(
            &format!("{tag}:layoutSrc"),
            t + 30,
            vec![Action::Post {
                looper: l,
                handler: la,
                delay_ms: 0,
            }],
        );
        self.events += 2;
    }

    /// A burst of `writers + readers` mutually concurrent events on one
    /// scalar: one thread posts them with strictly *decreasing* delays,
    /// so no queue-rule pair fires and every pair stays logically
    /// concurrent. Contributes `w·r + C(w,2)` racy low-level site pairs
    /// — the raw material of the §4.1 "1,664 races" measurement.
    pub fn scalar_burst(&mut self, writers: usize, readers: usize) {
        let t = self.next_slot();
        let tag = self.tag("sb");
        let var = self.p.scalar_var(0);
        let n = writers + readers;
        let mut posts = Vec::with_capacity(n);
        for k in 0..n {
            let (role, body) = if k < writers {
                ("W", Body::new().write(var, k as i64))
            } else {
                ("R", Body::new().read(var))
            };
            let h = self.p.handler(&format!("{tag}:{role}{k}"), body);
            // Strictly decreasing delays: no send pair satisfies
            // delay₁ ≤ delay₂, so rule 1 never orders the events.
            posts.push(Action::Post {
                looper: self.looper,
                handler: h,
                delay_ms: (n - k) as u64,
            });
        }
        self.thread_at(&format!("{tag}:src"), t, posts);
        self.events += n;
    }

    /// Expected racy low-level pairs for a `scalar_burst(w, r)`.
    pub fn burst_pairs(writers: usize, readers: usize) -> usize {
        writers * readers + writers * (writers - 1) / 2
    }

    // ---- filler -----------------------------------------------------------------

    /// Adds timer-chain filler until the workload will generate exactly
    /// `target` events, mirroring the thousands of benign events per
    /// second a real trace contains. Each chain is an external kick-off
    /// gesture plus a self-reposting handler with a bounded budget;
    /// queue rule 1 orders every chain, so filler adds no races.
    /// `compute_units` is uninstrumented CPU work per filler event — the
    /// per-app knob behind the Figure 8 overhead spread.
    ///
    /// # Panics
    ///
    /// Panics if more events are already planted than `target`.
    pub fn fill_to(&mut self, target: usize, compute_units: u32) {
        assert!(
            self.events <= target,
            "planted {} events, above the target {target}",
            self.events
        );
        let mut remaining = target - self.events;

        // A few plain user taps for external-input realism (taps are
        // chained by the external-input rule but post nothing, so they
        // never interact with the repost chains).
        let taps = remaining.min(3);
        if taps > 0 {
            let var = self.p.scalar_var(0);
            let tap = self.p.handler("user:tap", Body::new().read(var));
            for k in 0..taps {
                self.p.gesture(10 + 10 * k as u64, self.looper, tap);
            }
            self.events += taps;
            remaining -= taps;
        }

        // Timer chains, each kicked off by its own thread. Kicking from
        // threads (not gestures) keeps the chains mutually concurrent:
        // gesture-kicked chains would be pairwise ordered rung by rung
        // through the external-input rule, which both deviates from the
        // intended filler shape and makes the rule fixpoint crawl one
        // rung per round.
        const CHAIN_MAX: usize = 2000;
        let mut chain_no = 0;
        while remaining > 0 {
            let len = remaining.min(CHAIN_MAX);
            let budget = self.p.counter(len as u32 - 1);
            let var = self.p.scalar_var(0);
            let l = self.looper;
            let me = self.p.next_handler_id();
            let tick = self.p.handler(
                &format!("filler:tick{chain_no}"),
                Body::from_actions(vec![
                    Action::ReadScalar(var),
                    Action::Compute(compute_units),
                    Action::WriteScalar(var, 1),
                    Action::PostChain {
                        looper: l,
                        handler: me,
                        delay_ms: 3,
                        budget,
                    },
                ]),
            );
            self.p.thread(
                self.proc,
                &format!("filler:src{chain_no}"),
                Body::new().post(l, tick, 0),
            );
            self.events += len;
            remaining -= len;
            chain_no += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_pair_arithmetic() {
        assert_eq!(Patterns::burst_pairs(8, 46), 8 * 46 + 28);
        assert_eq!(Patterns::burst_pairs(1, 1), 1);
        assert_eq!(Patterns::burst_pairs(2, 1), 3);
    }

    #[test]
    fn planting_counts_events() {
        let mut p = ProgramBuilder::new("t");
        let proc = p.process();
        let looper = p.looper(proc);
        let mut pats = Patterns::new(&mut p, proc, looper);
        pats.intra(false, false); // 2
        pats.inter(false); // 2
        pats.conv(); // 0
        pats.fp_listener("com.example"); // 2
        pats.fp_bool_guard(); // 2
        pats.fp_alias(); // 3
        assert_eq!(pats.events_planted(), 11);
        let truth = pats.finish();
        assert_eq!(truth.len(), 6);
        assert_eq!(truth.harmful_count(TrueClass::IntraThread), 1);
        assert_eq!(truth.harmful_count(TrueClass::InterThread), 1);
        assert_eq!(truth.harmful_count(TrueClass::Conventional), 1);
        assert_eq!(truth.benign_count(FpType::MissingListener), 1);
    }

    #[test]
    fn fill_to_reaches_target_exactly() {
        let mut p = ProgramBuilder::new("t");
        let proc = p.process();
        let looper = p.looper(proc);
        let mut pats = Patterns::new(&mut p, proc, looper);
        pats.intra(false, false);
        pats.fill_to(4500, 2);
        assert_eq!(pats.events_planted(), 4500);
    }

    #[test]
    #[should_panic(expected = "above the target")]
    fn fill_below_planted_panics() {
        let mut p = ProgramBuilder::new("t");
        let proc = p.process();
        let looper = p.looper(proc);
        let mut pats = Patterns::new(&mut p, proc, looper);
        pats.intra(false, false);
        pats.fill_to(1, 0);
    }
}
