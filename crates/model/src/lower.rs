//! The deterministic interpreter: lowers an [`AppModel`] onto
//! `cafa-sim`.
//!
//! The interpreter reproduces the hand-written builders' call sequence
//! exactly — one process, one main looper, the statements executed in
//! model order, then timer-chain filler to the event target — so a
//! model that mirrors an old imperative recipe records *byte-identical*
//! traces for every seed. That guarantee is what let the catalog
//! migrate from code to data without perturbing a single golden report.

use cafa_sim::{run, InstrumentConfig, Program, ProgramBuilder, RunOutcome, SimConfig, SimError};

use crate::dsl::{AppModel, Stmt};
use crate::error::ModelError;
use crate::patterns::Patterns;
use crate::pipelines;
use crate::truth::{ExpectedRow, GroundTruth};

/// One runnable application: its workload program, oracle labels, and
/// the Table 1-style row its model implies.
#[derive(Debug)]
pub struct AppSpec {
    /// Application name (Table 1 spelling for the catalog apps,
    /// `gen{seed}-{index}` for generated ones).
    pub name: String,
    /// The simulator workload (deterministic benign-order timing; the
    /// Table 1 configuration).
    pub program: Program,
    /// The stress variant: harmful patterns race for real, so
    /// violations manifest under some schedules (the §6.2 survey
    /// configuration).
    pub stress_program: Program,
    /// Oracle labels for every planted pattern variable.
    pub truth: GroundTruth,
    /// The row this app's model implies (for the ten catalog apps,
    /// the paper's published numbers).
    pub expected: ExpectedRow,
    /// Expected conventional-definition racy site pairs, where a
    /// published number exists (ConnectBot's 1,664 of §4.1).
    pub lowlevel_pairs: Option<usize>,
}

impl AppSpec {
    /// Records a trace with the paper's instrumentation coverage
    /// (framework listener packages only — the configuration Table 1
    /// was produced with).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; lowered workloads run clean.
    pub fn record(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::paper_packages();
        run(&self.program, &config)
    }

    /// Records with *full* listener coverage (Type I false positives
    /// disappear — the fix §6.3 anticipates).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; lowered workloads run clean.
    pub fn record_full_coverage(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::full();
        run(&self.program, &config)
    }

    /// Runs without instrumentation (the stock ROM), for Figure 8
    /// overhead baselines.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; lowered workloads run clean.
    pub fn record_uninstrumented(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::off();
        run(&self.program, &config)
    }

    /// Runs the *stress* variant uninstrumented: harmful patterns race
    /// for real, so use-after-free violations manifest under some
    /// schedules — the §6.2 survey.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; lowered workloads run clean.
    pub fn run_stress(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::off();
        run(&self.stress_program, &config)
    }

    /// Records the *stress* variant with **full** instrumentation
    /// coverage. Instrumentation never consumes scheduling decisions,
    /// so this trace describes exactly the schedule `run_stress(seed)`
    /// executes — the reference `cafa-replay` synthesizes directed
    /// schedules from.
    ///
    /// Full coverage matters here: the detector deliberately analyzes
    /// paper-coverage traces (whose missing listener records *cause*
    /// the Type I false positives), but schedule synthesis must respect
    /// the platform's real causality — a register/perform edge the
    /// analyzer cannot see still constrains which schedules the
    /// platform can produce, and a directed run that broke it would
    /// "confirm" a race no real execution exhibits.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; lowered workloads run clean.
    pub fn record_stress(&self, seed: u64) -> Result<RunOutcome, SimError> {
        let mut config = SimConfig::with_seed(seed);
        config.instrument = InstrumentConfig::full();
        run(&self.stress_program, &config)
    }
}

/// Executes one statement against the pattern-planting context. Each
/// arm is a direct dispatch to the code the hand-written builders
/// called, in the same order, with the same arguments.
fn exec(stmt: &Stmt, pats: &mut Patterns<'_>) {
    match *stmt {
        Stmt::Intra { known, caught } => pats.intra(known, caught),
        Stmt::Fig1Binder { ref service } => pats.fig1_binder(service),
        Stmt::Inter { known } => pats.inter(known),
        Stmt::Conv => pats.conv(),
        Stmt::FpListener { ref package } => pats.fp_listener(package),
        Stmt::FpBoolGuard => pats.fp_bool_guard(),
        Stmt::FpAlias => pats.fp_alias(),
        Stmt::FilteredGuard => pats.filtered_guard(),
        Stmt::FilteredAlloc => pats.filtered_alloc(),
        Stmt::QueueProtected => pats.queue_protected(),
        Stmt::LifecycleChurn { cycles } => pats.lifecycle_churn(cycles),
        Stmt::LockHandoff => pats.lock_handoff(),
        Stmt::FifoHandoff => pats.fifo_handoff(),
        Stmt::Fig2ScalarRw => pats.fig2_scalar_rw(),
        Stmt::ScalarBurst { writers, readers } => {
            pats.scalar_burst(writers as usize, readers as usize);
        }
        Stmt::ServicePoll { ref service } => pats.flavor_service_poll(service),
        Stmt::WorkerPipeline => pats.flavor_worker_pipeline(),
        Stmt::InputBurst { count } => pats.flavor_input_burst(count as usize),
        Stmt::CoveredListener => pats.flavor_covered_listener(),
        Stmt::HandlerThread { len } => pats.flavor_handler_thread(len as usize),
        Stmt::FlavorBundle { ref service, burst } => {
            pats.flavor_bundle(service, burst as usize);
        }
        Stmt::SshRelay { updates, keys } => {
            pipelines::ssh_relay(pats, updates, keys as usize);
        }
        Stmt::GpsFixPipeline { fixes } => pipelines::gps_fix_pipeline(pats, fixes),
        Stmt::ScanPipeline { frames } => pipelines::scan_pipeline(pats, frames),
        Stmt::NoteSavePath { saves } => pipelines::note_save_path(pats, saves as usize),
        Stmt::PageLoadPipeline => pipelines::page_load_pipeline(pats),
        Stmt::CompositorBounce { rounds } => pipelines::compositor_bounce(pats, rounds),
        Stmt::PlaybackEngine => pipelines::playback_engine(pats),
        Stmt::PlaybackChain { packets } => pipelines::playback_chain(pats, packets),
        Stmt::ShutterSequence => pipelines::shutter_sequence(pats),
        Stmt::PaginationPrefetch { turns } => {
            pipelines::pagination_prefetch(pats, turns as usize);
        }
    }
}

fn build(model: &AppModel, stress: bool) -> (Program, GroundTruth) {
    let mut p = ProgramBuilder::new(model.name.as_str());
    let proc = p.process();
    let looper = p.looper(proc);
    let mut pats = if stress {
        Patterns::new_stress(&mut p, proc, looper)
    } else {
        Patterns::new(&mut p, proc, looper)
    };
    for stmt in &model.stmts {
        exec(stmt, &mut pats);
    }
    pats.fill_to(model.events, model.compute_units);
    let planted = pats.events_planted();
    debug_assert_eq!(
        planted, model.events,
        "{}: event budget mismatch",
        model.name
    );
    let truth = pats.finish();
    (p.build(), truth)
}

/// Lowers a model to a runnable [`AppSpec`]: the deterministic Table 1
/// program, the stress variant, and the ground-truth table accumulated
/// from the statements' embedded labels.
///
/// # Errors
///
/// Returns [`ModelError::Invalid`] (via [`AppModel::check`]) for any
/// model the lowering cannot handle; a checked model never panics.
pub fn lower(model: &AppModel) -> Result<AppSpec, ModelError> {
    model.check()?;
    let (program, truth) = build(model, false);
    let (stress_program, stress_truth) = build(model, true);
    // Both builds declare variables in the same order, so the label
    // tables must be identical.
    debug_assert_eq!(truth.len(), stress_truth.len());
    Ok(AppSpec {
        name: model.name.clone(),
        program,
        stress_program,
        truth,
        expected: model.expected_row(),
        lowlevel_pairs: model.lowlevel_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{Label, TrueClass};

    fn model() -> AppModel {
        AppModel {
            name: "lower-test".to_owned(),
            events: 600,
            compute_units: 5,
            lowlevel_pairs: None,
            stmts: vec![
                Stmt::Intra {
                    known: false,
                    caught: false,
                },
                Stmt::Inter { known: true },
                Stmt::QueueProtected,
                Stmt::LifecycleChurn { cycles: 3 },
                Stmt::FlavorBundle {
                    service: "TestService".to_owned(),
                    burst: 4,
                },
            ],
        }
    }

    #[test]
    fn lowering_matches_derived_truth() {
        let m = model();
        let spec = lower(&m).unwrap();
        assert_eq!(spec.name, "lower-test");
        assert_eq!(spec.truth.harmful_count(TrueClass::IntraThread), 1);
        assert_eq!(spec.truth.harmful_count(TrueClass::InterThread), 1);
        let ordered = spec
            .truth
            .iter()
            .filter(|&(_, l)| l == Label::Ordered)
            .count();
        assert_eq!(ordered, 2);
        assert_eq!(spec.expected, m.expected_row());
    }

    #[test]
    fn lowered_model_records_the_event_target() {
        let m = model();
        let spec = lower(&m).unwrap();
        let outcome = spec.record(0).unwrap();
        let trace = outcome.trace.unwrap();
        assert_eq!(trace.events().count(), m.events);
    }

    #[test]
    fn lowering_is_deterministic() {
        let m = model();
        let a = lower(&m).unwrap().record(7).unwrap().trace.unwrap();
        let b = lower(&m).unwrap().record(7).unwrap().trace.unwrap();
        assert_eq!(cafa_trace::to_binary_vec(&a), cafa_trace::to_binary_vec(&b));
    }

    #[test]
    fn invalid_model_is_rejected_not_panicked() {
        let mut m = model();
        m.stmts.push(Stmt::GpsFixPipeline { fixes: 0 });
        assert!(matches!(lower(&m), Err(ModelError::Invalid { .. })));
    }
}
