//! Simulator errors.

use std::error::Error;
use std::fmt;

use cafa_trace::TraceError;

/// A failure during a simulated run.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// Every entity is blocked and no timer/gesture can unblock any of
    /// them.
    Deadlock {
        /// Number of blocked entities.
        blocked: usize,
        /// Virtual time at the deadlock, in microseconds.
        at_us: u64,
    },
    /// The configured step budget ran out (runaway program, e.g. an
    /// unbounded repost loop).
    StepLimit {
        /// The exhausted budget.
        steps: u64,
    },
    /// `wait`/`notify`/`unlock` on a monitor the task does not own.
    IllegalMonitorState {
        /// Description of the offending operation.
        what: String,
    },
    /// `JoinLast` with no previously forked thread.
    JoinWithoutFork,
    /// The recorded trace failed validation (indicates a simulator bug;
    /// should be unreachable).
    Trace(TraceError),
    /// The program failed static validation (dangling handler/looper/
    /// variable references, kind mismatches). See
    /// [`Program::check`](crate::Program::check).
    InvalidProgram(Vec<crate::check::ProgramError>),
    /// A replayed [`Schedule`](crate::Schedule) no longer matches the
    /// execution: at script position `choice` (scheduler step `step`)
    /// the script demanded `scripted`, but the runtime was deciding a
    /// different kind of choice or the demanded entity was not among
    /// `offered`.
    ReplayDivergence {
        /// Index of the offending decision in the script.
        choice: usize,
        /// Scheduler steps executed when the divergence was detected.
        step: u64,
        /// The decision the script demanded.
        scripted: crate::schedule::Choice,
        /// True when the runtime was picking a `notify` waiter, false
        /// when it was picking the next entity to dispatch.
        at_wake: bool,
        /// Entity indices the runtime could actually choose from.
        offered: Vec<u32>,
    },
    /// An operation needed the recorded trace but instrumentation was
    /// disabled in the [`SimConfig`](crate::SimConfig).
    NotInstrumented {
        /// What required the trace.
        what: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked, at_us } => {
                write!(f, "deadlock: {blocked} entities blocked at t={at_us}µs")
            }
            SimError::StepLimit { steps } => write!(f, "step budget of {steps} exhausted"),
            SimError::IllegalMonitorState { what } => {
                write!(f, "illegal monitor state: {what}")
            }
            SimError::JoinWithoutFork => write!(f, "JoinLast with no forked thread"),
            SimError::Trace(e) => write!(f, "recorded trace failed validation: {e}"),
            SimError::InvalidProgram(errors) => {
                write!(f, "program failed validation ({} error(s)): ", errors.len())?;
                let first = errors.first().map(ToString::to_string).unwrap_or_default();
                f.write_str(&first)
            }
            SimError::ReplayDivergence {
                choice,
                step,
                scripted,
                at_wake,
                offered,
            } => {
                let deciding = if *at_wake {
                    "a notify wake"
                } else {
                    "the next dispatch"
                };
                write!(
                    f,
                    "replay divergence at script choice {choice} (scheduler step {step}): \
                     script demands {scripted:?} but the runtime was deciding {deciding} \
                     among entities {offered:?}"
                )
            }
            SimError::NotInstrumented { what } => {
                write!(f, "{what} requires instrumentation, but it was disabled")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Deadlock {
            blocked: 3,
            at_us: 99,
        };
        assert!(e.to_string().contains('3'));
        assert!(SimError::JoinWithoutFork.to_string().contains("JoinLast"));
    }
}
