//! A deterministic Android-like event-driven runtime simulator.
//!
//! The paper's artifact is an instrumented Android ROM (§5): hooks in
//! the Dalvik VM, framework, and Binder record an execution trace that
//! an offline analyzer consumes. This crate substitutes for the ROM
//! and the device: it executes [`Program`]s — processes, loopers with
//! Android's message-queue discipline, regular threads, monitors,
//! Binder services, listeners, and externally-generated gestures —
//! over a virtual clock with seeded scheduling, and its toggleable
//! instrumentation layer emits exactly the `cafa-trace` records the
//! paper's hooks would.
//!
//! Two properties matter for the reproduction:
//!
//! * **faithful semantics** — queue FIFO-after-delay,
//!   `sendMessageAtFrontOfQueue` jumping the line, atomic event
//!   execution, synchronous Binder transactions, notify generations —
//!   so the causality model's guarantees are real properties of runs;
//! * **toggleable, costed instrumentation** — runs with hooks off do
//!   none of the tracing work, so instrumented/uninstrumented CPU-time
//!   ratios reproduce the Figure 8 overhead experiment.
//!
//! # Examples
//!
//! ```
//! use cafa_sim::{ProgramBuilder, Body, SimConfig, run};
//!
//! // The Figure 1 shape: a service thread posts the using event while
//! // the user triggers the freeing event.
//! let mut p = ProgramBuilder::new("mini-mytracks");
//! let app = p.process();
//! let main = p.looper(app);
//! let provider_utils = p.ptr_var_alloc();
//! let connected = p.handler("onServiceConnected", Body::new().use_ptr(provider_utils));
//! let destroy = p.handler("onDestroy", Body::new().free(provider_utils));
//! let svc = p.process();
//! p.thread(svc, "binder-ipc", Body::new().post(main, connected, 0));
//! p.gesture(5, main, destroy);
//! let program = p.build();
//!
//! let outcome = run(&program, &SimConfig::with_seed(1)).unwrap();
//! let trace = outcome.trace.expect("instrumentation on");
//! assert_eq!(trace.stats().events, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
mod error;
pub mod explore;
mod program;
mod runtime;
mod schedule;

pub use check::ProgramError;
pub use error::SimError;
pub use program::{
    Action, Body, CounterId, Gesture, GuardStyle, HandlerId, LooperId, MethodId, ProcId, Program,
    ProgramBuilder, ServiceId, SimListener, SimMonitor, SimVar, ThreadSpecId, VarInit,
    MAX_BODY_ACTIONS,
};
pub use runtime::{run, InstrumentConfig, NpeInfo, RunOutcome, SimConfig};
pub use schedule::{Choice, DeferRule, DirectedSpec, Schedule, SchedulePolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{Record, TaskKind};

    fn run_seeded(p: &Program, seed: u64) -> RunOutcome {
        run(p, &SimConfig::with_seed(seed)).expect("run succeeds")
    }

    #[test]
    fn empty_program_terminates() {
        let p = ProgramBuilder::new("empty").build();
        let o = run_seeded(&p, 0);
        assert_eq!(o.events_processed, 0);
        assert!(o.trace.unwrap().stats().records == 0);
    }

    #[test]
    fn gesture_events_are_external_and_processed() {
        let mut p = ProgramBuilder::new("g");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.scalar_var(0);
        let h = p.handler("onTouch", Body::new().read(v));
        p.gesture(10, l, h);
        p.gesture(20, l, h);
        let prog = p.build();
        let o = run_seeded(&prog, 3);
        assert_eq!(o.events_processed, 2);
        let t = o.trace.unwrap();
        assert_eq!(t.external_events().len(), 2);
        assert_eq!(t.stats().events, 2);
    }

    #[test]
    fn delays_control_processing_order() {
        let mut p = ProgramBuilder::new("delays");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.scalar_var(0);
        let slow = p.handler("slow", Body::new().read(v));
        let fast = p.handler("fast", Body::new().write(v, 1));
        // One thread posts slow (delay 50ms) then fast (delay 0).
        p.thread(pr, "poster", Body::new().post(l, slow, 50).post(l, fast, 0));
        let prog = p.build();
        let o = run_seeded(&prog, 7);
        let t = o.trace.unwrap();
        // fast must be processed first (Figure 4c shape).
        let q = t.queues().next().unwrap().1;
        let first = t.task(q.events[0]);
        assert_eq!(t.names().resolve(first.name), "fast");
        assert_eq!(q.events.len(), 2);
    }

    #[test]
    fn post_front_jumps_the_queue() {
        let mut p = ProgramBuilder::new("front");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.scalar_var(0);
        let a = p.handler("A", Body::new().read(v));
        let b = p.handler("B", Body::new().read(v));
        // The first processed event posts A normally then B at front;
        // B must run before A (Figure 4d).
        let starter = p.handler(
            "starter",
            Body::from_actions(vec![
                Action::Post {
                    looper: l,
                    handler: a,
                    delay_ms: 0,
                },
                Action::PostFront {
                    looper: l,
                    handler: b,
                },
            ]),
        );
        p.gesture(0, l, starter);
        let prog = p.build();
        let o = run_seeded(&prog, 11);
        let t = o.trace.unwrap();
        let q = t.queues().next().unwrap().1;
        let names: Vec<&str> = q.events.iter().map(|&e| t.task_name(e)).collect();
        assert_eq!(names, vec!["starter", "B", "A"]);
    }

    #[test]
    fn npe_manifests_only_in_bad_orders() {
        // use-then-free is fine; free-then-use crashes. Across seeds we
        // should observe both behaviors.
        let mut crashed = 0;
        let mut clean = 0;
        for seed in 0..20 {
            let mut p = ProgramBuilder::new("race");
            let pr = p.process();
            let l = p.looper(pr);
            let ptr = p.ptr_var_alloc();
            let use_h = p.handler("useIt", Body::new().use_ptr(ptr));
            let free_h = p.handler("freeIt", Body::new().free(ptr));
            p.thread(pr, "s1", Body::new().post(l, use_h, 0));
            p.thread(pr, "s2", Body::new().post(l, free_h, 0));
            let prog = p.build();
            let o = run_seeded(&prog, seed);
            if o.crashed() {
                crashed += 1;
            } else {
                clean += 1;
            }
        }
        assert!(crashed > 0, "some schedule should free before using");
        assert!(clean > 0, "some schedule should use before freeing");
    }

    #[test]
    fn guarded_use_never_crashes_within_one_looper() {
        for seed in 0..20 {
            let mut p = ProgramBuilder::new("guarded");
            let pr = p.process();
            let l = p.looper(pr);
            let ptr = p.ptr_var_alloc();
            let use_h = p.handler("onFocus", Body::new().guarded_use(ptr));
            let free_h = p.handler("onPause", Body::new().free(ptr));
            p.thread(pr, "s1", Body::new().post(l, use_h, 0));
            p.thread(pr, "s2", Body::new().post(l, free_h, 0));
            let prog = p.build();
            let o = run_seeded(&prog, seed);
            assert!(
                !o.crashed(),
                "if-guard inside one looper is safe (seed {seed})"
            );
        }
    }

    #[test]
    fn fork_join_and_monitors() {
        let mut p = ProgramBuilder::new("sync");
        let pr = p.process();
        let m = p.monitor();
        let v = p.scalar_var(0);
        let worker = p.thread_spec(
            pr,
            "worker",
            Body::from_actions(vec![
                Action::Lock(m),
                Action::WriteScalar(v, 42),
                Action::Unlock(m),
            ]),
        );
        p.thread(
            pr,
            "main",
            Body::from_actions(vec![
                Action::Fork(worker),
                Action::Lock(m),
                Action::ReadScalar(v),
                Action::Unlock(m),
                Action::JoinLast,
            ]),
        );
        let prog = p.build();
        let o = run_seeded(&prog, 5);
        let t = o.trace.unwrap();
        assert_eq!(t.stats().threads, 2);
        // main: enter + fork + lock + read + unlock + join + exit = 7;
        // worker: enter + lock + write + unlock + exit = 5.
        assert_eq!(t.stats().records, 12);
        // The forked thread records its fork site.
        let forked = t
            .threads()
            .find(|th| t.names().resolve(th.name) == "worker")
            .unwrap();
        assert!(matches!(
            forked.kind,
            TaskKind::Thread {
                forked_at: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn wait_notify_pairs_by_generation() {
        let mut p = ProgramBuilder::new("waitnotify");
        let pr = p.process();
        let m = p.monitor();
        p.thread(
            pr,
            "waiter",
            Body::from_actions(vec![Action::Lock(m), Action::Wait(m), Action::Unlock(m)]),
        );
        p.thread(
            pr,
            "notifier",
            Body::from_actions(vec![
                Action::Sleep(5),
                Action::Lock(m),
                Action::Notify(m),
                Action::Unlock(m),
            ]),
        );
        let prog = p.build();
        let o = run_seeded(&prog, 9);
        let t = o.trace.unwrap();
        let mut notify_gen = None;
        let mut wait_gen = None;
        for (_, r) in t.iter_ops() {
            match *r {
                Record::Notify { gen, .. } => notify_gen = Some(gen),
                Record::Wait { gen, .. } => wait_gen = Some(gen),
                _ => {}
            }
        }
        assert_eq!(notify_gen, wait_gen);
        assert!(notify_gen.is_some());
    }

    #[test]
    fn wait_releases_and_reacquires_the_monitor() {
        // `wait` must emit the unlocks of the released holds and fresh
        // locks on reacquisition, or a lock-order reconstruction sees
        // the waiter holding the monitor across the notifier's critical
        // section (a causality cycle).
        let mut p = ProgramBuilder::new("waitlock");
        let pr = p.process();
        let m = p.monitor();
        p.thread(
            pr,
            "waiter",
            Body::from_actions(vec![Action::Lock(m), Action::Wait(m), Action::Unlock(m)]),
        );
        p.thread(
            pr,
            "notifier",
            Body::from_actions(vec![
                Action::Sleep(5),
                Action::Lock(m),
                Action::Notify(m),
                Action::Unlock(m),
            ]),
        );
        let trace = run_seeded(&p.build(), 3).trace.unwrap();
        let waiter = trace
            .threads()
            .find(|t| trace.names().resolve(t.name) == "waiter")
            .unwrap()
            .id;
        let tags: Vec<&str> = trace.body(waiter).iter().map(|r| r.kind_tag()).collect();
        // enter, lock, unlock (release inside wait), lock (reacquire),
        // wait, unlock, exit.
        assert_eq!(
            tags,
            vec!["enter", "lock", "unlock", "lock", "wait", "unlock", "exit"]
        );
        // Lock gens across both tasks are globally ordered and the
        // reacquisition gen postdates the notifier's.
        let mut gens = Vec::new();
        for (_, r) in trace.iter_ops() {
            if let Record::Lock { gen, .. } = r {
                gens.push(*gen);
            }
        }
        gens.sort_unstable();
        gens.dedup();
        assert_eq!(gens.len(), 3, "three distinct acquisitions");
    }

    #[test]
    fn sync_rpc_produces_all_four_records() {
        let mut p = ProgramBuilder::new("rpc");
        let app = p.process();
        let svcp = p.process();
        let v = p.scalar_var(0);
        let svc = p.service(svcp, "gps");
        let m = p.method(svc, "getLocation", Body::new().write(v, 7));
        p.thread(
            app,
            "caller",
            Body::from_actions(vec![Action::Call {
                service: svc,
                method: m,
            }]),
        );
        let prog = p.build();
        let o = run_seeded(&prog, 13);
        let t = o.trace.unwrap();
        let tags: Vec<&str> = t.iter_ops().map(|(_, r)| r.kind_tag()).collect();
        assert!(tags.contains(&"rpccall"));
        assert!(tags.contains(&"rpchandle"));
        assert!(tags.contains(&"rpcreply"));
        assert!(tags.contains(&"rpcrecv"));
        assert_eq!(t.process_count(), 2);
    }

    #[test]
    fn async_rpc_can_post_back() {
        let mut p = ProgramBuilder::new("asyncrpc");
        let app = p.process();
        let svcp = p.process();
        let main = p.looper(app);
        let ptr = p.ptr_var_alloc();
        let connected = p.handler("onServiceConnected", Body::new().use_ptr(ptr));
        let svc = p.service(svcp, "track");
        let bind = p.method(svc, "onBind", Body::new().post(main, connected, 0));
        let resume = p.handler(
            "onResume",
            Body::from_actions(vec![Action::CallAsync {
                service: svc,
                method: bind,
            }]),
        );
        p.gesture(0, main, resume);
        let prog = p.build();
        let o = run_seeded(&prog, 17);
        assert!(!o.crashed());
        let t = o.trace.unwrap();
        assert_eq!(t.stats().events, 2);
    }

    #[test]
    fn post_chain_is_bounded() {
        let mut p = ProgramBuilder::new("chain");
        let pr = p.process();
        let l = p.looper(pr);
        let budget = p.counter(10);
        let v = p.scalar_var(0);
        // Handler ids are assigned in declaration order, so the first
        // declared handler can name itself.
        let tick = {
            let self_id = HandlerId(0);
            p.handler(
                "tick",
                Body::from_actions(vec![
                    Action::ReadScalar(v),
                    Action::PostChain {
                        looper: l,
                        handler: self_id,
                        delay_ms: 1,
                        budget,
                    },
                ]),
            )
        };
        p.gesture(0, l, tick);
        let prog = p.build();
        let o = run_seeded(&prog, 19);
        // initial + 10 reposts.
        assert_eq!(o.events_processed, 11);
    }

    #[test]
    fn uninstrumented_run_produces_no_trace_and_same_behavior() {
        let build = || {
            let mut p = ProgramBuilder::new("both");
            let pr = p.process();
            let l = p.looper(pr);
            let ptr = p.ptr_var_alloc();
            let use_h = p.handler("useIt", Body::new().use_ptr(ptr).compute(50));
            let free_h = p.handler("freeIt", Body::new().free(ptr));
            p.thread(pr, "s1", Body::new().post(l, use_h, 0));
            p.thread(pr, "s2", Body::new().post(l, free_h, 0));
            p.build()
        };
        let seed = 23;
        let on = run(&build(), &SimConfig::with_seed(seed)).unwrap();
        let mut cfg = SimConfig::with_seed(seed);
        cfg.instrument = InstrumentConfig::off();
        let off = run(&build(), &cfg).unwrap();
        assert!(on.trace.is_some());
        assert!(off.trace.is_none());
        // Same schedule decisions: same event count and crash behavior.
        assert_eq!(on.events_processed, off.events_processed);
        assert_eq!(on.crashed(), off.crashed());
    }

    #[test]
    fn uninstrumented_listener_packages_drop_records() {
        let build = || {
            let mut p = ProgramBuilder::new("pkgs");
            let pr = p.process();
            let l = p.looper(pr);
            let covered = p.listener("android.view");
            let uncovered = p.listener("com.example.custom");
            let h1 = p.handler(
                "reg",
                Body::from_actions(vec![Action::Register(covered), Action::Register(uncovered)]),
            );
            let h2 = p.handler(
                "perf",
                Body::from_actions(vec![Action::Perform(covered), Action::Perform(uncovered)]),
            );
            p.gesture(0, l, h1);
            p.gesture(5, l, h2);
            p.build()
        };
        // Full coverage: 2 registers + 2 performs.
        let o = run(&build(), &SimConfig::with_seed(1)).unwrap();
        let t = o.trace.unwrap();
        let regs = t
            .iter_ops()
            .filter(|(_, r)| matches!(r, Record::Register { .. }))
            .count();
        assert_eq!(regs, 2);

        // Paper packages: only android.view is covered.
        let mut cfg = SimConfig::with_seed(1);
        cfg.instrument = InstrumentConfig::paper_packages();
        let o = run(&build(), &cfg).unwrap();
        let t = o.trace.unwrap();
        let regs = t
            .iter_ops()
            .filter(|(_, r)| matches!(r, Record::Register { .. }))
            .count();
        let perfs = t
            .iter_ops()
            .filter(|(_, r)| matches!(r, Record::Perform { .. }))
            .count();
        assert_eq!(regs, 1);
        assert_eq!(perfs, 1);
        assert_eq!(t.listener_count(), 1);
    }

    #[test]
    fn determinism_per_seed() {
        let build = || {
            let mut p = ProgramBuilder::new("det");
            let pr = p.process();
            let l = p.looper(pr);
            let ptr = p.ptr_var_alloc();
            let u = p.handler("u", Body::new().use_ptr(ptr));
            let f = p.handler("f", Body::new().free(ptr));
            let a = p.handler("a", Body::new().alloc(ptr));
            p.thread(pr, "s1", Body::new().post(l, u, 0).post(l, f, 1));
            p.thread(pr, "s2", Body::new().post(l, a, 0).post(l, u, 2));
            p.build()
        };
        let t1 = run(&build(), &SimConfig::with_seed(99))
            .unwrap()
            .trace
            .unwrap();
        let t2 = run(&build(), &SimConfig::with_seed(99))
            .unwrap()
            .trace
            .unwrap();
        assert_eq!(t1, t2, "same seed, same trace");
        let t3 = run(&build(), &SimConfig::with_seed(100))
            .unwrap()
            .trace
            .unwrap();
        // Different seeds usually differ (not guaranteed in general;
        // this program has enough concurrency that they do).
        assert_ne!(t1, t3);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut p = ProgramBuilder::new("deadlock");
        let pr = p.process();
        let m = p.monitor();
        // A thread waits with nobody to notify.
        p.thread(
            pr,
            "stuck",
            Body::from_actions(vec![Action::Lock(m), Action::Wait(m)]),
        );
        let prog = p.build();
        let err = run(&prog, &SimConfig::with_seed(0)).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn step_limit_is_enforced() {
        let mut p = ProgramBuilder::new("busy");
        let pr = p.process();
        let l = p.looper(pr);
        let budget = p.counter(1_000_000);
        let tick = {
            let self_id = HandlerId(0);
            p.handler(
                "tick",
                Body::from_actions(vec![Action::PostChain {
                    looper: l,
                    handler: self_id,
                    delay_ms: 0,
                    budget,
                }]),
            )
        };
        p.gesture(0, l, tick);
        let prog = p.build();
        let mut cfg = SimConfig::with_seed(0);
        cfg.max_steps = 1000;
        let err = run(&prog, &cfg).unwrap_err();
        assert!(matches!(err, SimError::StepLimit { .. }));
    }

    #[test]
    fn type3_aliased_use_misleads_matching() {
        let mut p = ProgramBuilder::new("alias");
        let pr = p.process();
        let l = p.looper(pr);
        let real = p.ptr_var_alloc();
        let decoy = p.ptr_var();
        // Alias decoy to the same object, then use via the aliased pair.
        let setup = p.handler(
            "setup",
            Body::from_actions(vec![Action::CopyPtr {
                from: real,
                to: decoy,
            }]),
        );
        let user = p.handler(
            "user",
            Body::from_actions(vec![Action::AliasedUse {
                first: real,
                second: decoy,
                kind: cafa_trace::DerefKind::Field,
            }]),
        );
        p.gesture(0, l, setup);
        p.gesture(5, l, user);
        let prog = p.build();
        let o = run_seeded(&prog, 31);
        assert!(!o.crashed());
        let t = o.trace.unwrap();
        // The nearest-previous-read matcher attributes the use to the
        // *decoy* variable.
        assert_eq!(
            nearest_read_probe(&t),
            Some(cafa_trace::VarId::new(decoy.0))
        );
    }

    /// Minimal reimplementation of the §5.3 matcher for the alias test
    /// (avoids a dev-dependency cycle with cafa-core).
    fn nearest_read_probe(t: &cafa_trace::Trace) -> Option<cafa_trace::VarId> {
        for task in t.tasks() {
            let mut last: std::collections::HashMap<cafa_trace::ObjId, cafa_trace::VarId> =
                std::collections::HashMap::new();
            for r in t.body(task.id) {
                match *r {
                    Record::ObjRead {
                        var, obj: Some(o), ..
                    } => {
                        last.insert(o, var);
                    }
                    Record::Deref { obj, .. } => return last.get(&obj).copied(),
                    _ => {}
                }
            }
        }
        None
    }
}
