//! Static validation of programs before execution.
//!
//! Program bodies reference handlers, threads, services, variables, and
//! counters by index — including forward references
//! ([`HandlerId::from_index`]) that nothing checks at construction
//! time. [`Program::check`] verifies every reference up front and
//! reports all problems at once, so authoring mistakes surface as
//! errors instead of mid-simulation panics.
//!
//! [`HandlerId::from_index`]: crate::HandlerId::from_index

use std::fmt;

use crate::program::{Action, Body, Program, VarInit};

/// One authoring mistake found by [`Program::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramError {
    /// An action references a handler index that was never declared.
    UnknownHandler {
        /// Where the reference occurs.
        site: String,
        /// The missing index.
        index: u32,
    },
    /// An action references an undeclared looper.
    UnknownLooper {
        /// Where the reference occurs.
        site: String,
        /// The missing index.
        index: u32,
    },
    /// A pointer action targets a scalar variable (or vice versa).
    VariableKindMismatch {
        /// Where the access occurs.
        site: String,
        /// The variable index.
        index: u32,
        /// What the action expected.
        expected: &'static str,
    },
    /// An action references an undeclared variable, monitor, counter,
    /// thread script, service, or method.
    UnknownEntity {
        /// Where the reference occurs.
        site: String,
        /// Entity kind.
        kind: &'static str,
        /// The missing index.
        index: u32,
    },
    /// A gesture references an undeclared handler or looper.
    BadGesture {
        /// The gesture's position in the schedule.
        index: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownHandler { site, index } => {
                write!(f, "{site}: references undeclared handler #{index}")
            }
            ProgramError::UnknownLooper { site, index } => {
                write!(f, "{site}: references undeclared looper #{index}")
            }
            ProgramError::VariableKindMismatch {
                site,
                index,
                expected,
            } => {
                write!(f, "{site}: variable #{index} is not a {expected}")
            }
            ProgramError::UnknownEntity { site, kind, index } => {
                write!(f, "{site}: references undeclared {kind} #{index}")
            }
            ProgramError::BadGesture { index } => {
                write!(f, "gesture #{index}: undeclared handler or looper")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Statically validates every reference in the program.
    ///
    /// # Errors
    ///
    /// Returns every problem found (not just the first).
    pub fn check(&self) -> Result<(), Vec<ProgramError>> {
        let mut errors = Vec::new();
        let handler_count = self.handlers.len() as u32;
        let looper_count = self.loopers.len() as u32;

        let mut check_body = |site: &str, body: &Body| {
            for (i, action) in body.actions().iter().enumerate() {
                let at = format!("{site}[{i}]");
                self.check_action(&at, action, handler_count, looper_count, &mut errors);
            }
        };
        for (i, t) in self.threads.iter().enumerate() {
            check_body(&format!("thread #{i} \"{}\"", t.name), &t.body);
        }
        for (i, h) in self.handlers.iter().enumerate() {
            check_body(&format!("handler #{i} \"{}\"", h.name), &h.body);
        }
        for (si, svc) in self.services.iter().enumerate() {
            for (mi, m) in svc.methods.iter().enumerate() {
                check_body(
                    &format!("service #{si} method #{mi} \"{}\"", m.name),
                    &m.body,
                );
            }
        }
        for (i, g) in self.gestures.iter().enumerate() {
            if g.handler.index() >= handler_count || g.looper.index_u32() >= looper_count {
                errors.push(ProgramError::BadGesture { index: i });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    fn check_action(
        &self,
        site: &str,
        action: &Action,
        handler_count: u32,
        looper_count: u32,
        errors: &mut Vec<ProgramError>,
    ) {
        use Action::*;
        let mut handler_ref = |h: crate::HandlerId, l: crate::LooperId| {
            if h.index() >= handler_count {
                errors.push(ProgramError::UnknownHandler {
                    site: site.to_owned(),
                    index: h.index(),
                });
            }
            if l.index_u32() >= looper_count {
                errors.push(ProgramError::UnknownLooper {
                    site: site.to_owned(),
                    index: l.index_u32(),
                });
            }
        };
        match action {
            Post {
                looper, handler, ..
            }
            | PostFront { looper, handler }
            | PostChain {
                looper, handler, ..
            } => handler_ref(*handler, *looper),
            _ => {}
        }
        // Variable-kind checks.
        let mut want = |v: crate::SimVar, ptr: bool| match self.vars.get(v.index() as usize) {
            None => errors.push(ProgramError::UnknownEntity {
                site: site.to_owned(),
                kind: "variable",
                index: v.index(),
            }),
            Some(VarInit::Scalar(_)) if ptr => errors.push(ProgramError::VariableKindMismatch {
                site: site.to_owned(),
                index: v.index(),
                expected: "pointer",
            }),
            Some(VarInit::PtrNull | VarInit::PtrAlloc) if !ptr => {
                errors.push(ProgramError::VariableKindMismatch {
                    site: site.to_owned(),
                    index: v.index(),
                    expected: "scalar",
                })
            }
            _ => {}
        };
        match action {
            ReadScalar(v) | WriteScalar(v, _) => want(*v, false),
            AllocPtr(v) | FreePtr(v) => want(*v, true),
            UsePtr { var, .. } | GuardedUse { var, .. } => want(*var, true),
            BoolGuardedUse { flag, var, .. } => {
                want(*flag, false);
                want(*var, true);
            }
            CopyPtr { from, to } => {
                want(*from, true);
                want(*to, true);
            }
            AliasedUse { first, second, .. } => {
                want(*first, true);
                want(*second, true);
            }
            _ => {}
        }
        // Other entity references.
        match action {
            Fork(t) if t.index_u32() >= self.threads.len() as u32 => {
                errors.push(ProgramError::UnknownEntity {
                    site: site.to_owned(),
                    kind: "thread script",
                    index: t.index_u32(),
                });
            }
            Call { service, method } | CallAsync { service, method } => {
                match self.services.get(service.index_u32() as usize) {
                    None => errors.push(ProgramError::UnknownEntity {
                        site: site.to_owned(),
                        kind: "service",
                        index: service.index_u32(),
                    }),
                    Some(svc) if method.index_u32() as usize >= svc.methods.len() => {
                        errors.push(ProgramError::UnknownEntity {
                            site: site.to_owned(),
                            kind: "method",
                            index: method.index_u32(),
                        })
                    }
                    _ => {}
                }
            }
            PostChain { budget, .. } if budget.index_u32() >= self.counters.len() as u32 => {
                errors.push(ProgramError::UnknownEntity {
                    site: site.to_owned(),
                    kind: "counter",
                    index: budget.index_u32(),
                });
            }
            Lock(m) | Unlock(m) | Wait(m) | Notify(m) | NotifyAll(m)
                if m.index_u32() >= self.monitor_count =>
            {
                errors.push(ProgramError::UnknownEntity {
                    site: site.to_owned(),
                    kind: "monitor",
                    index: m.index_u32(),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Body, ProgramBuilder};
    use crate::{Action, HandlerId};

    #[test]
    fn valid_programs_pass() {
        let mut p = ProgramBuilder::new("ok");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.ptr_var();
        let me = p.next_handler_id();
        let budget = p.counter(3);
        p.handler(
            "h",
            Body::from_actions(vec![
                Action::AllocPtr(v),
                Action::PostChain {
                    looper: l,
                    handler: me,
                    delay_ms: 1,
                    budget,
                },
            ]),
        );
        assert_eq!(p.build().check(), Ok(()));
    }

    #[test]
    fn dangling_forward_reference_is_caught() {
        let mut p = ProgramBuilder::new("bad");
        let pr = p.process();
        let l = p.looper(pr);
        p.thread(
            pr,
            "t",
            Body::from_actions(vec![Action::Post {
                looper: l,
                handler: HandlerId::from_index(7), // never declared
                delay_ms: 0,
            }]),
        );
        let errors = p.build().check().unwrap_err();
        assert!(matches!(
            errors[0],
            ProgramError::UnknownHandler { index: 7, .. }
        ));
        assert!(errors[0].to_string().contains("#7"));
    }

    #[test]
    fn variable_kind_mismatches_are_caught() {
        let mut p = ProgramBuilder::new("kinds");
        let pr = p.process();
        let scalar = p.scalar_var(0);
        let ptr = p.ptr_var();
        p.thread(
            pr,
            "t",
            Body::from_actions(vec![Action::FreePtr(scalar), Action::ReadScalar(ptr)]),
        );
        let errors = p.build().check().unwrap_err();
        assert_eq!(errors.len(), 2);
        assert!(errors
            .iter()
            .all(|e| matches!(e, ProgramError::VariableKindMismatch { .. })));
    }

    #[test]
    fn multiple_errors_reported_at_once() {
        let mut p = ProgramBuilder::new("many");
        let pr = p.process();
        let l = p.looper(pr);
        let h = p.handler("h", Body::new());
        p.gesture(0, l, h);
        p.thread(
            pr,
            "t",
            Body::from_actions(vec![
                Action::Fork(crate::ThreadSpecId::from_index(9)),
                Action::Lock(crate::SimMonitor::from_index(5)),
            ]),
        );
        let errors = p.build().check().unwrap_err();
        assert_eq!(errors.len(), 2);
    }
}
