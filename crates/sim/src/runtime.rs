//! The deterministic discrete-time execution engine.
//!
//! The runtime plays the role of the Android stack: it schedules
//! loopers, regular threads, and Binder threads over a virtual clock,
//! enforces Android's queue discipline (messages sorted by absolute
//! ready time, `sendMessageAtFrontOfQueue` jumping the line), blocks
//! and wakes tasks on monitors, and — when instrumentation is on —
//! emits exactly the trace records the paper's customized ROM would
//! (§5). Scheduling choices among simultaneously runnable entities are
//! drawn from a seeded RNG, so a program explores different
//! interleavings across seeds while each seed is fully reproducible.

use std::collections::{HashMap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cafa_trace::{
    BranchKind, ListenerId, MonitorId, ObjId, ProcessId, QueueId, TaskId, Trace, TraceBuilder,
    TxnId, VarId,
};

use crate::error::SimError;
use crate::program::{
    Action, GuardStyle, HandlerId, LooperId, Program, ServiceId, SimVar, ThreadSpecId, VarInit,
};
use crate::schedule::{Choice, DirectedSpec, Schedule, SchedulePolicy};

/// Instrumentation configuration: what the "customized ROM" records.
#[derive(Clone, Debug)]
pub struct InstrumentConfig {
    /// Master switch. Off = the stock ROM: no trace, no overhead.
    pub enabled: bool,
    /// Packages whose listeners are instrumented; `None` instruments
    /// all. The paper instruments only `android.app`, `android.view`,
    /// `android.widget`, and `android.content` (§5.2) — registrations
    /// of listeners in other packages are invisible to the analyzer,
    /// producing Type I false positives.
    pub listener_packages: Option<Vec<String>>,
    /// Simulated cost of writing one record through the kernel logger
    /// device, in hash rounds. Governs the Figure 8 slowdown.
    pub logger_weight: u32,
}

impl InstrumentConfig {
    /// Full instrumentation (all listener packages).
    pub fn full() -> Self {
        Self {
            enabled: true,
            listener_packages: None,
            logger_weight: 600,
        }
    }

    /// The paper's coverage: only the four framework packages of §5.2.
    pub fn paper_packages() -> Self {
        Self {
            enabled: true,
            listener_packages: Some(
                [
                    "android.app",
                    "android.view",
                    "android.widget",
                    "android.content",
                ]
                .map(str::to_owned)
                .to_vec(),
            ),
            logger_weight: 600,
        }
    }

    /// No instrumentation (the stock ROM), for overhead baselines.
    pub fn off() -> Self {
        Self {
            enabled: false,
            listener_packages: None,
            logger_weight: 0,
        }
    }
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for scheduling decisions.
    pub seed: u64,
    /// Instrumentation setup.
    pub instrument: InstrumentConfig,
    /// Abort after this many scheduler steps.
    pub max_steps: u64,
    /// Virtual cost of one action, in microseconds.
    pub action_cost_us: u64,
    /// How scheduling decisions are resolved: seeded random (the
    /// default), a replayed [`Schedule`] script, or defer-rule directed
    /// search. Under [`SchedulePolicy::Script`] the RNG is seeded from
    /// the script's tail seed; `seed` still stamps the trace metadata.
    pub policy: SchedulePolicy,
    /// Record every scheduling decision into
    /// [`RunOutcome::schedule`], whatever the policy.
    pub record_schedule: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            instrument: InstrumentConfig::full(),
            max_steps: 50_000_000,
            action_cost_us: 10,
            policy: SchedulePolicy::Random,
            record_schedule: false,
        }
    }
}

impl SimConfig {
    /// Default configuration with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// A null-pointer dereference observed during the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NpeInfo {
    /// Name of the handler/thread/method that dereferenced null.
    pub context: String,
    /// The pointer variable involved.
    pub var: VarId,
    /// Whether the surrounding code caught the exception.
    pub caught: bool,
    /// Virtual time of the dereference, in microseconds.
    pub at_us: u64,
}

/// The result of a completed run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The recorded trace, when instrumentation was enabled.
    pub trace: Option<Trace>,
    /// Null-pointer exceptions that manifested under this schedule.
    pub npes: Vec<NpeInfo>,
    /// Virtual duration of the run in microseconds.
    pub virtual_us: u64,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Events processed across all loopers.
    pub events_processed: u64,
    /// Accumulated work-hash, returned so the optimizer cannot remove
    /// the simulated CPU work Figure 8 times.
    pub sink: u64,
    /// Every scheduling decision of the run, when
    /// [`SimConfig::record_schedule`] was set. Replaying it via
    /// [`SchedulePolicy::Script`] reproduces the run exactly.
    pub schedule: Option<Schedule>,
}

impl RunOutcome {
    /// True when at least one *uncaught* NPE occurred (an app crash).
    pub fn crashed(&self) -> bool {
        self.npes.iter().any(|n| !n.caught)
    }
}

/// Runs `program` under `config` to completion.
///
/// The run ends when every thread script has finished, all queues are
/// drained, and no gesture is pending. Virtual time jumps across idle
/// gaps, so delayed messages always get processed.
///
/// # Errors
///
/// See [`SimError`] — deadlock, step-budget exhaustion, monitor misuse,
/// or (indicating a bug) trace validation failure.
pub fn run(program: &Program, config: &SimConfig) -> Result<RunOutcome, SimError> {
    program.check().map_err(SimError::InvalidProgram)?;
    Simulator::new(program, config).run()
}

// ---- internal machinery ---------------------------------------------------

const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn work(mut h: u64, rounds: u32) -> u64 {
    for i in 0..rounds {
        h = (h ^ u64::from(i).wrapping_add(0x9e3779b97f4a7c15)).wrapping_mul(FNV_PRIME);
    }
    h
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Value {
    Ptr(Option<ObjId>),
    Scalar(i64),
}

#[derive(Clone, Debug, PartialEq)]
enum EntState {
    Ready,
    Idle,
    BlockedLock(SimMonitor),
    BlockedWait(SimMonitor),
    WaitReacquire {
        mon: SimMonitor,
        gen: u32,
        depth: u32,
    },
    BlockedJoin(usize),
    BlockedRpc(usize),
    Sleeping(u64),
    Done,
}

use crate::program::SimMonitor;

#[derive(Clone, Copy, Debug)]
enum BodyRef {
    Thread(ThreadSpecId),
    Handler(HandlerId),
    Method(ServiceId, u32),
}

#[derive(Clone, Debug)]
enum EntityKind {
    Thread,
    Looper {
        looper: LooperId,
    },
    Binder {
        service: ServiceId,
        current: Option<usize>,
    },
}

#[derive(Clone, Debug)]
struct Entity {
    kind: EntityKind,
    state: EntState,
    frame: Option<(BodyRef, usize)>,
    task: Option<TaskId>,
    last_forked: Option<usize>,
}

#[derive(Clone, Copy, Debug)]
struct QueueEntry {
    when_us: u64,
    ev: usize,
}

#[derive(Clone, Debug)]
struct EventInst {
    handler: HandlerId,
    task: Option<TaskId>,
}

#[derive(Clone, Debug, Default)]
struct MonState {
    owner: Option<usize>,
    depth: u32,
    gens: Vec<u32>,
    acq_count: u32,
    notify_count: u32,
    waiters: Vec<usize>,
}

#[derive(Clone, Debug)]
struct TxnState {
    method: u32,
    caller: Option<usize>,
    done: bool,
    trace_txn: Option<TxnId>,
}

struct Simulator<'p> {
    program: &'p Program,
    config: &'p SimConfig,
    rng: SmallRng,
    // Controlled-scheduler state.
    script: Option<&'p Schedule>,
    script_pos: usize,
    directed: Option<&'p DirectedSpec>,
    recorded: Option<Vec<Choice>>,
    done_counts: HashMap<String, u32>,
    now_us: u64,
    steps: u64,
    entities: Vec<Entity>,
    events: Vec<EventInst>,
    queues: Vec<Vec<QueueEntry>>, // per looper, sorted by when_us (stable)
    heap: Vec<Value>,
    monitors: Vec<MonState>,
    counters: Vec<u32>,
    txns: Vec<TxnState>,
    svc_pending: Vec<VecDeque<usize>>,
    next_obj: u32,
    gesture_cursor: usize,
    npes: Vec<NpeInfo>,
    frame_npe: Vec<bool>,
    wait_saved: HashMap<usize, u32>,
    events_processed: u64,
    sink: u64,
    // Recording state.
    rec_enabled: bool,
    builder: Option<TraceBuilder>,
    trace_queues: Vec<QueueId>,
    trace_procs: Vec<ProcessId>,
    trace_listeners: Vec<Option<ListenerId>>,
    logger_weight: u32,
}

impl<'p> Simulator<'p> {
    fn new(program: &'p Program, config: &'p SimConfig) -> Self {
        let rec_enabled = config.instrument.enabled;
        let mut builder = rec_enabled.then(|| TraceBuilder::new(program.name.clone()));
        if let Some(b) = builder.as_mut() {
            b.set_seed(config.seed);
        }

        let mut trace_procs = Vec::new();
        let mut trace_queues = Vec::new();
        let mut trace_listeners = Vec::new();
        if let Some(b) = builder.as_mut() {
            for _ in 0..program.process_count {
                trace_procs.push(b.add_process());
            }
            for &proc in &program.loopers {
                trace_queues.push(b.add_queue(trace_procs[proc.0 as usize]));
            }
            let allowed = config.instrument.listener_packages.as_ref();
            for pkg in &program.listeners {
                let instrumented = allowed.map_or(true, |pkgs| pkgs.iter().any(|p| p == pkg));
                trace_listeners.push(instrumented.then(|| b.add_listener(pkg)));
            }
        }

        let mut next_obj = 0u32;
        let heap: Vec<Value> = program
            .vars
            .iter()
            .map(|init| match init {
                VarInit::PtrNull => Value::Ptr(None),
                VarInit::PtrAlloc => {
                    let o = ObjId::new(next_obj);
                    next_obj += 1;
                    Value::Ptr(Some(o))
                }
                VarInit::Scalar(v) => Value::Scalar(*v),
            })
            .collect();

        let mut entities = Vec::new();
        // Loopers first (stable, index == looper id is NOT guaranteed;
        // track mapping separately below via kind matching).
        for (li, _) in program.loopers.iter().enumerate() {
            entities.push(Entity {
                kind: EntityKind::Looper {
                    looper: LooperId(li as u32),
                },
                state: EntState::Idle,
                frame: None,
                task: None,
                last_forked: None,
            });
        }
        // Auto-start threads.
        for (ti, spec) in program.threads.iter().enumerate() {
            if spec.auto_start {
                let task = builder.as_mut().map(|b| {
                    let t = b.add_thread(trace_procs[spec.proc.0 as usize], &spec.name);
                    // §5.3: the calling-context stack is traced; each
                    // script body is one method frame.
                    b.method_enter(
                        t,
                        Program::method_pc(spec.method, 0, 0).method_base(),
                        &spec.name,
                    );
                    t
                });
                entities.push(Entity {
                    kind: EntityKind::Thread,
                    state: EntState::Ready,
                    frame: Some((BodyRef::Thread(ThreadSpecId(ti as u32)), 0)),
                    task,
                    last_forked: None,
                });
            }
        }
        // One binder thread per service.
        for (si, svc) in program.services.iter().enumerate() {
            let task = builder.as_mut().map(|b| {
                b.add_thread(
                    trace_procs[svc.proc.0 as usize],
                    &format!("binder:{}", svc.name),
                )
            });
            entities.push(Entity {
                kind: EntityKind::Binder {
                    service: ServiceId(si as u32),
                    current: None,
                },
                state: EntState::Idle,
                frame: None,
                task,
                last_forked: None,
            });
        }

        let (script, directed) = match &config.policy {
            SchedulePolicy::Random => (None, None),
            SchedulePolicy::Script(s) => (Some(s), None),
            SchedulePolicy::Directed(d) => (None, Some(d)),
        };
        let rng_seed = script.map_or(config.seed, |s| s.tail_seed);

        Self {
            program,
            config,
            rng: SmallRng::seed_from_u64(rng_seed),
            script,
            script_pos: 0,
            directed,
            recorded: config.record_schedule.then(Vec::new),
            done_counts: HashMap::new(),
            now_us: 0,
            steps: 0,
            entities,
            events: Vec::new(),
            queues: vec![Vec::new(); program.loopers.len()],
            heap,
            monitors: vec![MonState::default(); program.monitor_count as usize],
            counters: program.counters.clone(),
            txns: Vec::new(),
            svc_pending: vec![VecDeque::new(); program.services.len()],
            next_obj,
            gesture_cursor: 0,
            npes: Vec::new(),
            frame_npe: Vec::new(),
            wait_saved: HashMap::new(),
            events_processed: 0,
            sink: 0,
            rec_enabled,
            builder,
            trace_queues,
            trace_procs,
            trace_listeners,
            logger_weight: config.instrument.logger_weight,
        }
    }

    fn log_cost(&mut self, salt: u64) {
        if self.rec_enabled {
            self.sink = work(self.sink ^ salt, self.logger_weight);
        }
    }

    fn run(mut self) -> Result<RunOutcome, SimError> {
        loop {
            self.deliver_gestures();
            let eligible = self.collect_eligible();
            if eligible.is_empty() {
                if !self.advance_time()? {
                    break;
                }
                continue;
            }
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return Err(SimError::StepLimit {
                    steps: self.config.max_steps,
                });
            }
            let pick = eligible[self.choose(&eligible, false)?];
            self.step(pick)?;
            self.now_us += self.config.action_cost_us;
        }

        let trace = match self.builder.take() {
            Some(mut b) => {
                b.set_virtual_ms(self.now_us / 1000);
                Some(b.finish()?)
            }
            None => None,
        };
        let schedule = self.recorded.take().map(|choices| Schedule {
            choices,
            tail_seed: self.script.map_or(self.config.seed, |s| s.tail_seed),
        });
        Ok(RunOutcome {
            trace,
            npes: self.npes,
            virtual_us: self.now_us,
            steps: self.steps,
            events_processed: self.events_processed,
            sink: self.sink,
            schedule,
        })
    }

    /// Resolves one scheduling decision among the entity indices in
    /// `offered`, returning an index *into* `offered`. Consumes the
    /// script first (erroring on divergence), then falls back to the
    /// RNG, biased by defer rules when the policy is directed.
    fn choose(&mut self, offered: &[usize], at_wake: bool) -> Result<usize, SimError> {
        debug_assert!(!offered.is_empty());
        let k = match self.scripted_choice(offered, at_wake)? {
            Some(k) => k,
            None => self.free_choice(offered),
        };
        if let Some(rec) = self.recorded.as_mut() {
            let e = offered[k] as u32;
            rec.push(if at_wake {
                Choice::Wake(e)
            } else {
                Choice::Step(e)
            });
        }
        Ok(k)
    }

    fn scripted_choice(
        &mut self,
        offered: &[usize],
        at_wake: bool,
    ) -> Result<Option<usize>, SimError> {
        let Some(s) = self.script else {
            return Ok(None);
        };
        let Some(&scripted) = s.choices.get(self.script_pos) else {
            return Ok(None); // script exhausted: continue from the tail seed
        };
        let want = match (scripted, at_wake) {
            (Choice::Step(e), false) | (Choice::Wake(e), true) => e as usize,
            _ => return Err(self.divergence(scripted, at_wake, offered)),
        };
        match offered.iter().position(|&o| o == want) {
            Some(k) => {
                self.script_pos += 1;
                Ok(Some(k))
            }
            None => Err(self.divergence(scripted, at_wake, offered)),
        }
    }

    fn divergence(&self, scripted: Choice, at_wake: bool, offered: &[usize]) -> SimError {
        SimError::ReplayDivergence {
            choice: self.script_pos,
            step: self.steps,
            scripted,
            at_wake,
            offered: offered.iter().map(|&e| e as u32).collect(),
        }
    }

    fn free_choice(&mut self, offered: &[usize]) -> usize {
        if self.directed.is_some() {
            let preferred: Vec<usize> = (0..offered.len())
                .filter(|&k| !self.is_deferred(offered[k]))
                .collect();
            // Deferral is a bias, never a block: with every candidate
            // deferred, pick among them all anyway.
            if !preferred.is_empty() && preferred.len() < offered.len() {
                return preferred[self.rng.gen_range(0..preferred.len())];
            }
        }
        self.rng.gen_range(0..offered.len())
    }

    /// The body name the entity would run next: the running frame's
    /// body, an idle looper's queue-head handler, or an idle Binder
    /// thread's pending transaction method.
    fn pending_body_name(&self, entity: usize) -> Option<&'p str> {
        let e = &self.entities[entity];
        if let Some((body, _)) = e.frame {
            return Some(self.body_actions(body).2);
        }
        match &e.kind {
            EntityKind::Looper { looper } => {
                let head = self.queues[looper.0 as usize].first()?;
                let h = self.events[head.ev].handler;
                Some(&self.program.handlers[h.0 as usize].name)
            }
            EntityKind::Binder { service, .. } => {
                let txn = *self.svc_pending[service.0 as usize].front()?;
                let m = self.txns[txn].method;
                Some(&self.program.services[service.0 as usize].methods[m as usize].name)
            }
            EntityKind::Thread => None,
        }
    }

    fn is_deferred(&self, entity: usize) -> bool {
        let Some(spec) = self.directed else {
            return false;
        };
        let body_name = self.pending_body_name(entity);
        let alias = match &self.entities[entity].kind {
            EntityKind::Binder { service, .. } => Some(format!(
                "binder:{}",
                self.program.services[service.0 as usize].name
            )),
            _ => None,
        };
        spec.rules.iter().any(|r| {
            self.done_count(&r.until) < r.until_count
                && r.defer
                    .iter()
                    .any(|d| body_name == Some(d.as_str()) || alias.as_deref() == Some(d.as_str()))
        })
    }

    fn done_count(&self, name: &str) -> u32 {
        self.done_counts.get(name).copied().unwrap_or(0)
    }

    fn deliver_gestures(&mut self) {
        while let Some(g) = self.program.gestures.get(self.gesture_cursor) {
            let at_us = g.at_ms * 1000;
            if at_us > self.now_us {
                break;
            }
            self.gesture_cursor += 1;
            let name = self.program.handlers[g.handler.0 as usize].name.clone();
            let queue = self.trace_queues.get(g.looper.0 as usize).copied();
            let task = match (self.builder.as_mut(), queue) {
                (Some(b), Some(q)) => Some(b.external(q, &name)),
                _ => None,
            };
            self.log_cost(g.handler.0 as u64);
            let ev = self.events.len();
            self.events.push(EventInst {
                handler: g.handler,
                task,
            });
            self.enqueue(g.looper, ev, at_us, false);
        }
    }

    /// Inserts an event into a queue: sorted by ready time (stable) for
    /// normal posts, at the very head for front posts — Android's
    /// `MessageQueue` discipline.
    fn enqueue(&mut self, looper: LooperId, ev: usize, when_us: u64, front: bool) {
        let q = &mut self.queues[looper.0 as usize];
        if front {
            q.insert(0, QueueEntry { when_us: 0, ev });
        } else {
            let pos = q.partition_point(|e| e.when_us <= when_us);
            q.insert(pos, QueueEntry { when_us, ev });
        }
    }

    fn collect_eligible(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, e) in self.entities.iter().enumerate() {
            let ok = match &e.state {
                EntState::Ready => true,
                EntState::Done => false,
                EntState::Idle => match &e.kind {
                    EntityKind::Looper { looper } => self.queues[looper.0 as usize]
                        .first()
                        .is_some_and(|h| h.when_us <= self.now_us),
                    EntityKind::Binder { service, .. } => {
                        !self.svc_pending[service.0 as usize].is_empty()
                    }
                    EntityKind::Thread => false,
                },
                EntState::BlockedLock(m) => self.monitor_free_for(*m, i),
                EntState::WaitReacquire { mon, .. } => self.monitor_free_for(*mon, i),
                EntState::BlockedWait(_) => false,
                EntState::BlockedJoin(t) => self.entities[*t].state == EntState::Done,
                EntState::BlockedRpc(txn) => self.txns[*txn].done,
                EntState::Sleeping(until) => *until <= self.now_us,
            };
            if ok {
                out.push(i);
            }
        }
        out
    }

    fn monitor_free_for(&self, m: SimMonitor, entity: usize) -> bool {
        let mon = &self.monitors[m.0 as usize];
        mon.owner.is_none() || mon.owner == Some(entity)
    }

    /// Advances virtual time to the next wake-up. Returns false when
    /// the run is complete.
    fn advance_time(&mut self) -> Result<bool, SimError> {
        let mut next: Option<u64> = None;
        let bump = |t: u64, next: &mut Option<u64>| {
            *next = Some(next.map_or(t, |n| n.min(t)));
        };
        if let Some(g) = self.program.gestures.get(self.gesture_cursor) {
            bump(g.at_ms * 1000, &mut next);
        }
        for (li, q) in self.queues.iter().enumerate() {
            // Only meaningful if that looper is idle (a blocked looper
            // cannot pop anyway, but its head may still bound the wake).
            let _ = li;
            if let Some(h) = q.first() {
                bump(h.when_us, &mut next);
            }
        }
        let mut blocked = 0usize;
        for e in &self.entities {
            match e.state {
                EntState::Sleeping(until) => bump(until, &mut next),
                EntState::BlockedLock(_)
                | EntState::BlockedWait(_)
                | EntState::WaitReacquire { .. }
                | EntState::BlockedJoin(_)
                | EntState::BlockedRpc(_)
                | EntState::Ready => blocked += 1,
                _ => {}
            }
        }
        match next {
            Some(t) if t > self.now_us => {
                self.now_us = t;
                Ok(true)
            }
            Some(_) => {
                // Work is ready now but nothing was eligible: that means
                // every candidate is blocked on something non-temporal.
                Err(SimError::Deadlock {
                    blocked,
                    at_us: self.now_us,
                })
            }
            None => {
                if blocked > 0 {
                    Err(SimError::Deadlock {
                        blocked,
                        at_us: self.now_us,
                    })
                } else {
                    Ok(false)
                }
            }
        }
    }

    fn body_actions(&self, body: BodyRef) -> (&'p [Action], u32, &'p str) {
        match body {
            BodyRef::Thread(t) => {
                let s = &self.program.threads[t.0 as usize];
                (&s.body.actions, s.method, &s.name)
            }
            BodyRef::Handler(h) => {
                let s = &self.program.handlers[h.0 as usize];
                (&s.body.actions, s.method, &s.name)
            }
            BodyRef::Method(svc, m) => {
                let s = &self.program.services[svc.0 as usize].methods[m as usize];
                (&s.body.actions, s.method, &s.name)
            }
        }
    }

    fn step(&mut self, i: usize) -> Result<(), SimError> {
        // Resolve waiting states first.
        match self.entities[i].state.clone() {
            EntState::Idle => return self.step_idle(i),
            EntState::BlockedLock(m) => {
                self.acquire(i, m, true);
                self.entities[i].state = EntState::Ready;
                self.advance_ip(i);
                return Ok(());
            }
            EntState::WaitReacquire { mon, gen, depth } => {
                // Reacquire with fresh acquisition gens (the release
                // inside `wait` ended the old ones), then log the wait
                // itself with the waking notification's generation.
                let ms = &mut self.monitors[mon.0 as usize];
                ms.owner = Some(i);
                ms.depth = depth;
                let mut new_gens = Vec::with_capacity(depth as usize);
                for _ in 0..depth {
                    ms.acq_count += 1;
                    new_gens.push(ms.acq_count);
                }
                ms.gens = new_gens.clone();
                let task = self.entities[i].task;
                if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                    for &g in &new_gens {
                        b.lock(t, MonitorId::new(mon.0), g);
                    }
                    b.wait(t, MonitorId::new(mon.0), gen);
                }
                self.log_cost(u64::from(mon.0));
                self.entities[i].state = EntState::Ready;
                self.advance_ip(i);
                return Ok(());
            }
            EntState::BlockedJoin(child) => {
                let task = self.entities[i].task;
                let child_task = self.entities[child].task;
                if let (Some(b), Some(t), Some(ct)) = (self.builder.as_mut(), task, child_task) {
                    b.join(t, ct);
                }
                self.log_cost(child as u64);
                self.entities[i].state = EntState::Ready;
                self.advance_ip(i);
                return Ok(());
            }
            EntState::BlockedRpc(txn) => {
                let task = self.entities[i].task;
                let ttxn = self.txns[txn].trace_txn;
                if let (Some(b), Some(t), Some(x)) = (self.builder.as_mut(), task, ttxn) {
                    b.rpc_receive(t, x);
                }
                self.log_cost(txn as u64);
                self.entities[i].state = EntState::Ready;
                self.advance_ip(i);
                return Ok(());
            }
            EntState::Sleeping(_) => {
                self.entities[i].state = EntState::Ready;
                self.advance_ip(i);
                return Ok(());
            }
            EntState::Ready => {}
            EntState::Done | EntState::BlockedWait(_) => unreachable!("not eligible"),
        }

        let Some((body_ref, ip)) = self.entities[i].frame else {
            unreachable!("ready entity has a frame")
        };
        let (actions, method, _name) = self.body_actions(body_ref);
        if ip >= actions.len() {
            return self.finish_frame(i);
        }
        let action = actions[ip].clone();
        self.execute(i, &action, method, ip)
    }

    fn step_idle(&mut self, i: usize) -> Result<(), SimError> {
        match self.entities[i].kind.clone() {
            EntityKind::Looper { looper } => {
                let entry = self.queues[looper.0 as usize].remove(0);
                let ev = &self.events[entry.ev];
                let handler = ev.handler;
                let task = ev.task;
                let spec = &self.program.handlers[handler.0 as usize];
                let (mname, mbase) = (
                    spec.name.clone(),
                    Program::method_pc(spec.method, 0, 0).method_base(),
                );
                if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                    b.process_event(t);
                    b.method_enter(t, mbase, &mname);
                }
                self.log_cost(entry.ev as u64);
                self.events_processed += 1;
                self.entities[i].state = EntState::Ready;
                self.entities[i].frame = Some((BodyRef::Handler(handler), 0));
                self.entities[i].task = task;
                Ok(())
            }
            EntityKind::Binder { service, .. } => {
                let txn = self.svc_pending[service.0 as usize]
                    .pop_front()
                    .expect("eligible binder has pending txn");
                let method = self.txns[txn].method;
                let task = self.entities[i].task;
                let ttxn = self.txns[txn].trace_txn;
                let mspec = &self.program.services[service.0 as usize].methods[method as usize];
                let (mname, mbase) = (
                    mspec.name.clone(),
                    Program::method_pc(mspec.method, 0, 0).method_base(),
                );
                if let (Some(b), Some(t), Some(x)) = (self.builder.as_mut(), task, ttxn) {
                    b.rpc_handle(t, x);
                    b.method_enter(t, mbase, &mname);
                }
                self.log_cost(txn as u64);
                self.entities[i].kind = EntityKind::Binder {
                    service,
                    current: Some(txn),
                };
                self.entities[i].state = EntState::Ready;
                self.entities[i].frame = Some((BodyRef::Method(service, method), 0));
                Ok(())
            }
            EntityKind::Thread => unreachable!("idle threads are not eligible"),
        }
    }

    fn finish_frame(&mut self, i: usize) -> Result<(), SimError> {
        // Close the §5.3 method frame; an uncaught NPE inside the frame
        // is recorded as an exceptional exit.
        if let Some((body_ref, _)) = self.entities[i].frame {
            if self.directed.is_some() {
                // Defer rules release on body completion; Binder
                // methods also count under their service alias.
                let name = self.body_actions(body_ref).2.to_owned();
                *self.done_counts.entry(name).or_insert(0) += 1;
                if let BodyRef::Method(svc, _) = body_ref {
                    let alias = format!("binder:{}", self.program.services[svc.0 as usize].name);
                    *self.done_counts.entry(alias).or_insert(0) += 1;
                }
            }
            let (_, method, _) = self.body_actions(body_ref);
            let base = Program::method_pc(method, 0, 0).method_base();
            let exceptional = self.frame_npe.get(i).copied().unwrap_or(false);
            if let Some(flag) = self.frame_npe.get_mut(i) {
                *flag = false;
            }
            let task = self.entities[i].task;
            if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                b.method_exit(t, base, exceptional);
            }
            self.log_cost(method as u64 ^ 0x1234);
        }
        match self.entities[i].kind.clone() {
            EntityKind::Thread => {
                self.entities[i].state = EntState::Done;
                self.entities[i].frame = None;
            }
            EntityKind::Looper { .. } => {
                self.entities[i].state = EntState::Idle;
                self.entities[i].frame = None;
                self.entities[i].task = None;
            }
            EntityKind::Binder { service, current } => {
                if let Some(txn) = current {
                    if self.txns[txn].caller.is_some() {
                        let task = self.entities[i].task;
                        let ttxn = self.txns[txn].trace_txn;
                        if let (Some(b), Some(t), Some(x)) = (self.builder.as_mut(), task, ttxn) {
                            b.rpc_reply(t, x);
                        }
                        self.log_cost(txn as u64);
                    }
                    self.txns[txn].done = true;
                }
                self.entities[i].kind = EntityKind::Binder {
                    service,
                    current: None,
                };
                self.entities[i].state = EntState::Idle;
                self.entities[i].frame = None;
            }
        }
        Ok(())
    }

    fn advance_ip(&mut self, i: usize) {
        if let Some((_, ip)) = &mut self.entities[i].frame {
            *ip += 1;
        }
    }

    fn task_of(&self, i: usize) -> Option<TaskId> {
        self.entities[i].task
    }

    fn read_ptr(
        &mut self,
        i: usize,
        var: SimVar,
        method: u32,
        ip: usize,
        sub: u32,
    ) -> Option<ObjId> {
        let Value::Ptr(v) = self.heap[var.0 as usize] else {
            panic!("variable {var:?} is not a pointer");
        };
        let task = self.task_of(i);
        if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
            b.obj_read(t, VarId::new(var.0), v, Program::method_pc(method, ip, sub));
        }
        self.log_cost(u64::from(var.0));
        v
    }

    fn write_ptr(
        &mut self,
        i: usize,
        var: SimVar,
        value: Option<ObjId>,
        method: u32,
        ip: usize,
        sub: u32,
    ) {
        self.heap[var.0 as usize] = Value::Ptr(value);
        let task = self.task_of(i);
        if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
            b.obj_write(
                t,
                VarId::new(var.0),
                value,
                Program::method_pc(method, ip, sub),
            );
        }
        self.log_cost(u64::from(var.0) ^ 0xff);
    }

    fn emit_deref(
        &mut self,
        i: usize,
        obj: ObjId,
        kind: cafa_trace::DerefKind,
        method: u32,
        ip: usize,
        sub: u32,
    ) {
        let task = self.task_of(i);
        if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
            b.deref(t, obj, Program::method_pc(method, ip, sub), kind);
        }
        self.log_cost(u64::from(obj.as_u32()));
    }

    fn record_npe(&mut self, i: usize, var: SimVar, caught: bool) {
        let context = match self.entities[i].frame {
            Some((body, _)) => self.body_actions(body).2.to_owned(),
            None => "<unknown>".to_owned(),
        };
        self.npes.push(NpeInfo {
            context,
            var: VarId::new(var.0),
            caught,
            at_us: self.now_us,
        });
        if !caught {
            if self.frame_npe.len() <= i {
                self.frame_npe.resize(i + 1, false);
            }
            self.frame_npe[i] = true;
        }
    }

    fn acquire(&mut self, i: usize, m: SimMonitor, emit: bool) {
        let ms = &mut self.monitors[m.0 as usize];
        debug_assert!(ms.owner.is_none() || ms.owner == Some(i));
        ms.owner = Some(i);
        ms.depth += 1;
        ms.acq_count += 1;
        let gen = ms.acq_count;
        ms.gens.push(gen);
        if emit {
            let task = self.task_of(i);
            if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                b.lock(t, MonitorId::new(m.0), gen);
            }
            self.log_cost(u64::from(m.0));
        }
    }

    fn execute(
        &mut self,
        i: usize,
        action: &Action,
        method: u32,
        ip: usize,
    ) -> Result<(), SimError> {
        use Action::*;
        match action {
            ReadScalar(var) => {
                let task = self.task_of(i);
                if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                    b.read(t, VarId::new(var.0));
                }
                self.log_cost(u64::from(var.0));
                self.advance_ip(i);
            }
            WriteScalar(var, value) => {
                self.heap[var.0 as usize] = Value::Scalar(*value);
                let task = self.task_of(i);
                if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                    b.write(t, VarId::new(var.0));
                }
                self.log_cost(u64::from(var.0));
                self.advance_ip(i);
            }
            AllocPtr(var) => {
                let o = ObjId::new(self.next_obj);
                self.next_obj += 1;
                self.write_ptr(i, *var, Some(o), method, ip, 0);
                self.advance_ip(i);
            }
            FreePtr(var) => {
                self.write_ptr(i, *var, None, method, ip, 0);
                self.advance_ip(i);
            }
            CopyPtr { from, to } => {
                let v = self.read_ptr(i, *from, method, ip, 0);
                self.write_ptr(i, *to, v, method, ip, 1);
                self.advance_ip(i);
            }
            UsePtr {
                var,
                kind,
                catch_npe,
            } => {
                match self.read_ptr(i, *var, method, ip, 0) {
                    Some(o) => self.emit_deref(i, o, *kind, method, ip, 1),
                    None => self.record_npe(i, *var, *catch_npe),
                }
                self.advance_ip(i);
            }
            GuardedUse { var, kind, style } => {
                // read for the test @sub0; branch @sub1; read for the
                // use @sub2 (IfEqz) or @sub4 past the target (IfNez);
                // deref after the use-read.
                let v = self.read_ptr(i, *var, method, ip, 0);
                if let Some(o) = v {
                    let task = self.task_of(i);
                    let (bk, pc_sub, target_sub, use_sub) = match style {
                        GuardStyle::IfEqz => (BranchKind::IfEqz, 1, 5, 2),
                        GuardStyle::IfNez => (BranchKind::IfNez, 1, 3, 4),
                        GuardStyle::IfEq => (BranchKind::IfEq, 1, 3, 4),
                    };
                    if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                        b.guard(
                            t,
                            bk,
                            Program::method_pc(method, ip, pc_sub),
                            Program::method_pc(method, ip, target_sub),
                            o,
                        );
                    }
                    self.log_cost(u64::from(o.as_u32()) ^ 0xaa);
                    let v2 = self.read_ptr(i, *var, method, ip, use_sub);
                    match v2 {
                        Some(o2) => self.emit_deref(i, o2, *kind, method, ip, use_sub + 1),
                        // The guard read saw non-null but a truly
                        // concurrent free (thread) nulled it in between:
                        // the unsafe window the heuristic cannot close.
                        None => self.record_npe(i, *var, false),
                    }
                }
                self.advance_ip(i);
            }
            BoolGuardedUse { flag, var, kind } => {
                let Value::Scalar(fv) = self.heap[flag.0 as usize] else {
                    panic!("flag {flag:?} is not a scalar");
                };
                let task = self.task_of(i);
                if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                    b.read(t, VarId::new(flag.0));
                }
                self.log_cost(u64::from(flag.0));
                if fv != 0 {
                    match self.read_ptr(i, *var, method, ip, 2) {
                        Some(o) => self.emit_deref(i, o, *kind, method, ip, 3),
                        None => self.record_npe(i, *var, false),
                    }
                }
                self.advance_ip(i);
            }
            AliasedUse {
                first,
                second,
                kind,
            } => {
                let v1 = self.read_ptr(i, *first, method, ip, 0);
                let _v2 = self.read_ptr(i, *second, method, ip, 1);
                match v1 {
                    Some(o) => self.emit_deref(i, o, *kind, method, ip, 2),
                    None => self.record_npe(i, *first, false),
                }
                self.advance_ip(i);
            }
            Lock(m) => {
                if self.monitor_free_for(*m, i) {
                    self.acquire(i, *m, true);
                    self.advance_ip(i);
                } else {
                    self.entities[i].state = EntState::BlockedLock(*m);
                }
            }
            Unlock(m) => {
                let ms = &mut self.monitors[m.0 as usize];
                if ms.owner != Some(i) || ms.depth == 0 {
                    return Err(SimError::IllegalMonitorState {
                        what: format!("unlock of {m:?} by non-owner"),
                    });
                }
                ms.depth -= 1;
                let gen = ms.gens.pop().expect("gen stack tracks depth");
                if ms.depth == 0 {
                    ms.owner = None;
                }
                let task = self.task_of(i);
                if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                    b.unlock(t, MonitorId::new(m.0), gen);
                }
                self.log_cost(u64::from(m.0) ^ 0x55);
                self.advance_ip(i);
            }
            Wait(m) => {
                let ms = &mut self.monitors[m.0 as usize];
                if ms.owner != Some(i) {
                    return Err(SimError::IllegalMonitorState {
                        what: format!("wait on {m:?} without ownership"),
                    });
                }
                ms.waiters.push(i);
                let depth = ms.depth;
                let gens = std::mem::take(&mut ms.gens);
                ms.owner = None;
                ms.depth = 0;
                // `wait` releases the monitor: emit the unlocks so the
                // runtime lock-acquisition order stays reconstructible
                // (a FastTrack-style lock_hb over the gens would
                // otherwise see the waiter holding the monitor across
                // the notifier's critical section — a causality cycle).
                let task = self.task_of(i);
                if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                    for &gen in gens.iter().rev() {
                        b.unlock(t, MonitorId::new(m.0), gen);
                    }
                }
                self.log_cost(u64::from(m.0) ^ 0x88);
                self.entities[i].state = EntState::BlockedWait(*m);
                // The saved depth tells the reacquire how many times to
                // re-lock; fresh gens are assigned then.
                self.wait_saved.insert(i, depth);
            }
            Notify(m) | NotifyAll(m) => {
                let all = matches!(action, NotifyAll(_));
                let ms = &mut self.monitors[m.0 as usize];
                if ms.owner != Some(i) {
                    return Err(SimError::IllegalMonitorState {
                        what: format!("notify on {m:?} without ownership"),
                    });
                }
                ms.notify_count += 1;
                let gen = ms.notify_count;
                let task = self.task_of(i);
                if let (Some(b), Some(t)) = (self.builder.as_mut(), task) {
                    b.notify(t, MonitorId::new(m.0), gen);
                }
                self.log_cost(u64::from(m.0) ^ 0x77);
                let woken: Vec<usize> = if all {
                    std::mem::take(&mut self.monitors[m.0 as usize].waiters)
                } else {
                    let waiters = self.monitors[m.0 as usize].waiters.clone();
                    if waiters.is_empty() {
                        Vec::new()
                    } else {
                        let k = self.choose(&waiters, true)?;
                        self.monitors[m.0 as usize].waiters.swap_remove(k);
                        vec![waiters[k]]
                    }
                };
                for w in woken {
                    let depth = self.wait_saved.remove(&w).expect("waiter saved its depth");
                    self.entities[w].state = EntState::WaitReacquire {
                        mon: *m,
                        gen,
                        depth,
                    };
                }
                self.advance_ip(i);
            }
            Fork(spec_id) => {
                let spec = &self.program.threads[spec_id.0 as usize];
                let parent_task = self.task_of(i);
                let proc = self.trace_procs.get(spec.proc.0 as usize).copied();
                let name = spec.name.clone();
                let mbase = Program::method_pc(spec.method, 0, 0).method_base();
                let task = match (self.builder.as_mut(), parent_task) {
                    (Some(b), Some(pt)) => {
                        let t = b.fork(pt, proc.expect("instrumented"), &name);
                        b.method_enter(t, mbase, &name);
                        Some(t)
                    }
                    (Some(b), None) => {
                        let t = b.add_thread(proc.expect("instrumented"), &name);
                        b.method_enter(t, mbase, &name);
                        Some(t)
                    }
                    _ => None,
                };
                self.log_cost(u64::from(spec_id.0));
                let child = self.entities.len();
                self.entities.push(Entity {
                    kind: EntityKind::Thread,
                    state: EntState::Ready,
                    frame: Some((BodyRef::Thread(*spec_id), 0)),
                    task,
                    last_forked: None,
                });
                self.entities[i].last_forked = Some(child);
                self.advance_ip(i);
            }
            JoinLast => {
                let Some(child) = self.entities[i].last_forked else {
                    return Err(SimError::JoinWithoutFork);
                };
                if self.entities[child].state == EntState::Done {
                    let task = self.task_of(i);
                    let child_task = self.entities[child].task;
                    if let (Some(b), Some(t), Some(ct)) = (self.builder.as_mut(), task, child_task)
                    {
                        b.join(t, ct);
                    }
                    self.log_cost(child as u64);
                    self.advance_ip(i);
                } else {
                    self.entities[i].state = EntState::BlockedJoin(child);
                }
            }
            Post {
                looper,
                handler,
                delay_ms,
            } => {
                self.do_post(i, *looper, *handler, *delay_ms, false);
                self.advance_ip(i);
            }
            PostFront { looper, handler } => {
                self.do_post(i, *looper, *handler, 0, true);
                self.advance_ip(i);
            }
            PostChain {
                looper,
                handler,
                delay_ms,
                budget,
            } => {
                if self.counters[budget.0 as usize] > 0 {
                    self.counters[budget.0 as usize] -= 1;
                    self.do_post(i, *looper, *handler, *delay_ms, false);
                }
                self.advance_ip(i);
            }
            Register(l) => {
                let task = self.task_of(i);
                let tl = self.trace_listeners.get(l.0 as usize).copied().flatten();
                if let (Some(b), Some(t), Some(lid)) = (self.builder.as_mut(), task, tl) {
                    b.register(t, lid);
                    self.log_cost(u64::from(l.0));
                }
                self.advance_ip(i);
            }
            Perform(l) => {
                let task = self.task_of(i);
                let tl = self.trace_listeners.get(l.0 as usize).copied().flatten();
                if let (Some(b), Some(t), Some(lid)) = (self.builder.as_mut(), task, tl) {
                    b.perform(t, lid);
                    self.log_cost(u64::from(l.0) ^ 0x11);
                }
                self.advance_ip(i);
            }
            Call { service, method: m } => {
                let txn = self.new_txn(i, *service, m.0, true);
                self.entities[i].state = EntState::BlockedRpc(txn);
            }
            CallAsync { service, method: m } => {
                let _ = self.new_txn(i, *service, m.0, false);
                self.advance_ip(i);
            }
            Compute(units) => {
                self.sink = work(self.sink, *units);
                self.now_us += u64::from(*units);
                self.advance_ip(i);
            }
            Sleep(ms) => {
                self.entities[i].state = EntState::Sleeping(self.now_us + ms * 1000);
            }
        }
        Ok(())
    }

    fn new_txn(&mut self, caller: usize, service: ServiceId, method: u32, sync: bool) -> usize {
        let task = self.task_of(caller);
        let trace_txn = match (self.builder.as_mut(), task) {
            (Some(b), Some(t)) => {
                let (x, _) = b.rpc_call(t);
                Some(x)
            }
            _ => None,
        };
        self.log_cost(method as u64 ^ 0x33);
        let txn = self.txns.len();
        self.txns.push(TxnState {
            method,
            caller: sync.then_some(caller),
            done: false,
            trace_txn,
        });
        self.svc_pending[service.0 as usize].push_back(txn);
        txn
    }

    fn do_post(
        &mut self,
        i: usize,
        looper: LooperId,
        handler: HandlerId,
        delay_ms: u64,
        front: bool,
    ) {
        let name = self.program.handlers[handler.0 as usize].name.clone();
        let from_task = self.task_of(i);
        let queue = self.trace_queues.get(looper.0 as usize).copied();
        let task = match (self.builder.as_mut(), from_task) {
            (Some(b), Some(ft)) => {
                let q = queue.expect("instrumented loopers have trace queues");
                Some(if front {
                    b.post_front(ft, q, &name)
                } else {
                    b.post(ft, q, &name, delay_ms)
                })
            }
            (Some(_), None) => {
                unreachable!("posting entities always have a task while instrumented")
            }
            _ => None,
        };
        self.log_cost(u64::from(handler.0) ^ 0x99);
        let ev = self.events.len();
        self.events.push(EventInst { handler, task });
        let when = self.now_us + delay_ms * 1000;
        self.enqueue(looper, ev, when, front);
    }
}
