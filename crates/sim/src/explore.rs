//! Schedule-space exploration.
//!
//! A race is a property of the *set* of legal schedules, not of one
//! run. This module runs a program under many seeds and summarizes how
//! the schedule space behaves: how many distinct event processing
//! orders appear, and how many schedules crash. The test suites use it
//! to demonstrate that the simulator really explores interleavings and
//! that derived happens-before orderings constrain every one of them.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use crate::error::SimError;
use crate::program::Program;
use crate::runtime::{run, SimConfig};

/// Summary of a multi-schedule exploration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Exploration {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct per-queue event processing orders observed.
    pub distinct_orders: usize,
    /// Schedules with at least one uncaught NPE.
    pub crashed: usize,
    /// Total events processed (identical across schedules for
    /// well-formed programs).
    pub events_per_run: u64,
}

/// Runs `program` under seeds `0..schedules` and summarizes the
/// schedule space.
///
/// # Errors
///
/// Propagates the first simulator failure.
pub fn explore(program: &Program, schedules: usize) -> Result<Exploration, SimError> {
    let mut orders: HashSet<u64> = HashSet::new();
    let mut summary = Exploration {
        schedules,
        ..Exploration::default()
    };
    for seed in 0..schedules as u64 {
        let outcome = run(program, &SimConfig::with_seed(seed))?;
        if outcome.crashed() {
            summary.crashed += 1;
        }
        summary.events_per_run = outcome.events_processed;
        let trace = outcome.trace.expect("explore runs instrumented");
        let mut hasher = DefaultHasher::new();
        for (_, q) in trace.queues() {
            // Hash by handler name so the fingerprint is stable across
            // runs (task ids can differ when creation order shifts).
            for &e in &q.events {
                trace.task_name(e).hash(&mut hasher);
            }
            u64::MAX.hash(&mut hasher); // queue separator
        }
        orders.insert(hasher.finish());
    }
    summary.distinct_orders = orders.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Body, ProgramBuilder};

    #[test]
    fn sequential_program_has_one_order() {
        let mut p = ProgramBuilder::new("seq");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.scalar_var(0);
        let a = p.handler("A", Body::new().read(v));
        let b = p.handler("B", Body::new().read(v));
        // One thread posts both with equal delays: FIFO, always.
        p.thread(pr, "T", Body::new().post(l, a, 0).post(l, b, 0));
        let program = p.build();
        let e = explore(&program, 16).unwrap();
        assert_eq!(e.distinct_orders, 1);
        assert_eq!(e.crashed, 0);
        assert_eq!(e.events_per_run, 2);
    }

    #[test]
    fn racing_posts_produce_multiple_orders() {
        let mut p = ProgramBuilder::new("racy");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.scalar_var(0);
        let a = p.handler("A", Body::new().read(v));
        let b = p.handler("B", Body::new().read(v));
        p.thread(pr, "T1", Body::new().post(l, a, 0));
        p.thread(pr, "T2", Body::new().post(l, b, 0));
        let program = p.build();
        let e = explore(&program, 24).unwrap();
        assert!(e.distinct_orders > 1, "both orders should appear");
        assert_eq!(e.crashed, 0);
    }

    #[test]
    fn crash_rates_are_visible() {
        let mut p = ProgramBuilder::new("uaf");
        let pr = p.process();
        let l = p.looper(pr);
        let ptr = p.ptr_var_alloc();
        let use_h = p.handler("useIt", Body::new().use_ptr(ptr));
        let free_h = p.handler("freeIt", Body::new().free(ptr));
        p.thread(pr, "T1", Body::new().post(l, use_h, 0));
        p.thread(pr, "T2", Body::new().post(l, free_h, 0));
        let program = p.build();
        let e = explore(&program, 24).unwrap();
        assert!(e.crashed > 0 && e.crashed < e.schedules);
    }
}
