//! Schedule-space exploration.
//!
//! A race is a property of the *set* of legal schedules, not of one
//! run. This module runs a program under many seeds and summarizes how
//! the schedule space behaves: how many distinct event processing
//! orders appear, and how many schedules crash. The test suites use it
//! to demonstrate that the simulator really explores interleavings and
//! that derived happens-before orderings constrain every one of them.

use std::collections::HashSet;

use crate::error::SimError;
use crate::program::Program;
use crate::runtime::{run, SimConfig};

/// FNV-1a, pinned here so schedule fingerprints are stable across Rust
/// releases (`DefaultHasher` makes no such guarantee).
#[derive(Clone, Copy, Debug)]
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET_BASIS)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Summary of a multi-schedule exploration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Exploration {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct per-queue event processing orders observed.
    pub distinct_orders: usize,
    /// Schedules with at least one uncaught NPE.
    pub crashed: usize,
    /// Total events processed (identical across schedules for
    /// well-formed programs).
    pub events_per_run: u64,
}

/// Runs `program` under seeds `0..schedules` and summarizes the
/// schedule space.
///
/// # Errors
///
/// Propagates the first simulator failure.
pub fn explore(program: &Program, schedules: usize) -> Result<Exploration, SimError> {
    explore_with(program, schedules, &SimConfig::default())
}

/// [`explore`] with an explicit base configuration; the seed field is
/// overridden per run.
///
/// # Errors
///
/// Propagates the first simulator failure, and returns
/// [`SimError::NotInstrumented`] when `base.instrument` is off (the
/// order fingerprint needs the recorded queue orders).
pub fn explore_with(
    program: &Program,
    schedules: usize,
    base: &SimConfig,
) -> Result<Exploration, SimError> {
    let mut orders: HashSet<u64> = HashSet::new();
    let mut summary = Exploration {
        schedules,
        ..Exploration::default()
    };
    for seed in 0..schedules as u64 {
        let mut config = base.clone();
        config.seed = seed;
        let outcome = run(program, &config)?;
        if outcome.crashed() {
            summary.crashed += 1;
        }
        summary.events_per_run = outcome.events_processed;
        let Some(trace) = outcome.trace else {
            return Err(SimError::NotInstrumented {
                what: "schedule-order fingerprinting",
            });
        };
        let mut hasher = Fnv64::new();
        for (_, q) in trace.queues() {
            // Hash by handler name so the fingerprint is stable across
            // runs (task ids can differ when creation order shifts).
            for &e in &q.events {
                hasher.write(trace.task_name(e).as_bytes());
                hasher.write(&[0xff]); // name separator
            }
            hasher.write(&u64::MAX.to_le_bytes()); // queue separator
        }
        orders.insert(hasher.finish());
    }
    summary.distinct_orders = orders.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Body, ProgramBuilder};

    #[test]
    fn sequential_program_has_one_order() {
        let mut p = ProgramBuilder::new("seq");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.scalar_var(0);
        let a = p.handler("A", Body::new().read(v));
        let b = p.handler("B", Body::new().read(v));
        // One thread posts both with equal delays: FIFO, always.
        p.thread(pr, "T", Body::new().post(l, a, 0).post(l, b, 0));
        let program = p.build();
        let e = explore(&program, 16).unwrap();
        assert_eq!(e.distinct_orders, 1);
        assert_eq!(e.crashed, 0);
        assert_eq!(e.events_per_run, 2);
    }

    #[test]
    fn racing_posts_produce_multiple_orders() {
        let mut p = ProgramBuilder::new("racy");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.scalar_var(0);
        let a = p.handler("A", Body::new().read(v));
        let b = p.handler("B", Body::new().read(v));
        p.thread(pr, "T1", Body::new().post(l, a, 0));
        p.thread(pr, "T2", Body::new().post(l, b, 0));
        let program = p.build();
        let e = explore(&program, 24).unwrap();
        assert!(e.distinct_orders > 1, "both orders should appear");
        assert_eq!(e.crashed, 0);
    }

    #[test]
    fn crash_rates_are_visible() {
        let mut p = ProgramBuilder::new("uaf");
        let pr = p.process();
        let l = p.looper(pr);
        let ptr = p.ptr_var_alloc();
        let use_h = p.handler("useIt", Body::new().use_ptr(ptr));
        let free_h = p.handler("freeIt", Body::new().free(ptr));
        p.thread(pr, "T1", Body::new().post(l, use_h, 0));
        p.thread(pr, "T2", Body::new().post(l, free_h, 0));
        let program = p.build();
        let e = explore(&program, 24).unwrap();
        assert!(e.crashed > 0 && e.crashed < e.schedules);
    }

    #[test]
    fn uninstrumented_exploration_is_a_typed_error() {
        let mut p = ProgramBuilder::new("dark");
        let pr = p.process();
        let l = p.looper(pr);
        let v = p.scalar_var(0);
        let a = p.handler("A", Body::new().read(v));
        p.thread(pr, "T", Body::new().post(l, a, 0));
        let program = p.build();
        let base = SimConfig {
            instrument: crate::runtime::InstrumentConfig::off(),
            ..SimConfig::default()
        };
        match explore_with(&program, 4, &base) {
            Err(SimError::NotInstrumented { what }) => {
                assert!(what.contains("fingerprint"));
            }
            other => panic!("expected NotInstrumented, got {other:?}"),
        }
    }

    #[test]
    fn fingerprints_are_pinned_fnv1a() {
        // The FNV-1a test vectors pin the hash so `distinct_orders` is
        // reproducible across Rust releases and platforms.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }
}
