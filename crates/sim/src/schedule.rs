//! Controlled scheduling: recorded schedule scripts and directed
//! (defer-rule) scheduling policies.
//!
//! The runtime has exactly two nondeterministic decision points: which
//! eligible entity runs next, and which waiter a `notify` wakes. A
//! [`Schedule`] pins both as an ordered list of [`Choice`]s; replaying
//! one reproduces the run byte-for-byte, and any mismatch between the
//! script and what the runtime can actually do surfaces as a typed
//! [`SimError::ReplayDivergence`](crate::SimError::ReplayDivergence)
//! naming the exact step. A [`DirectedSpec`] instead *biases* the two
//! decision points with declarative [`DeferRule`]s — "hold these
//! bodies back until that body has completed" — which is how
//! `cafa-replay` forces a reported free before its racing use without
//! enumerating every decision up front.

/// One recorded scheduling decision.
///
/// Entity indices refer to the runtime's internal entity table, whose
/// construction is deterministic for a given program and schedule:
/// loopers first (in declaration order), then auto-start threads, then
/// one Binder thread per service, then forked threads in fork order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Choice {
    /// Scheduler step: dispatch the entity with this index.
    Step(u32),
    /// `notify` wake: wake the waiting entity with this index.
    Wake(u32),
}

/// A schedule script: the decisions of a (possibly partial) run.
///
/// While choices remain, the runtime follows them exactly; once the
/// script is exhausted, scheduling continues randomly from
/// `tail_seed`. A full recorded script therefore replays its run
/// deterministically, and a *prefix* of it (see
/// `cafa-replay`'s minimizer) pins only the decisions that matter and
/// lets a seeded tail finish the run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The pinned decisions, in the order the runtime consumes them.
    pub choices: Vec<Choice>,
    /// Seed for scheduling decisions after the script runs out.
    pub tail_seed: u64,
}

impl Schedule {
    /// The number of pinned decisions.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True when no decision is pinned (the schedule degenerates to a
    /// plain random run seeded with `tail_seed`).
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// The first `len` decisions with the same tail seed.
    pub fn prefix(&self, len: usize) -> Schedule {
        Schedule {
            choices: self.choices[..len.min(self.choices.len())].to_vec(),
            tail_seed: self.tail_seed,
        }
    }

    /// Compact one-line form: `seed=S;s3 s1 w2 ...` (`s` = step,
    /// `w` = wake). The inverse of [`Schedule::parse`].
    pub fn to_compact(&self) -> String {
        use std::fmt::Write;
        let mut out = format!("seed={};", self.tail_seed);
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match c {
                Choice::Step(e) => write!(out, "s{e}").expect("write to string"),
                Choice::Wake(e) => write!(out, "w{e}").expect("write to string"),
            }
        }
        out
    }

    /// Parses the [`Schedule::to_compact`] form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token.
    pub fn parse(s: &str) -> Result<Schedule, String> {
        let (head, rest) = s
            .split_once(';')
            .ok_or_else(|| "missing `seed=N;` header".to_owned())?;
        let seed = head
            .strip_prefix("seed=")
            .and_then(|n| n.parse::<u64>().ok())
            .ok_or_else(|| format!("bad schedule header {head:?}"))?;
        let mut choices = Vec::new();
        for tok in rest.split_whitespace() {
            let (kind, num) = tok.split_at(1);
            let e: u32 = num
                .parse()
                .map_err(|_| format!("bad schedule token {tok:?}"))?;
            match kind {
                "s" => choices.push(Choice::Step(e)),
                "w" => choices.push(Choice::Wake(e)),
                _ => return Err(format!("bad schedule token {tok:?}")),
            }
        }
        Ok(Schedule {
            choices,
            tail_seed: seed,
        })
    }
}

/// One directed-scheduling constraint: hold every entity whose pending
/// body is named in `defer` back until the body named `until` has
/// completed `until_count` times.
///
/// Names match what the entity would run *next*: a regular thread
/// matches its thread-spec name, an idle looper matches the handler
/// name at its queue head (a mid-event looper matches the running
/// handler), and a Binder thread matches both the pending transaction's
/// method name and the alias `binder:<service>`. Names that match
/// nothing are inert. Deferral is a bias, not a block: when *every*
/// eligible entity is deferred the runtime picks among them anyway, so
/// a directed run can never deadlock where a random run would not.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeferRule {
    /// Body names to hold back.
    pub defer: Vec<String>,
    /// Body name whose completion releases the rule.
    pub until: String,
    /// Completions of `until` required before release.
    pub until_count: u32,
}

/// A set of [`DeferRule`]s biasing the scheduler toward a target
/// ordering. Random tie-breaking among non-deferred entities still
/// uses the config seed, so directed runs stay deterministic per seed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirectedSpec {
    /// The active constraints; an entity is deferred while *any*
    /// unsatisfied rule names it.
    pub rules: Vec<DeferRule>,
}

/// How the runtime resolves its scheduling decisions.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Seeded uniform-random choice (the historical behavior).
    #[default]
    Random,
    /// Follow a [`Schedule`] script exactly, erroring with
    /// [`SimError::ReplayDivergence`](crate::SimError::ReplayDivergence)
    /// on mismatch and continuing from the script's tail seed when it
    /// is exhausted.
    Script(Schedule),
    /// Random choice biased by [`DeferRule`]s.
    Directed(DirectedSpec),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trips() {
        let s = Schedule {
            choices: vec![Choice::Step(3), Choice::Wake(1), Choice::Step(0)],
            tail_seed: 42,
        };
        let text = s.to_compact();
        assert_eq!(text, "seed=42;s3 w1 s0");
        assert_eq!(Schedule::parse(&text).unwrap(), s);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn prefix_clamps() {
        let s = Schedule {
            choices: vec![Choice::Step(1), Choice::Step(2)],
            tail_seed: 7,
        };
        assert_eq!(s.prefix(1).choices, vec![Choice::Step(1)]);
        assert_eq!(s.prefix(99).choices.len(), 2);
        assert_eq!(s.prefix(0).tail_seed, 7);
        assert!(s.prefix(0).is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("s1 s2").is_err());
        assert!(Schedule::parse("seed=x;s1").is_err());
        assert!(Schedule::parse("seed=0;q9").is_err());
        assert!(Schedule::parse("seed=0;sZ").is_err());
        let empty = Schedule::parse("seed=5;").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.tail_seed, 5);
    }
}
