//! Static description of a simulated Android-like application.
//!
//! A [`Program`] is the analogue of an APK plus the services it talks
//! to: processes, loopers (event queue + draining thread), regular
//! thread scripts, event handlers, Binder services with methods,
//! listeners, shared variables, and a schedule of external user/sensor
//! gestures. Bodies are straight-line scripts of [`Action`]s — the
//! control flow a handler needs (null guards, bounded repost loops) is
//! expressed with dedicated composite actions, mirroring how the
//! paper's patterns (Figures 1, 2, 5) are all small straight-line
//! handlers.
//!
//! Code layout convention: every handler / thread script / service
//! method is a "method" occupying one 4 KiB block of the simulated
//! Dalvik address space ([`Pc::METHOD_BLOCK`]); action *k* of a body
//! owns the 8 sub-addresses `base + 0x40 + 0x20·k .. +0x20`. The
//! if-guard analysis relies on this layout (see
//! `cafa_trace::Pc::method_base`).

use cafa_trace::{DerefKind, Pc};

/// A simulated process (address space + Binder endpoint).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProcId(pub(crate) u32);

/// A looper: an event queue drained by a dedicated thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LooperId(pub(crate) u32);

impl LooperId {
    /// The raw looper index (queues are numbered in declaration order).
    pub fn index_u32(self) -> u32 {
        self.0
    }
}

/// A regular-thread script.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ThreadSpecId(pub(crate) u32);

impl ThreadSpecId {
    /// Forward reference to the `index`-th declared thread script
    /// (checked by [`Program::check`]).
    pub fn from_index(index: u32) -> Self {
        Self(index)
    }

    /// The raw declaration index.
    pub fn index_u32(self) -> u32 {
        self.0
    }
}

/// An event-handler body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HandlerId(pub(crate) u32);

impl HandlerId {
    /// Creates a forward reference to the handler that will be declared
    /// as the `index`-th [`ProgramBuilder::handler`] call. Useful when a
    /// body must post a handler declared later (or itself; see
    /// [`ProgramBuilder::next_handler_id`]). Posting an id that is never
    /// declared panics at runtime.
    pub fn from_index(index: u32) -> Self {
        Self(index)
    }

    /// The handler's declaration index.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A Binder service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ServiceId(pub(crate) u32);

impl ServiceId {
    /// The raw declaration index.
    pub fn index_u32(self) -> u32 {
        self.0
    }
}

/// A method of a Binder service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MethodId(pub(crate) u32);

impl MethodId {
    /// The raw per-service declaration index.
    pub fn index_u32(self) -> u32 {
        self.0
    }
}

/// A shared variable slot (pointer or scalar).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SimVar(pub(crate) u32);

impl SimVar {
    /// The raw slot index. Slots map one-to-one onto the trace's
    /// [`VarId`](cafa_trace::VarId)s, so workload ground truth can be
    /// keyed by variable.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A monitor usable with lock/unlock/wait/notify.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SimMonitor(pub(crate) u32);

impl SimMonitor {
    /// Forward reference to the `index`-th declared monitor (checked by
    /// [`Program::check`]).
    pub fn from_index(index: u32) -> Self {
        Self(index)
    }

    /// The raw declaration index.
    pub fn index_u32(self) -> u32 {
        self.0
    }
}

/// A registered listener identity, carrying its Android package name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SimListener(pub(crate) u32);

/// A runtime countdown counter for bounded repost loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(pub(crate) u32);

impl CounterId {
    /// The raw declaration index.
    pub fn index_u32(self) -> u32 {
        self.0
    }
}

/// One step of a body script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Read a scalar variable.
    ReadScalar(SimVar),
    /// Write `value` to a scalar variable.
    WriteScalar(SimVar, i64),
    /// Store a fresh object into a pointer variable (an allocation).
    AllocPtr(SimVar),
    /// Store null into a pointer variable (a free).
    FreePtr(SimVar),
    /// `to = from`: pointer read of `from`, pointer write of `to`.
    CopyPtr {
        /// Source pointer variable.
        from: SimVar,
        /// Destination pointer variable.
        to: SimVar,
    },
    /// Read a pointer and dereference it. A null pointer raises a
    /// null-pointer exception, recorded in the run outcome; when
    /// `catch_npe` is set the handler swallows it (the ToDoList
    /// pattern of §6.2).
    UsePtr {
        /// The pointer variable.
        var: SimVar,
        /// Field access or invocation.
        kind: DerefKind,
        /// Swallow the NPE instead of crashing.
        catch_npe: bool,
    },
    /// `if (p != null) p.f` — the if-guard pattern of Figure 5. Safe in
    /// any same-looper interleaving; emits the `if-eqz` guard record
    /// when the pointer is non-null.
    GuardedUse {
        /// The pointer variable.
        var: SimVar,
        /// Field access or invocation.
        kind: DerefKind,
        /// The branch flavor to emit (`if-eqz` fall-through, `if-nez`
        /// jump, or `if-eq` against `this`).
        style: GuardStyle,
    },
    /// `if (flag) p.f` — a boolean flag stands in for the null test.
    /// Correct when flag and pointer are updated atomically, but the
    /// if-guard heuristic cannot see it: the Type II false-positive
    /// pattern of §6.3.
    BoolGuardedUse {
        /// The scalar flag variable.
        flag: SimVar,
        /// The pointer variable.
        var: SimVar,
        /// Field access or invocation.
        kind: DerefKind,
    },
    /// Reads `first`, then `second`, then dereferences the object
    /// obtained from `first`. When both variables alias one object,
    /// the analyzer's nearest-previous-read matching attributes the
    /// dereference to `second`: the Type III false-positive pattern.
    AliasedUse {
        /// The variable actually dereferenced.
        first: SimVar,
        /// The decoy variable read in between.
        second: SimVar,
        /// Field access or invocation.
        kind: DerefKind,
    },
    /// Acquire a monitor (blocking, reentrant).
    Lock(SimMonitor),
    /// Release a monitor.
    Unlock(SimMonitor),
    /// Release the monitor and block until notified. The monitor must
    /// be held.
    Wait(SimMonitor),
    /// Wake one waiter. The monitor must be held.
    Notify(SimMonitor),
    /// Wake all waiters. The monitor must be held.
    NotifyAll(SimMonitor),
    /// Start a new thread from a registered script.
    Fork(ThreadSpecId),
    /// Block until the most recently forked thread (of this task)
    /// finishes.
    JoinLast,
    /// Post an event to a looper with a delay (Android
    /// `Handler.sendMessageDelayed`).
    Post {
        /// Destination looper.
        looper: LooperId,
        /// Handler run when the event is processed.
        handler: HandlerId,
        /// Delay constraint in virtual milliseconds.
        delay_ms: u64,
    },
    /// Post at the front of the queue (Android
    /// `sendMessageAtFrontOfQueue`; no delay allowed, §3.3).
    PostFront {
        /// Destination looper.
        looper: LooperId,
        /// Handler run when the event is processed.
        handler: HandlerId,
    },
    /// Post an event only while `budget` is positive, decrementing it:
    /// bounded repost chains (timers, animation ticks).
    PostChain {
        /// Destination looper.
        looper: LooperId,
        /// Handler run when the event is processed.
        handler: HandlerId,
        /// Delay constraint in virtual milliseconds.
        delay_ms: u64,
        /// Countdown counter gating the post.
        budget: CounterId,
    },
    /// Register a listener with the runtime.
    Register(SimListener),
    /// Invoke a registered listener as part of this task.
    Perform(SimListener),
    /// Synchronous Binder RPC: block until the service method returns.
    Call {
        /// Target service.
        service: ServiceId,
        /// Invoked method.
        method: MethodId,
    },
    /// One-way Binder RPC: deliver and continue.
    CallAsync {
        /// Target service.
        service: ServiceId,
        /// Invoked method.
        method: MethodId,
    },
    /// Burn `units` of CPU work (uninstrumented work, for realistic
    /// tracing-overhead ratios).
    Compute(u32),
    /// Block this thread for a duration of virtual time. Threads only.
    Sleep(u64),
}

/// Which branch instruction a [`Action::GuardedUse`] emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardStyle {
    /// `if-eqz` forward jump over the use when null.
    IfEqz,
    /// `if-nez` forward jump to the use when non-null.
    IfNez,
    /// `if-eq` against `this` (§5.3 treats it like `if-nez`).
    IfEq,
}

/// A straight-line body script.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Body {
    pub(crate) actions: Vec<Action>,
}

/// Maximum actions per body under the 4 KiB method-block layout.
pub const MAX_BODY_ACTIONS: usize = 120;

impl Body {
    /// An empty body.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a body from raw actions.
    ///
    /// # Panics
    ///
    /// Panics if `actions` exceeds [`MAX_BODY_ACTIONS`].
    pub fn from_actions(actions: Vec<Action>) -> Self {
        assert!(
            actions.len() <= MAX_BODY_ACTIONS,
            "body exceeds {MAX_BODY_ACTIONS} actions"
        );
        Self { actions }
    }

    /// Appends an action.
    ///
    /// # Panics
    ///
    /// Panics if the body would exceed [`MAX_BODY_ACTIONS`].
    pub fn push(&mut self, action: Action) -> &mut Self {
        assert!(
            self.actions.len() < MAX_BODY_ACTIONS,
            "body exceeds {MAX_BODY_ACTIONS} actions"
        );
        self.actions.push(action);
        self
    }

    /// The actions in order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    // Chainable convenience constructors.

    /// Appends [`Action::AllocPtr`].
    pub fn alloc(mut self, var: SimVar) -> Self {
        self.push(Action::AllocPtr(var));
        self
    }

    /// Appends [`Action::FreePtr`].
    pub fn free(mut self, var: SimVar) -> Self {
        self.push(Action::FreePtr(var));
        self
    }

    /// Appends an uncaught [`Action::UsePtr`] (invoke flavor).
    pub fn use_ptr(mut self, var: SimVar) -> Self {
        self.push(Action::UsePtr {
            var,
            kind: DerefKind::Invoke,
            catch_npe: false,
        });
        self
    }

    /// Appends a caught [`Action::UsePtr`].
    pub fn use_ptr_caught(mut self, var: SimVar) -> Self {
        self.push(Action::UsePtr {
            var,
            kind: DerefKind::Invoke,
            catch_npe: true,
        });
        self
    }

    /// Appends [`Action::GuardedUse`] with the `if-eqz` style.
    pub fn guarded_use(mut self, var: SimVar) -> Self {
        self.push(Action::GuardedUse {
            var,
            kind: DerefKind::Invoke,
            style: GuardStyle::IfEqz,
        });
        self
    }

    /// Appends [`Action::BoolGuardedUse`].
    pub fn bool_guarded_use(mut self, flag: SimVar, var: SimVar) -> Self {
        self.push(Action::BoolGuardedUse {
            flag,
            var,
            kind: DerefKind::Invoke,
        });
        self
    }

    /// Appends [`Action::ReadScalar`].
    pub fn read(mut self, var: SimVar) -> Self {
        self.push(Action::ReadScalar(var));
        self
    }

    /// Appends [`Action::WriteScalar`].
    pub fn write(mut self, var: SimVar, value: i64) -> Self {
        self.push(Action::WriteScalar(var, value));
        self
    }

    /// Appends [`Action::Post`].
    pub fn post(mut self, looper: LooperId, handler: HandlerId, delay_ms: u64) -> Self {
        self.push(Action::Post {
            looper,
            handler,
            delay_ms,
        });
        self
    }

    /// Appends [`Action::Compute`].
    pub fn compute(mut self, units: u32) -> Self {
        self.push(Action::Compute(units));
        self
    }
}

/// A gesture: an event generated by the external world at a given
/// virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gesture {
    /// Virtual time of the gesture in milliseconds.
    pub at_ms: u64,
    /// Queue the resulting event lands on.
    pub looper: LooperId,
    /// Handler invoked.
    pub handler: HandlerId,
}

/// Initial value of a variable slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarInit {
    /// Pointer slot, initially null.
    PtrNull,
    /// Pointer slot, pre-initialized with an object before the trace
    /// starts (no allocation record is emitted).
    PtrAlloc,
    /// Scalar slot with an initial value.
    Scalar(i64),
}

#[derive(Clone, Debug)]
pub(crate) struct ThreadSpec {
    pub proc: ProcId,
    pub name: String,
    pub body: Body,
    pub auto_start: bool,
    pub method: u32,
}

#[derive(Clone, Debug)]
pub(crate) struct HandlerSpec {
    pub name: String,
    pub body: Body,
    pub method: u32,
}

#[derive(Clone, Debug)]
pub(crate) struct ServiceSpec {
    pub proc: ProcId,
    pub name: String,
    pub methods: Vec<MethodSpec>,
}

#[derive(Clone, Debug)]
pub(crate) struct MethodSpec {
    pub name: String,
    pub body: Body,
    pub method: u32,
}

/// A complete program, ready to [`run`](crate::run).
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) process_count: u32,
    pub(crate) loopers: Vec<ProcId>,
    pub(crate) threads: Vec<ThreadSpec>,
    pub(crate) handlers: Vec<HandlerSpec>,
    pub(crate) services: Vec<ServiceSpec>,
    pub(crate) listeners: Vec<String>,
    pub(crate) vars: Vec<VarInit>,
    pub(crate) monitor_count: u32,
    pub(crate) counters: Vec<u32>,
    pub(crate) gestures: Vec<Gesture>,
}

impl Program {
    /// The application name (becomes the trace's `app` metadata).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of declared shared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of scheduled gestures.
    pub fn gesture_count(&self) -> usize {
        self.gestures.len()
    }

    pub(crate) fn method_pc(method: u32, action_index: usize, sub: u32) -> Pc {
        let base = (method + 1) * Pc::METHOD_BLOCK;
        Pc::new(base + 0x40 + 0x20 * action_index as u32 + 4 * sub)
    }
}

/// Incremental construction of a [`Program`].
///
/// # Examples
///
/// ```
/// use cafa_sim::{ProgramBuilder, Body};
///
/// let mut p = ProgramBuilder::new("demo");
/// let app = p.process();
/// let main = p.looper(app);
/// let ptr = p.ptr_var_alloc();
/// let on_use = p.handler("onUse", Body::new().use_ptr(ptr));
/// let on_free = p.handler("onDestroy", Body::new().free(ptr));
/// p.gesture(10, main, on_use);
/// p.gesture(20, main, on_free);
/// let program = p.build();
/// assert_eq!(program.name(), "demo");
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    program: Program,
    next_method: u32,
}

impl ProgramBuilder {
    /// Starts a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            program: Program {
                name: name.into(),
                process_count: 0,
                loopers: Vec::new(),
                threads: Vec::new(),
                handlers: Vec::new(),
                services: Vec::new(),
                listeners: Vec::new(),
                vars: Vec::new(),
                monitor_count: 0,
                counters: Vec::new(),
                gestures: Vec::new(),
            },
            next_method: 0,
        }
    }

    fn alloc_method(&mut self) -> u32 {
        let m = self.next_method;
        self.next_method += 1;
        m
    }

    /// Declares a new process.
    pub fn process(&mut self) -> ProcId {
        let id = ProcId(self.program.process_count);
        self.program.process_count += 1;
        id
    }

    /// Declares a looper (event queue + draining thread) in `proc`.
    pub fn looper(&mut self, proc: ProcId) -> LooperId {
        let id = LooperId(self.program.loopers.len() as u32);
        self.program.loopers.push(proc);
        id
    }

    /// Declares a thread started automatically at time 0.
    pub fn thread(&mut self, proc: ProcId, name: &str, body: Body) -> ThreadSpecId {
        let method = self.alloc_method();
        let id = ThreadSpecId(self.program.threads.len() as u32);
        self.program.threads.push(ThreadSpec {
            proc,
            name: name.to_owned(),
            body,
            auto_start: true,
            method,
        });
        id
    }

    /// Declares a thread script only started by [`Action::Fork`].
    pub fn thread_spec(&mut self, proc: ProcId, name: &str, body: Body) -> ThreadSpecId {
        let method = self.alloc_method();
        let id = ThreadSpecId(self.program.threads.len() as u32);
        self.program.threads.push(ThreadSpec {
            proc,
            name: name.to_owned(),
            body,
            auto_start: false,
            method,
        });
        id
    }

    /// The id the *next* [`handler`](Self::handler) call will return.
    /// Lets a handler body reference itself (bounded repost loops):
    ///
    /// ```
    /// use cafa_sim::{ProgramBuilder, Body, Action};
    /// let mut p = ProgramBuilder::new("t");
    /// let pr = p.process();
    /// let l = p.looper(pr);
    /// let budget = p.counter(3);
    /// let me = p.next_handler_id();
    /// let tick = p.handler(
    ///     "tick",
    ///     Body::from_actions(vec![Action::PostChain {
    ///         looper: l, handler: me, delay_ms: 1, budget,
    ///     }]),
    /// );
    /// assert_eq!(me, tick);
    /// ```
    pub fn next_handler_id(&self) -> HandlerId {
        HandlerId(self.program.handlers.len() as u32)
    }

    /// Declares an event handler.
    pub fn handler(&mut self, name: &str, body: Body) -> HandlerId {
        let method = self.alloc_method();
        let id = HandlerId(self.program.handlers.len() as u32);
        self.program.handlers.push(HandlerSpec {
            name: name.to_owned(),
            body,
            method,
        });
        id
    }

    /// Declares a Binder service hosted in `proc` (spawns one binder
    /// thread at startup).
    pub fn service(&mut self, proc: ProcId, name: &str) -> ServiceId {
        let id = ServiceId(self.program.services.len() as u32);
        self.program.services.push(ServiceSpec {
            proc,
            name: name.to_owned(),
            methods: Vec::new(),
        });
        id
    }

    /// Declares a method on `service`.
    pub fn method(&mut self, service: ServiceId, name: &str, body: Body) -> MethodId {
        let method = self.alloc_method();
        let svc = &mut self.program.services[service.0 as usize];
        let id = MethodId(svc.methods.len() as u32);
        svc.methods.push(MethodSpec {
            name: name.to_owned(),
            body,
            method,
        });
        id
    }

    /// Declares a listener identity belonging to an Android package.
    pub fn listener(&mut self, package: &str) -> SimListener {
        let id = SimListener(self.program.listeners.len() as u32);
        self.program.listeners.push(package.to_owned());
        id
    }

    /// Declares a pointer variable initialized to null.
    pub fn ptr_var(&mut self) -> SimVar {
        let id = SimVar(self.program.vars.len() as u32);
        self.program.vars.push(VarInit::PtrNull);
        id
    }

    /// Declares a pointer variable pre-initialized with an object.
    pub fn ptr_var_alloc(&mut self) -> SimVar {
        let id = SimVar(self.program.vars.len() as u32);
        self.program.vars.push(VarInit::PtrAlloc);
        id
    }

    /// Declares a scalar variable.
    pub fn scalar_var(&mut self, init: i64) -> SimVar {
        let id = SimVar(self.program.vars.len() as u32);
        self.program.vars.push(VarInit::Scalar(init));
        id
    }

    /// Declares a monitor.
    pub fn monitor(&mut self) -> SimMonitor {
        let id = SimMonitor(self.program.monitor_count);
        self.program.monitor_count += 1;
        id
    }

    /// Declares a countdown counter with an initial budget.
    pub fn counter(&mut self, budget: u32) -> CounterId {
        let id = CounterId(self.program.counters.len() as u32);
        self.program.counters.push(budget);
        id
    }

    /// Schedules an external gesture.
    pub fn gesture(&mut self, at_ms: u64, looper: LooperId, handler: HandlerId) {
        self.program.gestures.push(Gesture {
            at_ms,
            looper,
            handler,
        });
    }

    /// Finishes the program.
    pub fn build(mut self) -> Program {
        self.program.gestures.sort_by_key(|g| g.at_ms);
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut p = ProgramBuilder::new("t");
        let pr = p.process();
        let l1 = p.looper(pr);
        let l2 = p.looper(pr);
        assert_ne!(l1, l2);
        let v1 = p.ptr_var();
        let v2 = p.scalar_var(3);
        assert_ne!(v1, v2);
        let h = p.handler("h", Body::new());
        let t = p.thread(pr, "t", Body::new());
        let svc = p.service(pr, "svc");
        let m = p.method(svc, "m", Body::new());
        let _ = (h, t, m);
        let prog = p.build();
        assert_eq!(prog.var_count(), 2);
    }

    #[test]
    fn gestures_sorted_by_time() {
        let mut p = ProgramBuilder::new("t");
        let pr = p.process();
        let l = p.looper(pr);
        let h = p.handler("h", Body::new());
        p.gesture(30, l, h);
        p.gesture(10, l, h);
        p.gesture(20, l, h);
        let prog = p.build();
        let times: Vec<u64> = prog.gestures.iter().map(|g| g.at_ms).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn method_pcs_stay_in_block() {
        let pc0 = Program::method_pc(0, 0, 0);
        let pc_last = Program::method_pc(0, MAX_BODY_ACTIONS - 1, 7);
        assert!(pc0.same_method(pc_last));
        let other = Program::method_pc(1, 0, 0);
        assert!(!pc0.same_method(other));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_body_panics() {
        let actions = vec![Action::Compute(1); MAX_BODY_ACTIONS + 1];
        let _ = Body::from_actions(actions);
    }

    #[test]
    fn body_chain_builders() {
        let mut p = ProgramBuilder::new("t");
        let v = p.ptr_var();
        let f = p.scalar_var(0);
        let body = Body::new()
            .alloc(v)
            .use_ptr(v)
            .use_ptr_caught(v)
            .guarded_use(v)
            .bool_guarded_use(f, v)
            .read(f)
            .write(f, 1)
            .free(v)
            .compute(10);
        assert_eq!(body.actions().len(), 9);
    }
}
