//! Property tests for the simulator: termination, determinism, and
//! schedule-independent invariants of random programs.

#![allow(clippy::needless_range_loop)] // index loops mirror the DAG construction

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cafa_sim::{
    run, Action, Body, HandlerId, InstrumentConfig, Program, ProgramBuilder, SimConfig,
};

/// Random DAG-structured program: handlers only post later handlers, so
/// every run terminates.
fn random_program(gen_seed: u64) -> (Program, usize) {
    let mut rng = SmallRng::seed_from_u64(gen_seed);
    let mut p = ProgramBuilder::new(format!("prop-{gen_seed}"));
    let proc = p.process();
    let looper = p.looper(proc);
    let var = p.scalar_var(0);
    let ptr = p.ptr_var_alloc();
    let n = rng.gen_range(3..10);

    let mut total_posts = 0usize;
    let mut posted = vec![false; n];
    let mut bodies: Vec<Vec<Action>> = vec![Vec::new(); n];
    for h in 0..n {
        let mut actions = vec![Action::ReadScalar(var)];
        if rng.gen_ratio(1, 4) {
            actions.push(Action::GuardedUse {
                var: ptr,
                kind: cafa_trace::DerefKind::Field,
                style: cafa_sim::GuardStyle::IfEqz,
            });
        }
        for t in (h + 1)..n {
            if rng.gen_ratio(1, 3) && !posted[t] {
                posted[t] = true;
                total_posts += 1;
                actions.push(Action::Post {
                    looper,
                    handler: HandlerId::from_index(t as u32),
                    delay_ms: rng.gen_range(0..4),
                });
            }
        }
        bodies[h] = actions;
    }
    for (h, actions) in bodies.into_iter().enumerate() {
        p.handler(&format!("H{h}"), Body::from_actions(actions));
    }
    let mut events = total_posts;
    for h in 0..n {
        if !posted[h] {
            p.gesture(
                rng.gen_range(0..10),
                looper,
                HandlerId::from_index(h as u32),
            );
            events += 1;
        }
    }
    (p.build(), events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every run terminates and processes exactly the posted events.
    #[test]
    fn runs_terminate_and_drain_queues(gen_seed in 0u64..10_000, run_seed in 0u64..64) {
        let (program, expected_events) = random_program(gen_seed);
        let outcome = run(&program, &SimConfig::with_seed(run_seed)).expect("terminates");
        prop_assert_eq!(outcome.events_processed as usize, expected_events);
        let trace = outcome.trace.expect("instrumented");
        prop_assert_eq!(trace.stats().events, expected_events);
    }

    /// Identical seeds give identical traces; instrumentation does not
    /// change scheduling decisions.
    #[test]
    fn determinism_and_heisenbug_freedom(gen_seed in 0u64..10_000, run_seed in 0u64..64) {
        let (program, _) = random_program(gen_seed);
        let a = run(&program, &SimConfig::with_seed(run_seed)).unwrap();
        let b = run(&program, &SimConfig::with_seed(run_seed)).unwrap();
        prop_assert_eq!(a.trace.as_ref(), b.trace.as_ref());
        prop_assert_eq!(a.steps, b.steps);

        // Turning instrumentation off must not change what happens —
        // the "probe effect" the paper's 2x-6x overhead never alters
        // (both modes share the scheduler's RNG stream).
        let mut cfg = SimConfig::with_seed(run_seed);
        cfg.instrument = InstrumentConfig::off();
        let c = run(&program, &cfg).unwrap();
        prop_assert_eq!(a.events_processed, c.events_processed);
        prop_assert_eq!(a.npes.len(), c.npes.len());
    }

    /// The recorded trace always validates and respects queue
    /// invariants: per queue, processed events have contiguous seq and
    /// equal-delay same-task posts are processed FIFO.
    #[test]
    fn traces_respect_queue_discipline(gen_seed in 0u64..10_000, run_seed in 0u64..64) {
        let (program, _) = random_program(gen_seed);
        let outcome = run(&program, &SimConfig::with_seed(run_seed)).unwrap();
        let trace = outcome.trace.expect("instrumented");
        prop_assert!(cafa_trace::validate::validate(&trace).is_ok());

        // Same-task, same-delay plain posts must be processed FIFO.
        use cafa_trace::{EventOrigin, Record};
        for (_, q) in trace.queues() {
            for (i, &e1) in q.events.iter().enumerate() {
                for &e2 in q.events.iter().skip(i + 1) {
                    let (t1, t2) = (trace.task(e1), trace.task(e2));
                    let (Some(EventOrigin::Sent { send: s1 }), Some(EventOrigin::Sent { send: s2 })) =
                        (t1.origin(), t2.origin())
                    else {
                        continue;
                    };
                    if s1.task != s2.task {
                        continue;
                    }
                    let (Record::Send { delay_ms: d1, .. }, Record::Send { delay_ms: d2, .. }) =
                        (trace.record(s1), trace.record(s2))
                    else {
                        continue;
                    };
                    // e1 processed before e2: if both posted by the same
                    // task with d1 <= d2, the posts must also be in
                    // program order (FIFO was respected).
                    if s1.index > s2.index && d1 <= d2 {
                        // e2 was posted first with a <= delay yet ran
                        // later... that means e1 jumped ahead: only
                        // possible when d1 < d2. Equal delays forbid it.
                        prop_assert!(
                            d1 < d2,
                            "FIFO violation: later equal-delay post ran first"
                        );
                    }
                }
            }
        }
    }
}
