//! Focused semantics tests: monitor misuse, NotifyAll, reentrancy,
//! pointer copying, and scheduler corner cases.

use cafa_sim::{run, Action, Body, ProgramBuilder, SimConfig, SimError};
use cafa_trace::{DerefKind, Record};

fn run0(p: cafa_sim::Program) -> Result<cafa_sim::RunOutcome, SimError> {
    run(&p, &SimConfig::with_seed(0))
}

#[test]
fn unlock_without_ownership_is_an_error() {
    let mut p = ProgramBuilder::new("bad-unlock");
    let pr = p.process();
    let m = p.monitor();
    p.thread(pr, "t", Body::from_actions(vec![Action::Unlock(m)]));
    match run0(p.build()) {
        Err(SimError::IllegalMonitorState { what }) => assert!(what.contains("unlock")),
        other => panic!("expected IllegalMonitorState, got {other:?}"),
    }
}

#[test]
fn notify_without_ownership_is_an_error() {
    let mut p = ProgramBuilder::new("bad-notify");
    let pr = p.process();
    let m = p.monitor();
    p.thread(pr, "t", Body::from_actions(vec![Action::Notify(m)]));
    assert!(matches!(
        run0(p.build()),
        Err(SimError::IllegalMonitorState { .. })
    ));
}

#[test]
fn wait_without_ownership_is_an_error() {
    let mut p = ProgramBuilder::new("bad-wait");
    let pr = p.process();
    let m = p.monitor();
    p.thread(pr, "t", Body::from_actions(vec![Action::Wait(m)]));
    assert!(matches!(
        run0(p.build()),
        Err(SimError::IllegalMonitorState { .. })
    ));
}

#[test]
fn join_without_fork_is_an_error() {
    let mut p = ProgramBuilder::new("bad-join");
    let pr = p.process();
    p.thread(pr, "t", Body::from_actions(vec![Action::JoinLast]));
    assert!(matches!(run0(p.build()), Err(SimError::JoinWithoutFork)));
}

#[test]
fn notify_all_wakes_every_waiter() {
    let mut p = ProgramBuilder::new("notify-all");
    let pr = p.process();
    let m = p.monitor();
    for i in 0..3 {
        p.thread(
            pr,
            &format!("waiter{i}"),
            Body::from_actions(vec![Action::Lock(m), Action::Wait(m), Action::Unlock(m)]),
        );
    }
    p.thread(
        pr,
        "broadcaster",
        Body::from_actions(vec![
            Action::Sleep(5),
            Action::Lock(m),
            Action::NotifyAll(m),
            Action::Unlock(m),
        ]),
    );
    let outcome = run0(p.build()).expect("all waiters wake");
    let trace = outcome.trace.unwrap();
    let waits = trace
        .iter_ops()
        .filter(|(_, r)| matches!(r, Record::Wait { .. }))
        .count();
    assert_eq!(waits, 3, "every waiter logged its wake");
    // All three waits share the broadcaster's generation.
    let gens: std::collections::HashSet<u32> = trace
        .iter_ops()
        .filter_map(|(_, r)| match r {
            Record::Wait { gen, .. } => Some(*gen),
            _ => None,
        })
        .collect();
    assert_eq!(gens.len(), 1);
}

#[test]
fn plain_notify_wakes_exactly_one() {
    let mut p = ProgramBuilder::new("notify-one");
    let pr = p.process();
    let m = p.monitor();
    for i in 0..2 {
        p.thread(
            pr,
            &format!("waiter{i}"),
            Body::from_actions(vec![Action::Lock(m), Action::Wait(m), Action::Unlock(m)]),
        );
    }
    p.thread(
        pr,
        "signaler",
        Body::from_actions(vec![
            Action::Sleep(5),
            Action::Lock(m),
            Action::Notify(m),
            Action::Unlock(m),
        ]),
    );
    // One waiter stays blocked forever: deadlock at drain time.
    assert!(matches!(run0(p.build()), Err(SimError::Deadlock { .. })));
}

#[test]
fn reentrant_locking_works_and_logs_distinct_gens() {
    let mut p = ProgramBuilder::new("reentrant");
    let pr = p.process();
    let m = p.monitor();
    let v = p.scalar_var(0);
    p.thread(
        pr,
        "t",
        Body::from_actions(vec![
            Action::Lock(m),
            Action::Lock(m),
            Action::WriteScalar(v, 1),
            Action::Unlock(m),
            Action::Unlock(m),
        ]),
    );
    let trace = run0(p.build()).unwrap().trace.unwrap();
    let lock_gens: Vec<u32> = trace
        .iter_ops()
        .filter_map(|(_, r)| match r {
            Record::Lock { gen, .. } => Some(*gen),
            _ => None,
        })
        .collect();
    assert_eq!(lock_gens.len(), 2);
    assert_ne!(lock_gens[0], lock_gens[1]);
    assert!(cafa_trace::validate::validate(&trace).is_ok());
}

#[test]
fn copy_of_null_pointer_is_a_free() {
    let mut p = ProgramBuilder::new("null-copy");
    let pr = p.process();
    let l = p.looper(pr);
    let src = p.ptr_var(); // starts null
    let dst = p.ptr_var_alloc();
    let h = p.handler(
        "copy",
        Body::from_actions(vec![Action::CopyPtr { from: src, to: dst }]),
    );
    p.gesture(0, l, h);
    let trace = run0(p.build()).unwrap().trace.unwrap();
    // The copy writes null into dst: a free record.
    assert_eq!(trace.stats().frees, 1);
    assert_eq!(trace.stats().allocations, 0);
}

#[test]
fn aliased_use_derefs_the_first_pointer() {
    let mut p = ProgramBuilder::new("alias-sem");
    let pr = p.process();
    let l = p.looper(pr);
    let a = p.ptr_var_alloc();
    let b = p.ptr_var_alloc(); // different object
    let h = p.handler(
        "use",
        Body::from_actions(vec![Action::AliasedUse {
            first: a,
            second: b,
            kind: DerefKind::Field,
        }]),
    );
    p.gesture(0, l, h);
    let outcome = run0(p.build()).unwrap();
    assert!(!outcome.crashed());
    let trace = outcome.trace.unwrap();
    // Non-aliased case: deref matches `a`'s read (different object ids),
    // so the extraction attributes the use to `a` unambiguously.
    let ops = probe_use_var(&trace);
    assert_eq!(ops, Some(0));
}

/// Returns the raw var index the first deref is attributed to.
fn probe_use_var(trace: &cafa_trace::Trace) -> Option<u32> {
    for task in trace.tasks() {
        let mut last: std::collections::HashMap<cafa_trace::ObjId, u32> = Default::default();
        for r in trace.body(task.id) {
            match *r {
                Record::ObjRead {
                    var, obj: Some(o), ..
                } => {
                    last.insert(o, var.as_u32());
                }
                Record::Deref { obj, .. } => return last.get(&obj).copied(),
                _ => {}
            }
        }
    }
    None
}

#[test]
fn sleep_orders_virtual_time_not_scheduling() {
    let mut p = ProgramBuilder::new("sleep");
    let pr = p.process();
    let l = p.looper(pr);
    let v = p.scalar_var(0);
    let early = p.handler("early", Body::new().write(v, 1));
    let late = p.handler("late", Body::new().write(v, 2));
    p.thread(
        pr,
        "t1",
        Body::from_actions(vec![
            Action::Sleep(50),
            Action::Post {
                looper: l,
                handler: late,
                delay_ms: 0,
            },
        ]),
    );
    p.thread(
        pr,
        "t2",
        Body::from_actions(vec![Action::Post {
            looper: l,
            handler: early,
            delay_ms: 0,
        }]),
    );
    let trace = run0(p.build()).unwrap().trace.unwrap();
    let q = trace.queues().next().unwrap().1;
    let names: Vec<&str> = q.events.iter().map(|&e| trace.task_name(e)).collect();
    assert_eq!(
        names,
        vec!["early", "late"],
        "virtual time separates the posts"
    );
}

#[test]
fn binder_queues_multiple_transactions() {
    let mut p = ProgramBuilder::new("binder-q");
    let app = p.process();
    let svcp = p.process();
    let v = p.scalar_var(0);
    let svc = p.service(svcp, "svc");
    let m1 = p.method(svc, "m1", Body::new().write(v, 1).compute(10));
    let m2 = p.method(svc, "m2", Body::new().write(v, 2).compute(10));
    // Two callers hit the single binder thread concurrently.
    p.thread(
        app,
        "c1",
        Body::from_actions(vec![Action::Call {
            service: svc,
            method: m1,
        }]),
    );
    p.thread(
        app,
        "c2",
        Body::from_actions(vec![Action::Call {
            service: svc,
            method: m2,
        }]),
    );
    let trace = run0(p.build()).unwrap().trace.unwrap();
    let handles = trace
        .iter_ops()
        .filter(|(_, r)| matches!(r, Record::RpcHandle { .. }))
        .count();
    let replies = trace
        .iter_ops()
        .filter(|(_, r)| matches!(r, Record::RpcReply { .. }))
        .count();
    assert_eq!(
        (handles, replies),
        (2, 2),
        "both transactions served in turn"
    );
}
