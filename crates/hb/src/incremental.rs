//! Incremental (suffix-extending) happens-before construction.
//!
//! The batch pipeline ([`base_graph`](crate::base_graph) +
//! [`derive`](crate::derive)) needs the whole trace up front. A
//! streaming ingester instead learns the trace in order: the complete
//! task table first, then each task's body, one completed task at a
//! time. [`IncrementalHb`] mirrors that shape:
//!
//! 1. [`IncrementalHb::new`] — called once the tables are known —
//!    builds the skeleton graph (begin/end nodes for every task) and
//!    installs the table-derived base edges (external-input chain,
//!    baseline total order);
//! 2. [`ingest`](IncrementalHb::ingest) appends a task's newly arrived
//!    records: sync nodes, program edges, and cross-task base edges
//!    paired against everything already ingested;
//! 3. [`derive_now`](IncrementalHb::derive_now) extends the rule
//!    fixpoint for the appended suffix, reusing pair memos from earlier
//!    runs so already-decided pairs are never re-examined (only the
//!    memo-less `sendAtFront` rules 2/4 are re-checked, a bounded set);
//! 4. [`into_model`](IncrementalHb::into_model) finalizes into an
//!    [`HbModel`] equivalent to a batch build.
//!
//! **Equivalence guarantee.** Base edges are append-monotone: every
//! pairing rule fires exactly the pairs the batch builder fires, just
//! interleaved with ingestion (the sole exception, the unlock→lock
//! ablation edges, needs the global acquisition order and is deferred
//! to finalization). Derived edges reach the same least fixpoint: a
//! memoized pair is only marked once its premise holds, premises only
//! grow, and fired conclusions persist as edges. The *materialized*
//! edge set may differ from a batch run where a fact is already implied
//! transitively, but the reachability closure — and therefore every
//! query an [`HbModel`] answers — is identical.

use std::collections::HashMap;

use cafa_trace::{ListenerId, MonitorId, OpRef, Record, TaskId, Trace, TxnId};

use crate::config::CausalityConfig;
use crate::demand::{DemandCore, DemandStats};
use crate::error::HbError;
use crate::graph::{EdgeKind, SyncGraph};
use crate::model::HbModel;
use crate::oracle::ReachOracle;
use crate::rules::{fixpoint, fixpoint_naive, DerivationStats, FixpointState, SendSite};

/// An append-only happens-before builder over a streaming trace.
///
/// Methods take the (growing) trace by reference on each call rather
/// than borrowing it for the builder's lifetime, so the caller can keep
/// extending the trace between calls. The task table must be complete
/// and must not change across calls; bodies may only grow, and records
/// of one task must all be ingested before [`seal`](IncrementalHb::seal)
/// closes its program-order chain.
#[derive(Debug)]
pub struct IncrementalHb {
    config: CausalityConfig,
    graph: SyncGraph,
    fix: FixpointState,
    stats: DerivationStats,
    derives: u32,
    // Pairing tables, persisted so each new record pairs against every
    // previously ingested counterpart exactly once.
    notifies: HashMap<(MonitorId, u32), Vec<OpRef>>,
    waits: HashMap<(MonitorId, u32), Vec<OpRef>>,
    registers: HashMap<ListenerId, Vec<OpRef>>,
    performs: HashMap<ListenerId, Vec<OpRef>>,
    rpc_calls: HashMap<TxnId, Vec<OpRef>>,
    rpc_handles: HashMap<TxnId, Vec<OpRef>>,
    rpc_replies: HashMap<TxnId, Vec<OpRef>>,
    rpc_receives: HashMap<TxnId, Vec<OpRef>>,
    locks: HashMap<MonitorId, Vec<(u32, OpRef)>>,
    unlocks: HashMap<MonitorId, Vec<(u32, OpRef)>>,
    /// Records already ingested per task.
    ingested: Vec<u32>,
    sealed: Vec<bool>,
    /// Sync records appended since the last `derive_now`.
    staged: usize,
    /// Cached reachability index over the graph-so-far; refreshed on
    /// demand by [`refresh_oracle`](IncrementalHb::refresh_oracle).
    oracle: Option<ReachOracle>,
    /// Lazy rule-query engine over the graph-so-far, created on the
    /// first `demand_*` query. Unlike [`derive_now`], it materializes
    /// no edges into the graph and pays only for the cones queries
    /// probe — the live-mode path of a streaming session.
    ///
    /// [`derive_now`]: IncrementalHb::derive_now
    demand: Option<DemandCore>,
}

impl IncrementalHb {
    /// Starts incremental construction for a trace whose task table is
    /// complete (bodies may be empty or partial; only records up to
    /// each later `ingest` call are consumed).
    ///
    /// # Errors
    ///
    /// [`HbError::MalformedTrace`] if an event task has no queue.
    pub fn new(trace: &Trace, config: CausalityConfig) -> Result<Self, HbError> {
        let fix = FixpointState::new(trace)?;
        let mut graph = SyncGraph::skeleton(trace);

        // Table-derived base edges exist before any body arrives.
        if config.external_rule {
            for pair in trace.external_events().windows(2) {
                graph.add_edge(graph.end(pair[0]), graph.begin(pair[1]), EdgeKind::External);
            }
        }
        if config.total_event_order {
            for (_, q) in trace.queues() {
                for pair in q.events.windows(2) {
                    graph.add_edge(
                        graph.end(pair[0]),
                        graph.begin(pair[1]),
                        EdgeKind::TotalOrder,
                    );
                }
            }
        }

        let task_count = trace.task_count();
        Ok(Self {
            config,
            graph,
            fix,
            stats: DerivationStats::default(),
            derives: 0,
            notifies: HashMap::new(),
            waits: HashMap::new(),
            registers: HashMap::new(),
            performs: HashMap::new(),
            rpc_calls: HashMap::new(),
            rpc_handles: HashMap::new(),
            rpc_replies: HashMap::new(),
            rpc_receives: HashMap::new(),
            locks: HashMap::new(),
            unlocks: HashMap::new(),
            ingested: vec![0; task_count],
            sealed: vec![false; task_count],
            staged: 0,
            oracle: None,
            demand: None,
        })
    }

    /// Creates the demand engine on first use and follows graph growth:
    /// newly appended nodes/edges extend its mark arrays and invalidate
    /// its cone memos and settlement stamps (growth is monotone, so
    /// previously derived edges are kept). Must run before every
    /// `demand_*` query. Public so streaming callers can charge the
    /// extension cost to the right pass instead of the first query.
    pub fn sync_demand(&mut self) {
        if self.demand.is_none() {
            let core = DemandCore::new(&self.graph, self.fix.table.clone(), self.config);
            self.demand = Some(core);
        }
        let core = self.demand.as_mut().expect("created above");
        core.sync_graph(&self.graph);
        core.register_sends(&self.graph, &self.fix.sends);
    }

    /// Answers `end(e1) ≺ begin(e2)` over the graph-so-far through the
    /// demand engine — the full §3.3 relation restricted to what has
    /// been ingested, without materializing edges. An unsealed task's
    /// `end` is still disconnected from its chain, so orders that
    /// depend on a task being complete correctly stay unreported until
    /// [`seal`](IncrementalHb::seal).
    ///
    /// # Panics
    ///
    /// Panics if either task is not an event.
    pub fn demand_event_before(&mut self, e1: TaskId, e2: TaskId) -> bool {
        let i1 = self.fix.table.dense(e1).expect("e1 must be an event");
        let i2 = self.fix.table.dense(e2).expect("e2 must be an event");
        self.sync_demand();
        let core = self.demand.as_mut().expect("synced above");
        core.event_before(&self.graph, i1, i2)
    }

    /// Operation-level happens-before over the graph-so-far through the
    /// demand engine (strict; see
    /// [`demand_event_before`](IncrementalHb::demand_event_before)).
    pub fn demand_happens_before(&mut self, a: OpRef, b: OpRef) -> bool {
        if a.task == b.task {
            return a.index < b.index;
        }
        let from = self.graph.bracket_after(a);
        let to = self.graph.bracket_before(b);
        self.sync_demand();
        let core = self.demand.as_mut().expect("synced above");
        core.reaches(&self.graph, from, to)
    }

    /// Work counters of the demand engine, if any `demand_*` query ran.
    pub fn demand_stats(&self) -> Option<DemandStats> {
        self.demand.as_ref().map(DemandCore::stats)
    }

    /// Brings the cached reachability index up to date with the graph:
    /// a no-op if nothing changed, an in-place extension when the graph
    /// only grew by program-order appends and safe seals, and a full
    /// rebuild (with `threads` workers) otherwise. Returns `false` —
    /// dropping any stale cache — if the graph-so-far is cyclic, in
    /// which case callers fall back to DFS and the inconsistency
    /// surfaces as a typed error at finalization.
    pub fn refresh_oracle(&mut self, threads: usize) -> bool {
        if let Some(oracle) = &mut self.oracle {
            if oracle.try_extend(&self.graph) {
                return true;
            }
        }
        match ReachOracle::build(&self.graph, threads) {
            Ok(oracle) => {
                self.oracle = Some(oracle);
                true
            }
            Err(_) => {
                self.oracle = None;
                false
            }
        }
    }

    /// The cached reachability index, if current for the graph-so-far.
    pub fn oracle(&self) -> Option<&ReachOracle> {
        self.oracle.as_ref().filter(|o| o.covers(&self.graph))
    }

    /// The configuration the builder was created with.
    pub fn config(&self) -> &CausalityConfig {
        &self.config
    }

    /// The graph as built so far (base edges current; derived edges as
    /// of the last [`derive_now`](IncrementalHb::derive_now)).
    pub fn graph(&self) -> &SyncGraph {
        &self.graph
    }

    /// True once `task`'s program-order chain has been closed.
    pub fn is_sealed(&self, task: TaskId) -> bool {
        self.sealed[task.index()]
    }

    /// Sync records appended since the last fixpoint extension — the
    /// un-derived backlog a memory high-water mark should bound.
    pub fn staged_records(&self) -> usize {
        self.staged
    }

    /// Accumulated derivation statistics across all fixpoint runs.
    pub fn stats(&self) -> DerivationStats {
        self.stats
    }

    /// Modeled resident footprint of the builder's state, in bytes:
    /// graph nodes and edges, the persistent fixpoint rows (one
    /// reachability row triple per node), and the cached reachability
    /// index. An accounting estimate for memory budgeting — not an
    /// allocator measurement — but it scales with the real cost and is
    /// deterministic, so an eviction threshold expressed against it
    /// behaves identically on every run.
    pub fn footprint_estimate(&self) -> usize {
        // Node metadata + adjacency entries (succ + pred per edge) +
        // the chronological edge log + dedup set.
        let nodes = self.graph.node_count() * 64;
        let edges = self.graph.edge_count() * 80;
        // Fixpoint reachability rows: three bitset rows per node.
        let rows = self.graph.node_count() * (self.graph.node_count() / 8).clamp(8, 1 << 12);
        let oracle = self
            .oracle
            .as_ref()
            .map_or(0, |_| self.graph.node_count() * 40);
        nodes + edges + rows + oracle
    }

    /// Appends `task`'s records beyond what was already ingested:
    /// creates sync nodes and installs their base edges against every
    /// previously ingested counterpart.
    ///
    /// # Panics
    ///
    /// Panics if `task` was already sealed while its body kept growing.
    pub fn ingest(&mut self, trace: &Trace, task: TaskId) {
        let body = trace.body(task);
        let from = self.ingested[task.index()] as usize;
        if from < body.len() {
            assert!(!self.sealed[task.index()], "records after seal of {task}");
        }
        for (i, r) in body.iter().enumerate().skip(from) {
            if !r.is_sync() {
                continue;
            }
            let at = OpRef::new(task, i as u32);
            let n = self.graph.append_record(task, i as u32);
            self.staged += 1;
            match *r {
                Record::Fork { child } => {
                    self.graph
                        .add_edge(n, self.graph.begin(child), EdgeKind::Fork);
                }
                Record::Join { child } => {
                    self.graph
                        .add_edge(self.graph.end(child), n, EdgeKind::Join);
                }
                Record::Send {
                    event,
                    queue,
                    delay_ms,
                } => {
                    self.graph
                        .add_edge(n, self.graph.begin(event), EdgeKind::Send);
                    self.fix.add_sends(&[SendSite {
                        node: n,
                        event,
                        queue,
                        delay_ms,
                        front: false,
                    }]);
                }
                Record::SendAtFront { event, queue } => {
                    self.graph
                        .add_edge(n, self.graph.begin(event), EdgeKind::Send);
                    self.fix.add_sends(&[SendSite {
                        node: n,
                        event,
                        queue,
                        delay_ms: 0,
                        front: true,
                    }]);
                }
                Record::Notify { monitor, gen } => {
                    for &w in self.waits.get(&(monitor, gen)).map_or(&[][..], |v| v) {
                        if w.task != task {
                            let wn = self.graph.node_of(w).expect("ingested sync record");
                            self.graph.add_edge(n, wn, EdgeKind::NotifyWait);
                        }
                    }
                    self.notifies.entry((monitor, gen)).or_default().push(at);
                }
                Record::Wait { monitor, gen } => {
                    for &nf in self.notifies.get(&(monitor, gen)).map_or(&[][..], |v| v) {
                        if nf.task != task {
                            let nn = self.graph.node_of(nf).expect("ingested sync record");
                            self.graph.add_edge(nn, n, EdgeKind::NotifyWait);
                        }
                    }
                    self.waits.entry((monitor, gen)).or_default().push(at);
                }
                Record::Register { listener } => {
                    if self.config.listener_rule {
                        for &p in self.performs.get(&listener).map_or(&[][..], |v| v) {
                            if at.task == p.task && at.index >= p.index {
                                continue;
                            }
                            let pn = self.graph.node_of(p).expect("ingested sync record");
                            self.graph.add_edge(n, pn, EdgeKind::Register);
                        }
                    }
                    self.registers.entry(listener).or_default().push(at);
                }
                Record::Perform { listener } => {
                    if self.config.listener_rule {
                        for &reg in self.registers.get(&listener).map_or(&[][..], |v| v) {
                            if reg.task == at.task && reg.index >= at.index {
                                continue;
                            }
                            let rn = self.graph.node_of(reg).expect("ingested sync record");
                            self.graph.add_edge(rn, n, EdgeKind::Register);
                        }
                    }
                    self.performs.entry(listener).or_default().push(at);
                }
                Record::RpcCall { txn } => {
                    for &h in self.rpc_handles.get(&txn).map_or(&[][..], |v| v) {
                        let hn = self.graph.node_of(h).expect("ingested sync record");
                        self.graph.add_edge(n, hn, EdgeKind::Rpc);
                    }
                    self.rpc_calls.entry(txn).or_default().push(at);
                }
                Record::RpcHandle { txn } => {
                    for &c in self.rpc_calls.get(&txn).map_or(&[][..], |v| v) {
                        let cn = self.graph.node_of(c).expect("ingested sync record");
                        self.graph.add_edge(cn, n, EdgeKind::Rpc);
                    }
                    self.rpc_handles.entry(txn).or_default().push(at);
                }
                Record::RpcReply { txn } => {
                    for &rc in self.rpc_receives.get(&txn).map_or(&[][..], |v| v) {
                        let rn = self.graph.node_of(rc).expect("ingested sync record");
                        self.graph.add_edge(n, rn, EdgeKind::Rpc);
                    }
                    self.rpc_replies.entry(txn).or_default().push(at);
                }
                Record::RpcReceive { txn } => {
                    for &rp in self.rpc_replies.get(&txn).map_or(&[][..], |v| v) {
                        let rn = self.graph.node_of(rp).expect("ingested sync record");
                        self.graph.add_edge(rn, n, EdgeKind::Rpc);
                    }
                    self.rpc_receives.entry(txn).or_default().push(at);
                }
                // Unlock→lock edges need the *global* acquisition order
                // ("the next lock after this release"), which a suffix
                // can change; they are installed at finalization.
                Record::Lock { monitor, gen } => {
                    self.locks.entry(monitor).or_default().push((gen, at));
                }
                Record::Unlock { monitor, gen } => {
                    self.unlocks.entry(monitor).or_default().push((gen, at));
                }
                _ => {}
            }
        }
        self.ingested[task.index()] = body.len() as u32;
    }

    /// Ingests any remaining records of `task` and closes its
    /// program-order chain. Idempotent.
    pub fn seal(&mut self, trace: &Trace, task: TaskId) {
        if self.sealed[task.index()] {
            return;
        }
        self.ingest(trace, task);
        self.graph.seal_task(task);
        self.sealed[task.index()] = true;
    }

    /// Extends the rule fixpoint over everything appended since the
    /// last run, returning this run's statistics (also accumulated into
    /// [`stats`](IncrementalHb::stats)).
    ///
    /// # Errors
    ///
    /// [`HbError`] if the graph-so-far is cyclic (inconsistent input)
    /// or the fixpoint diverges.
    pub fn derive_now(&mut self) -> Result<DerivationStats, HbError> {
        let run = fixpoint(&mut self.graph, &self.config, &mut self.fix)?;
        self.accumulate(run);
        Ok(run)
    }

    /// [`derive_now`](IncrementalHb::derive_now) driven by the naive
    /// reference loop instead of the semi-naive engine. Leaves the pair
    /// memos and reachability rows untouched, so an all-reference
    /// session stays a faithful baseline. Exposed (hidden) for the
    /// differential test suite and the fixpoint benchmark only.
    #[doc(hidden)]
    pub fn derive_now_reference(&mut self) -> Result<DerivationStats, HbError> {
        let run = fixpoint_naive(&mut self.graph, &self.config, &mut self.fix)?;
        self.accumulate(run);
        Ok(run)
    }

    fn accumulate(&mut self, run: DerivationStats) {
        self.stats.rounds += run.rounds;
        self.stats.instances += run.instances;
        self.stats.atomicity_edges += run.atomicity_edges;
        for (acc, q) in self.stats.queue_edges.iter_mut().zip(run.queue_edges) {
            *acc += q;
        }
        self.derives += 1;
        self.staged = 0;
    }

    /// Number of fixpoint extensions run so far.
    pub fn derive_count(&self) -> u32 {
        self.derives
    }

    /// Finalizes into an [`HbModel`]: seals any unsealed task, installs
    /// the deferred unlock→lock edges (lock-ordered ablations only),
    /// runs the fixpoint to convergence, and assembles the query model.
    /// Answers every query identically to `HbModel::build(trace,
    /// config)`.
    ///
    /// # Errors
    ///
    /// [`HbError`] as for [`derive_now`](IncrementalHb::derive_now).
    pub fn into_model<'t>(mut self, trace: &'t Trace) -> Result<HbModel<'t>, HbError> {
        for info in trace.tasks() {
            self.seal(trace, info.id);
        }
        if self.config.lock_hb {
            for (monitor, mut uls) in std::mem::take(&mut self.unlocks) {
                let Some(mut ls) = self.locks.remove(&monitor) else {
                    continue;
                };
                uls.sort_by_key(|&(gen, _)| gen);
                ls.sort_by_key(|&(gen, _)| gen);
                for &(gen, at) in &uls {
                    let next = ls.partition_point(|&(lgen, _)| lgen <= gen);
                    if let Some(&(_, lock_at)) = ls.get(next) {
                        let un = self.graph.node_of(at).expect("ingested sync record");
                        let ln = self.graph.node_of(lock_at).expect("ingested sync record");
                        self.graph.add_edge(un, ln, EdgeKind::LockOrder);
                    }
                }
            }
        }
        self.derive_now()?;
        let closure = self.fix.converged_closure(&self.graph);
        HbModel::from_parts(trace, self.config, self.graph, self.stats, closure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{ObjId, Pc, TraceBuilder, VarId};

    /// Ingests a complete trace task-by-task with a derive after each
    /// seal, then finalizes.
    fn incremental_model(trace: &Trace, config: CausalityConfig) -> HbModel<'_> {
        let mut inc = IncrementalHb::new(trace, config).expect("valid trace");
        for info in trace.tasks() {
            inc.seal(trace, info.id);
            inc.derive_now().expect("incremental derivation converges");
        }
        inc.into_model(trace).expect("finalization converges")
    }

    /// Closure equality against the batch model: every event pair and
    /// every op pair over the trace's accesses agree.
    fn assert_equivalent(trace: &Trace, config: CausalityConfig) {
        let batch = HbModel::build(trace, config).expect("batch build");
        let inc = incremental_model(trace, config);
        for &e1 in batch.events() {
            for &e2 in batch.events() {
                if e1 != e2 {
                    assert_eq!(
                        batch.event_before(e1, e2),
                        inc.event_before(e1, e2),
                        "event order {e1}->{e2} diverged"
                    );
                }
            }
        }
        let ops: Vec<OpRef> = trace.iter_ops().map(|(at, _)| at).collect();
        for &a in &ops {
            for &b in &ops {
                assert_eq!(
                    batch.happens_before(a, b),
                    inc.happens_before(a, b),
                    "op order {a:?}->{b:?} diverged"
                );
            }
        }
    }

    fn figure1_trace() -> Trace {
        let mut b = TraceBuilder::new("MyTracks");
        let app = b.add_process();
        let q = b.add_queue(app);
        let svc = b.add_process();
        let ipc = b.add_thread(svc, "binder");
        let resume = b.external(q, "onResume");
        b.process_event(resume);
        let (txn, _) = b.rpc_call(resume);
        b.rpc_handle(ipc, txn);
        let connected = b.post(ipc, q, "onServiceConnected", 0);
        let destroy = b.external(q, "onDestroy");
        b.process_event(connected);
        b.obj_read(connected, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x10));
        b.process_event(destroy);
        b.obj_write(destroy, VarId::new(0), None, Pc::new(0x20));
        b.finish().unwrap()
    }

    fn cascade_trace() -> Trace {
        // Queue-rule edge enables an atomicity edge in a later round,
        // plus fork/join, notify/wait, locks, and a front-send.
        let mut b = TraceBuilder::new("cascade");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 0);
        let e = b.post(t, q, "B", 0);
        b.process_event(a);
        let w = b.fork(a, p, "w");
        b.write(w, VarId::new(3));
        b.join(a, w);
        b.process_event(e);
        let c = b.post(e, q, "C", 0);
        let f = b.post_front(e, q, "F");
        b.process_event(f);
        b.process_event(c);
        let m = MonitorId::new(1);
        b.lock(t, m, 0);
        b.unlock(t, m, 0);
        b.finish().unwrap()
    }

    #[test]
    fn figure1_matches_batch_under_cafa() {
        assert_equivalent(&figure1_trace(), CausalityConfig::cafa());
    }

    #[test]
    fn figure1_matches_batch_under_conventional() {
        assert_equivalent(&figure1_trace(), CausalityConfig::conventional());
    }

    #[test]
    fn cascade_matches_batch_under_all_presets() {
        let trace = cascade_trace();
        for config in [
            CausalityConfig::cafa(),
            CausalityConfig::conventional(),
            CausalityConfig::no_queue_rules(),
            CausalityConfig::fasttrack_like(),
        ] {
            assert_equivalent(&trace, config);
        }
    }

    #[test]
    fn derive_per_seal_is_not_required() {
        // Deriving only once at the end must agree too.
        let trace = cascade_trace();
        let batch = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let mut inc = IncrementalHb::new(&trace, CausalityConfig::cafa()).unwrap();
        for info in trace.tasks() {
            inc.seal(&trace, info.id);
        }
        let model = inc.into_model(&trace).unwrap();
        for &e1 in batch.events() {
            for &e2 in batch.events() {
                if e1 != e2 {
                    assert_eq!(batch.event_before(e1, e2), model.event_before(e1, e2));
                }
            }
        }
    }

    #[test]
    fn staged_counter_tracks_backlog() {
        let trace = cascade_trace();
        let mut inc = IncrementalHb::new(&trace, CausalityConfig::cafa()).unwrap();
        assert_eq!(inc.staged_records(), 0);
        let first = trace.tasks().next().unwrap().id;
        inc.seal(&trace, first);
        assert!(inc.staged_records() > 0);
        inc.derive_now().unwrap();
        assert_eq!(inc.staged_records(), 0);
        assert_eq!(inc.derive_count(), 1);
    }

    #[test]
    fn partial_ingest_then_more_records() {
        // Ingest may be called repeatedly as a body grows; pairing must
        // not duplicate edges.
        let trace = figure1_trace();
        let mut inc = IncrementalHb::new(&trace, CausalityConfig::cafa()).unwrap();
        for info in trace.tasks() {
            inc.ingest(&trace, info.id); // full body
            inc.ingest(&trace, info.id); // no-op: nothing new
            inc.seal(&trace, info.id);
        }
        let batch = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let model = inc.into_model(&trace).unwrap();
        for &e1 in batch.events() {
            for &e2 in batch.events() {
                if e1 != e2 {
                    assert_eq!(batch.event_before(e1, e2), model.event_before(e1, e2));
                }
            }
        }
    }
}
