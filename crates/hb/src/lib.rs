//! Happens-before causality model for event-driven traces.
//!
//! Implements §3 of *"Race Detection for Event-Driven Mobile
//! Applications"* (Yu et al., PLDI 2014): a happens-before relation for
//! executions that mix regular threads with looper threads draining
//! event queues. The distinguishing features over a thread-based model:
//!
//! * **no** program order between the events of one looper — logically
//!   concurrent events stay concurrent even though they executed
//!   sequentially;
//! * **no** unlock→lock order (locksets are checked instead);
//! * the **atomicity rule**: if any part of event *e₁* happens before
//!   any part of same-looper event *e₂*, then all of *e₁* happens
//!   before all of *e₂*;
//! * the four **event-queue rules**: ordered `send`s with compatible
//!   delays order the sent events FIFO-style, with special cases for
//!   `sendAtFront`.
//!
//! Because the atomicity and queue rules consume happens-before facts
//! they also produce, the model is computed as a fixpoint over an
//! operation-level sync graph ([`SyncGraph`]), then exposed through
//! [`HbModel`] for queries. [`CausalityConfig`] selects between the CAFA
//! model, the paper's conventional baseline, and ablations.
//!
//! # Examples
//!
//! ```
//! use cafa_trace::TraceBuilder;
//! use cafa_hb::{HbModel, CausalityConfig};
//!
//! // Two user gestures processed by one looper: concurrent under CAFA
//! // unless some rule orders them (here, the external-input rule does).
//! let mut b = TraceBuilder::new("touches");
//! let p = b.add_process();
//! let q = b.add_queue(p);
//! let tap1 = b.external(q, "tap1");
//! let tap2 = b.external(q, "tap2");
//! b.process_event(tap1);
//! b.process_event(tap2);
//! let trace = b.finish().unwrap();
//!
//! let cafa = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
//! assert!(cafa.event_before(tap1, tap2)); // external-input rule
//!
//! let mut no_ext = CausalityConfig::cafa();
//! no_ext.external_rule = false;
//! let relaxed = HbModel::build(&trace, no_ext).unwrap();
//! assert!(relaxed.concurrent_events(tap1, tap2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitset;
mod build;
mod config;
mod demand;
pub mod dot;
mod error;
mod graph;
mod incremental;
mod locks;
mod model;
pub mod oracle;
mod rules;
pub mod vc_online;

pub use build::base_graph;
pub use config::CausalityConfig;
pub use demand::DemandStats;
pub use error::HbError;
pub use graph::{EdgeKind, NodeId, NodeInfo, NodePoint, SyncGraph};
pub use incremental::IncrementalHb;
pub use locks::LockSets;
pub use model::{BatchReach, CauseStep, HbModel, OpOrder};
pub use oracle::{resolve_threads, ReachOracle};
#[doc(hidden)]
pub use rules::derive_naive;
pub use rules::{derive, derive_eager_reference, DerivationStats, EventTable};
