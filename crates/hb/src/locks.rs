//! Lockset computation.
//!
//! CAFA deliberately derives no happens-before edges from locks (§3.1);
//! instead it "checks the locksets for mutual exclusion, assuming that
//! the critical sections are race-free". This module answers "which
//! monitors does task *t* hold at record *i*", so the detector can
//! discard candidate pairs whose endpoints are both inside critical
//! sections on a common monitor.

use cafa_trace::{MonitorId, OpRef, Record, Trace};

/// Precomputed lock acquisition/release positions per task.
#[derive(Clone, Debug)]
pub struct LockSets {
    /// Per task: `(record_index, monitor, acquired)` in program order.
    transitions: Vec<Vec<(u32, MonitorId, bool)>>,
}

impl LockSets {
    /// Scans `trace` for lock/unlock records.
    pub fn new(trace: &Trace) -> Self {
        let mut transitions = vec![Vec::new(); trace.task_count()];
        for (at, r) in trace.iter_ops() {
            match *r {
                Record::Lock { monitor, .. } => {
                    transitions[at.task.index()].push((at.index, monitor, true));
                }
                Record::Unlock { monitor, .. } => {
                    transitions[at.task.index()].push((at.index, monitor, false));
                }
                _ => {}
            }
        }
        Self { transitions }
    }

    /// Monitors held while executing the record at `at` (a `lock` record
    /// holds its monitor; an `unlock` record does not).
    pub fn held(&self, at: OpRef) -> Vec<MonitorId> {
        let mut held: Vec<(MonitorId, u32)> = Vec::new();
        for &(i, m, acquired) in &self.transitions[at.task.index()] {
            if i > at.index {
                break;
            }
            if acquired {
                match held.iter_mut().find(|(hm, _)| *hm == m) {
                    Some((_, n)) => *n += 1,
                    None => held.push((m, 1)),
                }
            } else if let Some(pos) = held.iter().position(|(hm, _)| *hm == m) {
                held[pos].1 -= 1;
                if held[pos].1 == 0 {
                    held.remove(pos);
                }
            }
        }
        held.into_iter().map(|(m, _)| m).collect()
    }

    /// A monitor held at both positions, if any: the mutual-exclusion
    /// condition under which CAFA trusts the programmer and suppresses
    /// the candidate pair.
    pub fn common(&self, a: OpRef, b: OpRef) -> Option<MonitorId> {
        let ha = self.held(a);
        if ha.is_empty() {
            return None;
        }
        let hb = self.held(b);
        ha.into_iter().find(|m| hb.contains(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{TraceBuilder, VarId};

    #[test]
    fn held_tracks_nesting() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let m0 = MonitorId::new(0);
        let m1 = MonitorId::new(1);
        b.read(t, VarId::new(0)); // 0: no locks
        b.lock(t, m0, 0); // 1
        b.read(t, VarId::new(0)); // 2: m0
        b.lock(t, m1, 0); // 3
        b.read(t, VarId::new(0)); // 4: m0, m1
        b.unlock(t, m1, 0); // 5
        b.read(t, VarId::new(0)); // 6: m0
        b.unlock(t, m0, 0); // 7
        b.read(t, VarId::new(0)); // 8: none
        let trace = b.finish().unwrap();
        let ls = LockSets::new(&trace);
        assert!(ls.held(OpRef::new(t, 0)).is_empty());
        assert_eq!(ls.held(OpRef::new(t, 2)), vec![m0]);
        assert_eq!(ls.held(OpRef::new(t, 4)), vec![m0, m1]);
        assert_eq!(ls.held(OpRef::new(t, 6)), vec![m0]);
        assert!(ls.held(OpRef::new(t, 8)).is_empty());
        // The unlock record itself no longer holds the monitor.
        assert!(ls.held(OpRef::new(t, 7)).is_empty());
        // The lock record holds it.
        assert_eq!(ls.held(OpRef::new(t, 1)), vec![m0]);
    }

    #[test]
    fn reentrant_locks_count() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let t = b.add_thread(p, "main");
        let m = MonitorId::new(0);
        b.lock(t, m, 0);
        b.lock(t, m, 1);
        b.unlock(t, m, 1);
        b.read(t, VarId::new(0)); // 3: still held once
        b.unlock(t, m, 0);
        let trace = b.finish().unwrap();
        let ls = LockSets::new(&trace);
        assert_eq!(ls.held(OpRef::new(t, 3)), vec![m]);
    }

    #[test]
    fn common_monitor_across_tasks() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let a = b.add_thread(p, "a");
        let c = b.add_thread(p, "c");
        let m = MonitorId::new(5);
        b.lock(a, m, 0);
        b.read(a, VarId::new(0)); // a[1]
        b.unlock(a, m, 0);
        b.lock(c, m, 1);
        b.write(c, VarId::new(0)); // c[1]
        b.unlock(c, m, 1);
        b.write(c, VarId::new(0)); // c[3], outside
        let trace = b.finish().unwrap();
        let ls = LockSets::new(&trace);
        assert_eq!(ls.common(OpRef::new(a, 1), OpRef::new(c, 1)), Some(m));
        assert_eq!(ls.common(OpRef::new(a, 1), OpRef::new(c, 3)), None);
        assert_eq!(ls.common(OpRef::new(c, 3), OpRef::new(a, 1)), None);
    }
}
