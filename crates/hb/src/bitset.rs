//! Dense fixed-width bit sets used by the closure and rule engines.
//!
//! The fixpoint derivation of §3.3 sweeps "which sources reach this
//! node" sets over tens of thousands of graph nodes; a dedicated dense
//! bitset with word-level union keeps those sweeps cheap without pulling
//! in a dependency.

/// A fixed-capacity set of small integers, stored one bit each.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for values `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity of the set (exclusive upper bound on member values).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        newly
    }

    /// Removes `i`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Tests membership of `i`. Out-of-range values are absent.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns true if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Makes `self` an exact copy of `other`, reusing `self`'s word
    /// allocation when it is large enough. The allocation-free
    /// rebuild step of the per-anchor working set in the rule engine.
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Grows the capacity to `new_len`, keeping existing members. Used
    /// by the incremental fixpoint, whose send-pair memos gain columns
    /// as new `send` records stream in.
    ///
    /// # Panics
    ///
    /// Panics if `new_len` is smaller than the current capacity.
    pub fn grow(&mut self, new_len: usize) {
        assert!(
            new_len >= self.len,
            "cannot shrink bitset from {} to {new_len}",
            self.len
        );
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len;
    }

    /// True when no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over set bits in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Raw word storage, little-endian bit order. Exposed so hot loops
    /// can combine sets word-wise (e.g. `a & b & !c`) without
    /// allocating intermediates.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Calls `f(i)` for every `i` in `self ∩ and ∖ not`, in increasing
    /// order, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn for_each_in_diff<F: FnMut(usize)>(&self, and: &BitSet, not: &BitSet, mut f: F) {
        assert_eq!(self.len, and.len, "bitset capacity mismatch");
        assert_eq!(self.len, not.len, "bitset capacity mismatch");
        for (wi, ((&a, &b), &c)) in self
            .words
            .iter()
            .zip(&and.words)
            .zip(&not.words)
            .enumerate()
        {
            let mut w = a & b & !c;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                f(wi * 64 + bit);
            }
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to the maximum value + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let len = values.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(len);
        for v in values {
            s.insert(v);
        }
        s
    }
}

/// Iterator over the members of a [`BitSet`].
#[derive(Debug)]
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// A rectangular matrix of bits: `rows` rows of a `cols`-wide [`BitSet`]
/// each, used for the event-order relation (`end(e₁) ≺ begin(e₂)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<BitSet>,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows: vec![BitSet::new(cols); rows],
            cols,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn col_count(&self) -> usize {
        self.cols
    }

    /// Sets bit `(r, c)`; returns true if it was newly set.
    pub fn set(&mut self, r: usize, c: usize) -> bool {
        self.rows[r].insert(c)
    }

    /// Tests bit `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].contains(c)
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &BitSet {
        &self.rows[r]
    }

    /// Unions row `src` into row `dst`; returns true if `dst` changed.
    pub fn union_rows(&mut self, dst: usize, src: usize) -> bool {
        if dst == src {
            return false;
        }
        let (a, b) = if dst < src {
            let (lo, hi) = self.rows.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        };
        a.union_with(b)
    }

    /// Total number of set bits.
    pub fn count(&self) -> usize {
        self.rows.iter().map(BitSet::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(3);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(3) && a.contains(99));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s: BitSet = [5usize, 0, 127, 64, 63].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 63, 64, 127]);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(9);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn grow_keeps_members_and_extends_range() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(9);
        s.grow(130);
        assert_eq!(s.capacity(), 130);
        assert!(s.contains(3) && s.contains(9));
        assert!(s.insert(129));
        assert_eq!(s.count(), 3);
        // Growing to the same size is a no-op.
        s.grow(130);
        assert_eq!(s.count(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        BitSet::new(10).grow(5);
    }

    #[test]
    fn word_boundary_bits() {
        // Bits 63/64/65 straddle the first u64 word boundary; each must
        // land in its own word slot and round-trip through iteration.
        let mut s = BitSet::new(66);
        for i in [63usize, 64, 65] {
            assert!(s.insert(i));
            assert!(!s.insert(i), "bit {i} double-inserted");
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 64, 65]);
        assert_eq!(s.words()[0], 1u64 << 63);
        assert_eq!(s.words()[1], 0b11);
        assert!(s.remove(64));
        assert!(!s.contains(64));
        assert!(s.contains(63) && s.contains(65));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 65]);
    }

    #[test]
    fn empty_set_operations_are_safe() {
        let mut e = BitSet::new(0);
        assert!(!e.remove(0));
        assert_eq!(e.count(), 0);
        let other = BitSet::new(0);
        assert!(!e.union_with(&other));
        e.for_each_in_diff(&other, &other, |_| unreachable!("no members"));
        e.grow(0);
        assert!(e.is_empty());
    }

    #[test]
    fn self_union_is_a_fixpoint() {
        let mut s = BitSet::new(130);
        for i in [0usize, 63, 64, 65, 129] {
            s.insert(i);
        }
        let copy = s.clone();
        assert!(!s.union_with(&copy), "A ∪ A = A must report no change");
        assert_eq!(s, copy);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn words_expose_raw_storage() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        let w = s.words();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], 1);
        assert_eq!(w[1], 1);
        assert_eq!(w[2], 1 << (129 - 128));
    }

    #[test]
    fn for_each_in_diff_intersects_and_subtracts() {
        let mut a = BitSet::new(128);
        for i in [1usize, 3, 5, 64, 100] {
            a.insert(i);
        }
        let mut and = BitSet::new(128);
        for i in [3usize, 5, 64, 101] {
            and.insert(i);
        }
        let mut not = BitSet::new(128);
        not.insert(5);
        let mut seen = Vec::new();
        a.for_each_in_diff(&and, &not, |i| seen.push(i));
        assert_eq!(seen, vec![3, 64]);
        // Empty result when everything is masked away.
        a.clear();
        let mut none = Vec::new();
        a.for_each_in_diff(&and, &not, |i| none.push(i));
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn for_each_in_diff_rejects_mismatched_capacity() {
        let a = BitSet::new(10);
        let b = BitSet::new(20);
        let c = BitSet::new(10);
        a.for_each_in_diff(&b, &c, |_| {});
    }

    #[test]
    fn matrix_rows() {
        let mut m = BitMatrix::new(3, 70);
        assert!(m.set(0, 65));
        assert!(!m.set(0, 65));
        assert!(m.get(0, 65));
        assert!(!m.get(1, 65));
        assert!(m.union_rows(1, 0));
        assert!(m.get(1, 65));
        assert!(!m.union_rows(1, 1));
        assert_eq!(m.count(), 2);
        assert_eq!(m.row_count(), 3);
        assert_eq!(m.col_count(), 70);
        assert_eq!(m.row(1).iter().collect::<Vec<_>>(), vec![65]);
    }
}
