//! The synchronization graph: the operation-level happens-before DAG.
//!
//! Nodes are the *synchronization points* of a trace — each task's
//! virtual `begin`/`end` plus every Figure 3 record — chained in program
//! order. Cross-task edges carry the causality rules of §3.3. Data
//! records (reads, writes, uses, frees, guards) are not nodes; a data
//! record's position is bracketed between the nearest sync nodes of its
//! task ([`SyncGraph::bracket_after`] / [`SyncGraph::bracket_before`]),
//! which is exact because program order within a task is total.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

use cafa_trace::{OpRef, TaskId, Trace};

use crate::bitset::BitSet;

/// Index of a node in a [`SyncGraph`].
pub type NodeId = u32;

/// Multiplicative hasher for the dense packed edge keys. Edge dedup is
/// one hash-set insert per edge, so on million-edge graphs the default
/// SipHash dominates construction time; edge keys are attacker-free
/// internal indices and only ever hashed as a single `u64`.
#[derive(Default)]
struct EdgeHasher(u64);

impl std::hash::Hasher for EdgeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("edge keys hash as one u64");
    }

    fn write_u64(&mut self, key: u64) {
        // Fibonacci multiply + fold: spreads the low node bits into the
        // high bits hashbrown picks its control bytes from.
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 29);
    }
}

/// Packs an edge into the `u64` key the dedup set stores.
fn edge_key(from: NodeId, to: NodeId) -> u64 {
    (u64::from(from) << 32) | u64::from(to)
}

/// Where a node sits within its task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodePoint {
    /// The task's virtual `begin(t)` (before every record).
    Begin,
    /// The sync record at this index of the task body.
    Record(u32),
    /// The task's virtual `end(t)` (after every record).
    End,
}

/// Metadata for one sync node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// The task the node belongs to.
    pub task: TaskId,
    /// Position within the task.
    pub point: NodePoint,
}

/// Why an edge exists. Used for diagnostics and derivation statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Program order within one task.
    Program,
    /// `fork(t, u) ≺ begin(u)`.
    Fork,
    /// `end(u) ≺ join(t, u)`.
    Join,
    /// `notify(t₁, m) ≺ wait(t₂, m)` (same generation).
    NotifyWait,
    /// `send/sendAtFront(t, e) ≺ begin(e)`.
    Send,
    /// `register(t, l) ≺ perform(e, l)`.
    Register,
    /// Binder causality: `rpcCall ≺ rpcHandle`, `rpcReply ≺ rpcReceive`.
    Rpc,
    /// External-input rule: consecutive external events are ordered.
    External,
    /// Conventional-baseline total order of events on one looper.
    TotalOrder,
    /// Unlock→lock order (off in both CAFA and the paper's baseline;
    /// used by the FastTrack-style ablation).
    LockOrder,
    /// Derived by the atomicity rule.
    Atomicity,
    /// Derived by event-queue rule *n* (1–4).
    Queue(u8),
}

/// Compressed-sparse-row adjacency over a frozen prefix of the edge
/// log. Million-node graphs cannot afford one heap block per node: on
/// the fleet-scale tiers the per-node `Vec` representation cost more in
/// page faults than the whole analysis, so batch construction compacts
/// the log into two flat arrays per direction instead.
#[derive(Clone, Debug, Default)]
struct CsrAdj {
    succ_off: Vec<u32>,
    succ: Vec<(NodeId, EdgeKind)>,
    pred_off: Vec<u32>,
    pred: Vec<NodeId>,
}

/// The operation-level happens-before graph of one trace.
#[derive(Clone, Debug)]
pub struct SyncGraph {
    nodes: Vec<NodeInfo>,
    /// Per task: `(record_index, node)` pairs sorted by index.
    record_nodes: Vec<Vec<(u32, NodeId)>>,
    begin_nodes: Vec<NodeId>,
    end_nodes: Vec<NodeId>,
    /// Flat adjacency for every edge logged before the last
    /// [`compact`](SyncGraph::compact); `None` while a batch
    /// construction is still appending (deferred mode — the log is the
    /// only record and per-node queries are not served yet).
    csr: Option<CsrAdj>,
    /// Sparse adjacency overlay for edges added after compaction (rule
    /// derivation, streaming appends). Keyed by source (`over_succ`) or
    /// target (`over_pred`) node.
    over_succ: HashMap<NodeId, Vec<(NodeId, EdgeKind)>>,
    over_pred: HashMap<NodeId, Vec<NodeId>>,
    edge_set: HashSet<u64, BuildHasherDefault<EdgeHasher>>,
    edge_kind_counts: Vec<(EdgeKind, usize)>,
    /// Chronological log of every edge ever added (the dedup in
    /// [`SyncGraph::add_edge`] guarantees each appears once). Consumers
    /// that maintain derived state — the semi-naive rule fixpoint —
    /// remember a position in this log and propagate only the suffix.
    edge_log: Vec<(NodeId, NodeId, EdgeKind)>,
}

impl SyncGraph {
    /// Builds the node set and program-order chains for `trace`. No
    /// cross-task edges are added; see `cafa_hb::build` for those.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut g = Self::from_trace_deferred(trace);
        g.compact();
        g
    }

    /// [`from_trace`](SyncGraph::from_trace) without the final
    /// compaction — for batch callers (`cafa_hb::build`) that append
    /// cross-task edges next and compact once at the end.
    pub(crate) fn from_trace_deferred(trace: &Trace) -> Self {
        let task_count = trace.task_count();
        let mut g = SyncGraph {
            nodes: Vec::new(),
            record_nodes: vec![Vec::new(); task_count],
            begin_nodes: Vec::with_capacity(task_count),
            end_nodes: Vec::with_capacity(task_count),
            csr: None,
            over_succ: HashMap::new(),
            over_pred: HashMap::new(),
            edge_set: HashSet::default(),
            edge_kind_counts: Vec::new(),
            edge_log: Vec::new(),
        };
        for info in trace.tasks() {
            let task = info.id;
            let begin = g.push_node(NodeInfo {
                task,
                point: NodePoint::Begin,
            });
            g.begin_nodes.push(begin);
            let mut prev = begin;
            for (i, r) in trace.body(task).iter().enumerate() {
                if r.is_sync() {
                    let n = g.push_node(NodeInfo {
                        task,
                        point: NodePoint::Record(i as u32),
                    });
                    g.record_nodes[task.index()].push((i as u32, n));
                    g.add_edge(prev, n, EdgeKind::Program);
                    prev = n;
                }
            }
            let end = g.push_node(NodeInfo {
                task,
                point: NodePoint::End,
            });
            g.end_nodes.push(end);
            g.add_edge(prev, end, EdgeKind::Program);
        }
        g
    }

    /// Builds a *skeleton* graph for a trace whose task table is
    /// complete but whose bodies may still be streaming in: `begin`/
    /// `end` nodes for every task and nothing else. Record nodes are
    /// added later with [`append_record`] and each task's final
    /// `tail → end` program edge with [`seal_task`].
    ///
    /// [`append_record`]: SyncGraph::append_record
    /// [`seal_task`]: SyncGraph::seal_task
    pub fn skeleton(trace: &Trace) -> Self {
        let task_count = trace.task_count();
        let mut g = SyncGraph {
            nodes: Vec::new(),
            record_nodes: vec![Vec::new(); task_count],
            begin_nodes: Vec::with_capacity(task_count),
            end_nodes: Vec::with_capacity(task_count),
            // Streaming appends interleave edge insertion with queries,
            // so the skeleton starts "compacted" (an empty CSR) and
            // every edge lands in the sparse overlay.
            csr: Some(CsrAdj::default()),
            over_succ: HashMap::new(),
            over_pred: HashMap::new(),
            edge_set: HashSet::default(),
            edge_kind_counts: Vec::new(),
            edge_log: Vec::new(),
        };
        for info in trace.tasks() {
            let task = info.id;
            let begin = g.push_node(NodeInfo {
                task,
                point: NodePoint::Begin,
            });
            g.begin_nodes.push(begin);
            let end = g.push_node(NodeInfo {
                task,
                point: NodePoint::End,
            });
            g.end_nodes.push(end);
        }
        g
    }

    /// The current program-order tail of `task`: its latest appended
    /// sync record, or `begin(task)` if none.
    fn tail(&self, task: TaskId) -> NodeId {
        self.record_nodes[task.index()]
            .last()
            .map_or(self.begin(task), |&(_, n)| n)
    }

    /// Appends the sync record at body index `index` of `task` to a
    /// skeleton graph, chaining it after the task's current tail.
    ///
    /// Indices must be appended in increasing order per task, before
    /// [`seal_task`](SyncGraph::seal_task) is called for that task.
    pub fn append_record(&mut self, task: TaskId, index: u32) -> NodeId {
        debug_assert!(
            self.record_nodes[task.index()]
                .last()
                .map_or(true, |&(i, _)| i < index),
            "record indices must be appended in order"
        );
        let tail = self.tail(task);
        let n = self.push_node(NodeInfo {
            task,
            point: NodePoint::Record(index),
        });
        self.record_nodes[task.index()].push((index, n));
        self.add_edge(tail, n, EdgeKind::Program);
        n
    }

    /// Closes `task`'s program-order chain in a skeleton graph, adding
    /// the final `tail → end(task)` edge. Idempotent.
    pub fn seal_task(&mut self, task: TaskId) {
        let tail = self.tail(task);
        self.add_edge(tail, self.end(task), EdgeKind::Program);
    }

    fn push_node(&mut self, info: NodeInfo) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(info);
        id
    }

    /// Adds an edge if absent; returns true if newly added.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) -> bool {
        if from == to || !self.edge_set.insert(edge_key(from, to)) {
            return false;
        }
        if self.csr.is_some() {
            self.over_succ.entry(from).or_default().push((to, kind));
            self.over_pred.entry(to).or_default().push(from);
        }
        self.edge_log.push((from, to, kind));
        match self.edge_kind_counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.edge_kind_counts.push((kind, 1)),
        }
        true
    }

    /// Rebuilds the flat CSR adjacency from the full edge log and
    /// clears the overlay. Two counting passes over the log — no
    /// per-node allocation.
    pub(crate) fn compact(&mut self) {
        let n = self.nodes.len();
        let m = self.edge_log.len();
        let mut succ_off = vec![0u32; n + 1];
        let mut pred_off = vec![0u32; n + 1];
        for &(from, to, _) in &self.edge_log {
            succ_off[from as usize + 1] += 1;
            pred_off[to as usize + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        let mut succ = vec![(0 as NodeId, EdgeKind::Program); m];
        let mut pred = vec![0 as NodeId; m];
        let mut succ_cur = succ_off.clone();
        let mut pred_cur = pred_off.clone();
        for &(from, to, kind) in &self.edge_log {
            let s = &mut succ_cur[from as usize];
            succ[*s as usize] = (to, kind);
            *s += 1;
            let p = &mut pred_cur[to as usize];
            pred[*p as usize] = from;
            *p += 1;
        }
        self.csr = Some(CsrAdj {
            succ_off,
            succ,
            pred_off,
            pred,
        });
        self.over_succ.clear();
        self.over_pred.clear();
    }

    /// The compacted successor slice of `n` (empty when `n` postdates
    /// the last compaction).
    fn csr_succs(&self, n: NodeId) -> &[(NodeId, EdgeKind)] {
        let Some(c) = &self.csr else {
            panic!("adjacency queried on a deferred graph (missing compact())");
        };
        let i = n as usize;
        if i + 1 >= c.succ_off.len() {
            return &[];
        }
        &c.succ[c.succ_off[i] as usize..c.succ_off[i + 1] as usize]
    }

    /// The compacted predecessor slice of `n`.
    fn csr_preds(&self, n: NodeId) -> &[NodeId] {
        let Some(c) = &self.csr else {
            panic!("adjacency queried on a deferred graph (missing compact())");
        };
        let i = n as usize;
        if i + 1 >= c.pred_off.len() {
            return &[];
        }
        &c.pred[c.pred_off[i] as usize..c.pred_off[i + 1] as usize]
    }

    /// The chronological edge log: every edge of the graph, in the
    /// order it was added. `edge_log()[k..]` is exactly the set of
    /// edges added since the log was `k` entries long, which is what
    /// the semi-naive fixpoint propagates between rounds and between
    /// incremental derivation calls.
    pub fn edge_log(&self) -> &[(NodeId, NodeId, EdgeKind)] {
        &self.edge_log
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_set.len()
    }

    /// Per-kind edge counts, for derivation statistics.
    pub fn edge_kind_counts(&self) -> &[(EdgeKind, usize)] {
        &self.edge_kind_counts
    }

    /// Metadata of node `n`.
    pub fn node(&self, n: NodeId) -> NodeInfo {
        self.nodes[n as usize]
    }

    /// The `begin(t)` node.
    pub fn begin(&self, task: TaskId) -> NodeId {
        self.begin_nodes[task.index()]
    }

    /// The `end(t)` node.
    pub fn end(&self, task: TaskId) -> NodeId {
        self.end_nodes[task.index()]
    }

    /// The node of the sync record at `at`, or `None` if the record
    /// there is not a sync record.
    pub fn node_of(&self, at: OpRef) -> Option<NodeId> {
        let list = &self.record_nodes[at.task.index()];
        list.binary_search_by_key(&at.index, |&(i, _)| i)
            .ok()
            .map(|pos| list[pos].1)
    }

    /// The earliest sync node that happens-at-or-after the record at
    /// `at`: the record's own node if it is a sync record, otherwise the
    /// next sync node of the task (or `end(t)`).
    ///
    /// Everything reachable from this node happens after `at`.
    pub fn bracket_after(&self, at: OpRef) -> NodeId {
        let list = &self.record_nodes[at.task.index()];
        match list.binary_search_by_key(&at.index, |&(i, _)| i) {
            Ok(pos) => list[pos].1,
            Err(pos) => list.get(pos).map_or(self.end(at.task), |&(_, n)| n),
        }
    }

    /// The latest sync node that happens-at-or-before the record at
    /// `at`: the record's own node if it is a sync record, otherwise the
    /// previous sync node of the task (or `begin(t)`).
    ///
    /// Everything that reaches this node happens before `at`.
    pub fn bracket_before(&self, at: OpRef) -> NodeId {
        let list = &self.record_nodes[at.task.index()];
        match list.binary_search_by_key(&at.index, |&(i, _)| i) {
            Ok(pos) => list[pos].1,
            Err(0) => self.begin(at.task),
            Err(pos) => list[pos - 1].1,
        }
    }

    /// Successors of `n`, with the kind of the connecting edge:
    /// the compacted CSR slice followed by any overlay edges added
    /// since the last compaction (chronological within each part).
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeKind)> + '_ {
        let over = self.over_succ.get(&n).map_or(&[][..], Vec::as_slice);
        self.csr_succs(n).iter().chain(over).copied()
    }

    /// Predecessors of `n` (CSR slice, then overlay).
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let over = self.over_pred.get(&n).map_or(&[][..], Vec::as_slice);
        self.csr_preds(n).iter().chain(over).copied()
    }

    /// All nodes in a topological order, or `Err` with the nodes of some
    /// cycle if the graph is cyclic (which indicates an inconsistent
    /// trace — the happens-before relation of a real execution is
    /// acyclic).
    pub fn topo_order(&self) -> Result<Vec<NodeId>, Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree: Vec<u32> = vec![0; n];
        for &(_, to, _) in &self.edge_log {
            indegree[to as usize] += 1;
        }
        let mut stack: Vec<NodeId> = (0..n as NodeId)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(node) = stack.pop() {
            order.push(node);
            for (s, _) in self.succs(node) {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    stack.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err((0..n as NodeId)
                .filter(|&i| indegree[i as usize] > 0)
                .collect())
        }
    }

    /// Depth-first reachability: is there a non-empty path `from → to`?
    ///
    /// `scratch` must be a [`BitSet`] of capacity [`node_count`]
    /// (cleared by this function), letting callers amortize the
    /// allocation across queries.
    ///
    /// [`node_count`]: SyncGraph::node_count
    pub fn reaches(&self, from: NodeId, to: NodeId, scratch: &mut BitSet) -> bool {
        scratch.clear();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            for (s, _) in self.succs(n) {
                if s == to {
                    return true;
                }
                if scratch.insert(s as usize) {
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Finds a shortest edge path `from → to`, returning the traversed
    /// `(source, kind, destination)` steps, or `None` if unreachable.
    /// Used to *explain* a derived ordering.
    pub fn find_path(&self, from: NodeId, to: NodeId) -> Option<Vec<(NodeId, EdgeKind, NodeId)>> {
        use std::collections::VecDeque;
        if from == to {
            return Some(Vec::new());
        }
        let mut parent: Vec<Option<(NodeId, EdgeKind)>> = vec![None; self.nodes.len()];
        let mut queue = VecDeque::from([from]);
        let mut seen = BitSet::new(self.nodes.len());
        seen.insert(from as usize);
        while let Some(n) = queue.pop_front() {
            for (s, kind) in self.succs(n) {
                if !seen.insert(s as usize) {
                    continue;
                }
                parent[s as usize] = Some((n, kind));
                if s == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, k) = parent[cur as usize].expect("parent chain");
                        path.push((p, k, cur));
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(s);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{TraceBuilder, VarId};

    fn two_task_trace() -> (Trace, TaskId, TaskId) {
        let mut b = TraceBuilder::new("g");
        let p = b.add_process();
        let main = b.add_thread(p, "main");
        b.read(main, VarId::new(0)); // idx 0, data
        let child = b.fork(main, p, "w"); // idx 1, sync
        b.write(main, VarId::new(0)); // idx 2, data
        b.join(main, child); // idx 3, sync
        b.read(child, VarId::new(1)); // child idx 0, data
        let t = b.finish().unwrap();
        (t, main, child)
    }

    #[test]
    fn nodes_and_chains() {
        let (t, main, child) = two_task_trace();
        let g = SyncGraph::from_trace(&t);
        // main: begin, fork, join, end = 4; child: begin, end = 2.
        assert_eq!(g.node_count(), 6);
        // chain edges: main 3, child 1.
        assert_eq!(g.edge_count(), 4);
        assert_ne!(g.begin(main), g.end(main));
        assert_eq!(g.node(g.begin(child)).task, child);
        assert_eq!(g.node(g.begin(child)).point, NodePoint::Begin);
    }

    #[test]
    fn brackets() {
        let (t, main, _child) = two_task_trace();
        let g = SyncGraph::from_trace(&t);
        let fork_node = g.node_of(OpRef::new(main, 1)).unwrap();
        let join_node = g.node_of(OpRef::new(main, 3)).unwrap();
        assert_eq!(g.node_of(OpRef::new(main, 0)), None); // data record

        // Data record at idx 0: after-bracket = fork, before-bracket = begin.
        assert_eq!(g.bracket_after(OpRef::new(main, 0)), fork_node);
        assert_eq!(g.bracket_before(OpRef::new(main, 0)), g.begin(main));
        // Data record at idx 2: between fork and join.
        assert_eq!(g.bracket_after(OpRef::new(main, 2)), join_node);
        assert_eq!(g.bracket_before(OpRef::new(main, 2)), fork_node);
        // Sync records bracket to themselves.
        assert_eq!(g.bracket_after(OpRef::new(main, 1)), fork_node);
        assert_eq!(g.bracket_before(OpRef::new(main, 3)), join_node);
        // Past the last sync record.
        assert_eq!(g.bracket_after(OpRef::new(main, 4)), g.end(main));
    }

    #[test]
    fn add_edge_dedups_and_counts() {
        let (t, main, child) = two_task_trace();
        let mut g = SyncGraph::from_trace(&t);
        let f = g.node_of(OpRef::new(main, 1)).unwrap();
        let cb = g.begin(child);
        assert!(g.add_edge(f, cb, EdgeKind::Fork));
        assert!(!g.add_edge(f, cb, EdgeKind::Fork));
        assert!(!g.add_edge(f, f, EdgeKind::Fork));
        let forks: usize = g
            .edge_kind_counts()
            .iter()
            .filter(|(k, _)| *k == EdgeKind::Fork)
            .map(|(_, n)| *n)
            .sum();
        assert_eq!(forks, 1);
    }

    #[test]
    fn reachability_and_topo() {
        let (t, main, child) = two_task_trace();
        let mut g = SyncGraph::from_trace(&t);
        let f = g.node_of(OpRef::new(main, 1)).unwrap();
        let j = g.node_of(OpRef::new(main, 3)).unwrap();
        g.add_edge(f, g.begin(child), EdgeKind::Fork);
        g.add_edge(g.end(child), j, EdgeKind::Join);

        let mut scratch = BitSet::new(g.node_count());
        assert!(g.reaches(g.begin(main), g.end(child), &mut scratch));
        assert!(g.reaches(f, j, &mut scratch)); // via child
        assert!(!g.reaches(g.end(main), g.begin(main), &mut scratch));
        assert!(!g.reaches(g.begin(child), f, &mut scratch));

        let topo = g.topo_order().expect("acyclic");
        assert_eq!(topo.len(), g.node_count());
        let pos: std::collections::HashMap<NodeId, usize> =
            topo.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        assert!(pos[&f] < pos[&g.begin(child)]);
        assert!(pos[&g.end(child)] < pos[&j]);
    }

    #[test]
    fn skeleton_appends_match_from_trace() {
        let (t, main, child) = two_task_trace();
        let batch = SyncGraph::from_trace(&t);
        let mut g = SyncGraph::skeleton(&t);
        // Begin/end for both tasks, no records, no edges yet.
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        for info in t.tasks() {
            for (i, r) in t.body(info.id).iter().enumerate() {
                if r.is_sync() {
                    g.append_record(info.id, i as u32);
                }
            }
            g.seal_task(info.id);
        }
        assert_eq!(g.node_count(), batch.node_count());
        assert_eq!(g.edge_count(), batch.edge_count());
        // Same structure under task-relative queries.
        let fork = g.node_of(OpRef::new(main, 1)).unwrap();
        assert_eq!(g.node(fork).point, NodePoint::Record(1));
        assert_eq!(g.bracket_before(OpRef::new(main, 0)), g.begin(main));
        assert_eq!(g.bracket_after(OpRef::new(main, 4)), g.end(main));
        let mut scratch = BitSet::new(g.node_count());
        assert!(g.reaches(g.begin(main), g.end(main), &mut scratch));
        assert!(g.reaches(g.begin(child), g.end(child), &mut scratch));
        assert!(!g.reaches(g.begin(main), g.end(child), &mut scratch));
        // Sealing twice is harmless.
        g.seal_task(child);
        assert_eq!(g.edge_count(), batch.edge_count());
    }

    #[test]
    fn reaches_on_trivial_single_task_graph() {
        let mut b = TraceBuilder::new("one");
        let p = b.add_process();
        let main = b.add_thread(p, "main");
        b.read(main, VarId::new(0));
        let t = b.finish().unwrap();
        let g = SyncGraph::from_trace(&t);
        // A lone task with no sync records: just begin and end.
        assert_eq!(g.node_count(), 2);
        let mut scratch = BitSet::new(g.node_count());
        assert!(g.reaches(g.begin(main), g.end(main), &mut scratch));
        // Reachability means a non-empty path; on an acyclic graph no
        // node reaches itself.
        assert!(!g.reaches(g.begin(main), g.begin(main), &mut scratch));
        assert!(!g.reaches(g.end(main), g.end(main), &mut scratch));
        assert!(!g.reaches(g.end(main), g.begin(main), &mut scratch));
    }

    #[test]
    fn reaches_terminates_and_answers_on_cyclic_input() {
        let (t, main, child) = two_task_trace();
        let mut g = SyncGraph::from_trace(&t);
        let f = g.node_of(OpRef::new(main, 1)).unwrap();
        g.add_edge(f, g.begin(child), EdgeKind::Fork);
        g.add_edge(g.end(child), f, EdgeKind::Join); // bogus back edge
        let mut scratch = BitSet::new(g.node_count());
        // The DFS terminates on the cycle and sees paths around it.
        assert!(g.reaches(f, f, &mut scratch));
        assert!(g.reaches(g.begin(child), f, &mut scratch));
        assert!(g.reaches(g.begin(main), g.end(child), &mut scratch));
        // Nodes upstream of the cycle stay unreachable from it.
        assert!(!g.reaches(f, g.begin(main), &mut scratch));
    }

    #[test]
    fn cycle_is_reported() {
        let (t, main, child) = two_task_trace();
        let mut g = SyncGraph::from_trace(&t);
        let f = g.node_of(OpRef::new(main, 1)).unwrap();
        g.add_edge(f, g.begin(child), EdgeKind::Fork);
        g.add_edge(g.end(child), f, EdgeKind::Join); // bogus: makes a cycle
        let cyc = g.topo_order().unwrap_err();
        assert!(!cyc.is_empty());
    }
}
