//! Errors from happens-before model construction.

use std::error::Error;
use std::fmt;

/// A failure while building a happens-before model.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HbError {
    /// The derived happens-before relation contains a cycle. A trace of
    /// a real execution can never produce one; this indicates a
    /// hand-constructed inconsistent trace (e.g. a `perform` before its
    /// `register` in the same task, or forged RPC pairings).
    CyclicHappensBefore {
        /// Number of graph nodes involved in cyclic strongly-connected
        /// components.
        cycle_len: usize,
    },
    /// The rule fixpoint failed to converge within the internal round
    /// limit. Practically unreachable for well-formed traces: each round
    /// adds at least one edge and the edge space is finite, but the
    /// limit bounds runaway growth on adversarial inputs.
    DerivationDiverged {
        /// Rounds executed before giving up.
        rounds: u32,
    },
}

impl fmt::Display for HbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbError::CyclicHappensBefore { cycle_len } => write!(
                f,
                "happens-before relation is cyclic ({cycle_len} nodes in cycles); \
                 the trace is not consistent with any real execution"
            ),
            HbError::DerivationDiverged { rounds } => {
                write!(f, "rule derivation did not converge after {rounds} rounds")
            }
        }
    }
}

impl Error for HbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = HbError::CyclicHappensBefore { cycle_len: 4 };
        assert!(e.to_string().contains('4'));
        let e = HbError::DerivationDiverged { rounds: 64 };
        assert!(e.to_string().contains("64"));
    }
}
