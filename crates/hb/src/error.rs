//! Errors from happens-before model construction.

use std::error::Error;
use std::fmt;

use crate::graph::{NodeId, NodePoint, SyncGraph};

/// A failure while building a happens-before model.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HbError {
    /// The derived happens-before relation contains a cycle. A trace of
    /// a real execution can never produce one; this indicates a
    /// hand-constructed inconsistent trace (e.g. a `perform` before its
    /// `register` in the same task, or forged RPC pairings).
    CyclicHappensBefore {
        /// Number of graph nodes involved in cyclic strongly-connected
        /// components.
        cycle_len: usize,
        /// Human-readable positions of up to the first few such nodes
        /// (`task@begin`, `task@record<i>`, `task@end`), so the report
        /// points at the inconsistent part of the trace.
        cycle_nodes: Vec<String>,
    },
    /// The rule fixpoint failed to converge within the internal round
    /// limit. Practically unreachable for well-formed traces: each round
    /// adds at least one edge and the edge space is finite, but the
    /// limit bounds runaway growth on adversarial inputs.
    DerivationDiverged {
        /// Rounds executed before giving up.
        rounds: u32,
        /// Number of edges the last completed round still derived.
        delta_edges: usize,
        /// Human-readable endpoints of up to the first few edges of
        /// that last delta (`taskA@end → taskB@begin [rule]`), so the
        /// diagnostic names what was still growing.
        last_delta: Vec<String>,
    },
    /// The trace is structurally malformed in a way the happens-before
    /// engine cannot interpret — e.g. an event task with no queue.
    /// Validated traces never produce this; it surfaces hand-built or
    /// corrupted inputs as an error instead of a panic.
    MalformedTrace {
        /// The offending task.
        task: String,
        /// What was wrong with it.
        detail: String,
    },
}

impl HbError {
    /// Builds a [`HbError::CyclicHappensBefore`] from the node set a
    /// failed [`SyncGraph::topo_order`] reports, naming up to eight of
    /// the offending sync points.
    pub fn cyclic(graph: &SyncGraph, nodes: &[NodeId]) -> Self {
        const MAX_NAMED: usize = 8;
        let cycle_nodes = nodes
            .iter()
            .take(MAX_NAMED)
            .map(|&n| {
                let info = graph.node(n);
                match info.point {
                    NodePoint::Begin => format!("{}@begin", info.task),
                    NodePoint::Record(i) => format!("{}@record{}", info.task, i),
                    NodePoint::End => format!("{}@end", info.task),
                }
            })
            .collect();
        HbError::CyclicHappensBefore {
            cycle_len: nodes.len(),
            cycle_nodes,
        }
    }

    /// Builds a [`HbError::DerivationDiverged`] naming up to four edges
    /// of the last round's delta (the suffix of the graph's edge log).
    pub(crate) fn diverged(
        graph: &SyncGraph,
        rounds: u32,
        delta: &[(NodeId, NodeId, crate::graph::EdgeKind)],
    ) -> Self {
        const MAX_NAMED: usize = 4;
        let name = |n: NodeId| {
            let info = graph.node(n);
            match info.point {
                NodePoint::Begin => format!("{}@begin", info.task),
                NodePoint::Record(i) => format!("{}@record{}", info.task, i),
                NodePoint::End => format!("{}@end", info.task),
            }
        };
        let last_delta = delta
            .iter()
            .take(MAX_NAMED)
            .map(|&(from, to, kind)| format!("{} → {} [{kind:?}]", name(from), name(to)))
            .collect();
        HbError::DerivationDiverged {
            rounds,
            delta_edges: delta.len(),
            last_delta,
        }
    }

    /// Builds a [`HbError::DerivationDiverged`] with no edge detail —
    /// for derived relations built on this crate's graph machinery
    /// (e.g. `cafa-predict`'s conflict-gated fixpoint) whose own round
    /// limits trip without a last-delta edge log to name edges from.
    pub fn diverged_after(rounds: u32) -> Self {
        HbError::DerivationDiverged {
            rounds,
            delta_edges: 0,
            last_delta: Vec::new(),
        }
    }
}

impl fmt::Display for HbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbError::CyclicHappensBefore {
                cycle_len,
                cycle_nodes,
            } => {
                write!(
                    f,
                    "happens-before relation is cyclic ({cycle_len} nodes in cycles"
                )?;
                if !cycle_nodes.is_empty() {
                    write!(f, ", at {}", cycle_nodes.join(", "))?;
                }
                write!(f, "); the trace is not consistent with any real execution")
            }
            HbError::DerivationDiverged {
                rounds,
                delta_edges,
                last_delta,
            } => {
                write!(
                    f,
                    "rule derivation did not converge after {rounds} rounds \
                     (last round still derived {delta_edges} edge(s)"
                )?;
                if !last_delta.is_empty() {
                    write!(f, ": {}", last_delta.join(", "))?;
                }
                write!(f, ")")
            }
            HbError::MalformedTrace { task, detail } => {
                write!(f, "malformed trace: task {task}: {detail}")
            }
        }
    }
}

impl Error for HbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = HbError::CyclicHappensBefore {
            cycle_len: 4,
            cycle_nodes: vec!["t1@record2".into()],
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains("t1@record2"));
        let e = HbError::DerivationDiverged {
            rounds: 64,
            delta_edges: 3,
            last_delta: vec!["t7@end → t9@begin [Atomicity]".into()],
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("t7@end"));
        let e = HbError::MalformedTrace {
            task: "t3".into(),
            detail: "event task has no queue".into(),
        };
        assert!(e.to_string().contains("t3"));
        assert!(e.to_string().contains("no queue"));
    }
}
