//! Errors from happens-before model construction.

use std::error::Error;
use std::fmt;

use crate::graph::{NodeId, NodePoint, SyncGraph};

/// A failure while building a happens-before model.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum HbError {
    /// The derived happens-before relation contains a cycle. A trace of
    /// a real execution can never produce one; this indicates a
    /// hand-constructed inconsistent trace (e.g. a `perform` before its
    /// `register` in the same task, or forged RPC pairings).
    CyclicHappensBefore {
        /// Number of graph nodes involved in cyclic strongly-connected
        /// components.
        cycle_len: usize,
        /// Human-readable positions of up to the first few such nodes
        /// (`task@begin`, `task@record<i>`, `task@end`), so the report
        /// points at the inconsistent part of the trace.
        cycle_nodes: Vec<String>,
    },
    /// The rule fixpoint failed to converge within the internal round
    /// limit. Practically unreachable for well-formed traces: each round
    /// adds at least one edge and the edge space is finite, but the
    /// limit bounds runaway growth on adversarial inputs.
    DerivationDiverged {
        /// Rounds executed before giving up.
        rounds: u32,
    },
}

impl HbError {
    /// Builds a [`HbError::CyclicHappensBefore`] from the node set a
    /// failed [`SyncGraph::topo_order`] reports, naming up to eight of
    /// the offending sync points.
    pub fn cyclic(graph: &SyncGraph, nodes: &[NodeId]) -> Self {
        const MAX_NAMED: usize = 8;
        let cycle_nodes = nodes
            .iter()
            .take(MAX_NAMED)
            .map(|&n| {
                let info = graph.node(n);
                match info.point {
                    NodePoint::Begin => format!("{}@begin", info.task),
                    NodePoint::Record(i) => format!("{}@record{}", info.task, i),
                    NodePoint::End => format!("{}@end", info.task),
                }
            })
            .collect();
        HbError::CyclicHappensBefore {
            cycle_len: nodes.len(),
            cycle_nodes,
        }
    }
}

impl fmt::Display for HbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbError::CyclicHappensBefore {
                cycle_len,
                cycle_nodes,
            } => {
                write!(
                    f,
                    "happens-before relation is cyclic ({cycle_len} nodes in cycles"
                )?;
                if !cycle_nodes.is_empty() {
                    write!(f, ", at {}", cycle_nodes.join(", "))?;
                }
                write!(f, "); the trace is not consistent with any real execution")
            }
            HbError::DerivationDiverged { rounds } => {
                write!(f, "rule derivation did not converge after {rounds} rounds")
            }
        }
    }
}

impl Error for HbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = HbError::CyclicHappensBefore {
            cycle_len: 4,
            cycle_nodes: vec!["t1@record2".into()],
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains("t1@record2"));
        let e = HbError::DerivationDiverged { rounds: 64 };
        assert!(e.to_string().contains("64"));
    }
}
