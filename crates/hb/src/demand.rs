//! Demand-driven derivation of the §3.3 atomicity and queue rules.
//!
//! The eager engine in [`crate::rules`] materializes every derived edge
//! up front; its per-event pair memos and reachability rows grow
//! quadratically with the event count, which walls out million-event
//! traces. This module answers the same happens-before queries *lazily*:
//!
//! * A query `reaches(a, b)` computes the **cone** of `b` — the set of
//!   nodes that reach `b` over base edges plus the derived edges fired
//!   so far — by a reverse BFS, memoized per target node.
//! * Every §3.3 rule concludes an edge *into `begin(e)`* of some event
//!   `e` (the anchor). Walking a cone therefore tells us exactly which
//!   anchors could still contribute to it: the events whose begin nodes
//!   it visits. Those anchors are **settled** — their rule premises
//!   evaluated against the current closure — before the cone is trusted.
//! * Settling an anchor may fire new derived edges, which can enable
//!   further premises (the rules are self-referential). A settlement
//!   *episode* therefore loops passes with **round semantics**: each
//!   pass evaluates unsettled anchors against the relation as of pass
//!   start, batches its conclusions, and applies them only when the
//!   pass drains. The episode stops when a pass fires nothing. This is
//!   a local fixpoint: it converges to the restriction of the global
//!   least fixpoint to the queried cone, so answers are identical to
//!   the eager engine's (see `docs/SCALE.md` for the argument).
//! * Applying a batch invalidates **only what the new edges can
//!   affect**: a forward sweep from the edges' target nodes finds every
//!   node whose cone may have grown, and un-settles exactly the anchors
//!   with a premise target in that region (plus the settled roots
//!   there). Islands the batch cannot reach keep their memos — on
//!   fleet-scale traces this keeps total rule work proportional to the
//!   cones the detector actually probes.
//! * A conclusion already implied by the pass-start relation is **not**
//!   materialized (the per-anchor suppression set is the strict cone of
//!   `begin(anchor)`). That is transitive reduction on insert: the
//!   derived set stays near-linear, and since a suppressed edge adds
//!   nothing to the closure, answers are unaffected.

use std::collections::{HashMap, HashSet};

use crate::config::CausalityConfig;
use crate::graph::{EdgeKind, NodeId, SyncGraph};
use crate::rules::{EventTable, SendSite};

/// Counters for `--timings`: how much lazy rule work a run performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DemandStats {
    /// Happens-before queries answered through the demand engine.
    pub queries: u64,
    /// Rule premises evaluated (candidate pairs actually examined).
    pub premises: u64,
    /// Derived edges materialized.
    pub edges_materialized: u64,
    /// Conclusions skipped because the current relation already implied
    /// them (transitive reduction on insert).
    pub suppressed: u64,
}

/// The demand-driven query engine over one sync graph.
///
/// The core does not own the graph — every method borrows it — so the
/// same core can follow a growing graph (the incremental path calls
/// [`DemandCore::sync_graph`] before querying). Derived edges live here,
/// never in the graph itself.
#[derive(Debug)]
pub struct DemandCore {
    config: CausalityConfig,
    table: EventTable,
    /// Send sites registered so far, in ingestion order.
    sends: Vec<SendSite>,
    /// Per dense event: the send that posted it, if registered.
    send_of_event: Vec<Option<u32>>,
    /// Per queue: indices of `sendAtFront` sites (rules 2/4 candidates).
    front_sends: Vec<Vec<u32>>,
    /// Per queue: dense events it processes (invalidation fan-out when
    /// a new front send changes the rules-2/4 candidate set).
    events_of_queue: Vec<Vec<u32>>,

    // ---- per-node marks (grown with the graph) ----
    /// Node → dense event whose `begin` it is.
    begin_event_of: Vec<u32>,
    /// Node → dense event whose `end` it is.
    end_event_of: Vec<u32>,
    /// Node → send-site index posted at it.
    send_of_node: Vec<u32>,

    // ---- derived-edge store ----
    /// Per dense event `j`: sources of derived edges into `begin(e_j)`.
    derived_in: Vec<Vec<(NodeId, EdgeKind)>>,
    /// Forward adjacency of the derived edges, for path explanations
    /// and the invalidation sweep.
    derived_out: HashMap<NodeId, Vec<(NodeId, EdgeKind)>>,

    // ---- settlement state ----
    /// Per dense event: premises evaluated and still current. Cleared
    /// by the invalidation sweep for exactly the anchors a new edge
    /// batch (or graph growth) can affect.
    settled: Vec<bool>,
    /// How many entries of `settled` are currently true. Together with
    /// the memo maps this tells the growth path whether there is any
    /// state an invalidation sweep could protect at all.
    settled_count: usize,
    /// Roots whose settlement episode completed and whose cone region
    /// has not been invalidated since: a repeat query skips settlement.
    settled_roots: HashSet<NodeId>,
    /// Conclusions `(anchor, begin(anchor), src, kind)` awaiting
    /// end-of-pass application (round semantics: edges fired in a pass
    /// become visible to premises only in the next pass, so the
    /// relation is stable for a whole pass).
    pending: Vec<(u32, NodeId, NodeId, EdgeKind)>,
    /// Reusable buffer for cone collection — cones are consumed
    /// immediately (anchor evaluation, work enqueueing), never stored:
    /// materializing and caching them cost more in memory traffic than
    /// the bounded island-local BFS they saved.
    cone_scratch: Vec<NodeId>,

    // ---- epoch-marked scratch (no per-use clearing) ----
    visit_mark: Vec<u32>,
    visit_epoch: u32,
    sup_mark: Vec<u32>,
    sup_epoch: u32,
    work_mark: Vec<u32>,
    work_epoch: u32,
    fwd_mark: Vec<u32>,
    fwd_epoch: u32,
    /// BFS scratch stacks.
    bfs_stack: Vec<NodeId>,
    sup_stack: Vec<NodeId>,
    fwd_stack: Vec<NodeId>,

    // ---- growth cursors ----
    nodes_seen: usize,
    edges_seen: usize,

    stats: DemandStats,
}

impl DemandCore {
    /// Creates a core for `graph` (its current node set) and the fixed
    /// event table of the trace. Send sites are registered separately
    /// via [`register_sends`](DemandCore::register_sends) so the
    /// incremental path can stream them in.
    pub fn new(graph: &SyncGraph, table: EventTable, config: CausalityConfig) -> Self {
        let ev_count = table.len();
        let queue_count = table
            .queue_of
            .iter()
            .map(|q| q.index() + 1)
            .max()
            .unwrap_or(0);
        let mut events_of_queue = vec![Vec::new(); queue_count];
        for (j, q) in table.queue_of.iter().enumerate() {
            events_of_queue[q.index()].push(j as u32);
        }
        let mut core = Self {
            config,
            sends: Vec::new(),
            send_of_event: vec![None; ev_count],
            front_sends: vec![Vec::new(); queue_count],
            events_of_queue,
            begin_event_of: Vec::new(),
            end_event_of: Vec::new(),
            send_of_node: Vec::new(),
            derived_in: vec![Vec::new(); ev_count],
            derived_out: HashMap::new(),
            settled: vec![false; ev_count],
            settled_count: 0,
            settled_roots: HashSet::new(),
            pending: Vec::new(),
            cone_scratch: Vec::new(),
            visit_mark: Vec::new(),
            visit_epoch: 0,
            sup_mark: Vec::new(),
            sup_epoch: 0,
            work_mark: Vec::new(),
            work_epoch: 0,
            fwd_mark: Vec::new(),
            fwd_epoch: 0,
            bfs_stack: Vec::new(),
            sup_stack: Vec::new(),
            fwd_stack: Vec::new(),
            nodes_seen: 0,
            edges_seen: 0,
            stats: DemandStats::default(),
            table,
        };
        core.sync_graph(graph);
        core
    }

    /// A snapshot of the work counters.
    pub fn stats(&self) -> DemandStats {
        self.stats
    }

    /// Registers send sites appended since the last call and un-settles
    /// the anchors whose premise sets they extend: the posted event
    /// itself (rules 1/3 anchor there) and, for a `sendAtFront`, every
    /// event of the target queue (the rules-2/4 candidate list grew).
    pub fn register_sends(&mut self, graph: &SyncGraph, sends: &[SendSite]) {
        let mut seeds: Vec<NodeId> = Vec::new();
        for (i, s) in sends.iter().enumerate().skip(self.sends.len()) {
            let i = i as u32;
            if let Some(j) = self.table.dense(s.event) {
                if self.send_of_event[j as usize].is_none() {
                    self.send_of_event[j as usize] = Some(i);
                    if self.settled[j as usize] {
                        seeds.push(graph.begin(s.event));
                    }
                }
            }
            if s.front {
                if s.queue.index() >= self.front_sends.len() {
                    self.front_sends.resize(s.queue.index() + 1, Vec::new());
                    self.events_of_queue.resize(s.queue.index() + 1, Vec::new());
                }
                self.front_sends[s.queue.index()].push(i);
                for &j in &self.events_of_queue[s.queue.index()] {
                    if self.settled[j as usize] {
                        seeds.push(graph.begin(self.table.events[j as usize]));
                    }
                }
            }
            let n = s.node as usize;
            if n >= self.send_of_node.len() {
                self.send_of_node.resize(n + 1, u32::MAX);
            }
            self.send_of_node[n] = i;
            self.sends.push(*s);
        }
        if !seeds.is_empty() {
            self.invalidate_from(graph, &seeds);
        }
    }

    /// Follows graph growth: extends the per-node mark arrays and runs
    /// the invalidation sweep from the targets of every edge appended
    /// since the last call. Derived edges are kept: graph growth is
    /// monotone, so a premise that held keeps holding — but cones,
    /// settled anchors, and settled roots downstream of a new edge are
    /// stale and get dropped.
    pub fn sync_graph(&mut self, graph: &SyncGraph) {
        let n = graph.node_count();
        if n > self.begin_event_of.len() {
            self.begin_event_of.resize(n, u32::MAX);
            self.end_event_of.resize(n, u32::MAX);
            if self.send_of_node.len() < n {
                self.send_of_node.resize(n, u32::MAX);
            }
            self.visit_mark.resize(n, 0);
            self.sup_mark.resize(n, 0);
            self.fwd_mark.resize(n, 0);
            // Begin/end nodes exist from the first sync (skeleton), but
            // re-marking is idempotent and cheap relative to growth.
            for (j, &e) in self.table.events.iter().enumerate() {
                self.begin_event_of[graph.begin(e) as usize] = j as u32;
                self.end_event_of[graph.end(e) as usize] = j as u32;
            }
        }
        if self.work_mark.len() < self.table.len() {
            self.work_mark.resize(self.table.len(), 0);
        }
        self.nodes_seen = n;
        let log = graph.edge_log();
        if log.len() > self.edges_seen {
            // Before the first query nothing is memoized, so there is
            // nothing a sweep could protect: construction (and every
            // pre-query streaming seal) just advances the cursor
            // instead of walking the entire appended edge suffix.
            if self.has_memo() {
                let seeds: Vec<NodeId> =
                    log[self.edges_seen..].iter().map(|&(_, b, _)| b).collect();
                self.invalidate_from(graph, &seeds);
            }
            self.edges_seen = log.len();
        }
    }

    /// Is there any memoized state — settled anchors or settled roots —
    /// that a graph extension could invalidate?
    fn has_memo(&self) -> bool {
        self.settled_count > 0 || !self.settled_roots.is_empty()
    }

    /// Is there a non-empty path `from → to` in the full derived
    /// relation? Settles every anchor the answer could depend on first.
    pub fn reaches(&mut self, graph: &SyncGraph, from: NodeId, to: NodeId) -> bool {
        self.sync_graph(graph);
        self.stats.queries += 1;
        self.settle(graph, to);
        from != to && self.cone_contains(graph, to, from)
    }

    /// Event-level order: `end(e1) ≺ begin(e2)` in the full relation.
    pub fn event_before(&mut self, graph: &SyncGraph, e1: u32, e2: u32) -> bool {
        if e1 == e2 {
            return false;
        }
        let from = graph.end(self.table.events[e1 as usize]);
        let to = graph.begin(self.table.events[e2 as usize]);
        self.reaches(graph, from, to)
    }

    /// A causal path `from → to` over base plus derived edges, as
    /// `(source, kind, target)` steps. `None` when not reachable.
    pub fn find_path(
        &mut self,
        graph: &SyncGraph,
        from: NodeId,
        to: NodeId,
    ) -> Option<Vec<(NodeId, EdgeKind, NodeId)>> {
        if !self.reaches(graph, from, to) {
            return None;
        }
        // Forward BFS with parent tracking; the derived edges live in
        // `derived_out`, the rest in the graph.
        let mut parent: HashMap<NodeId, (NodeId, EdgeKind)> = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        'bfs: while let Some(n) = queue.pop_front() {
            let derived = self.derived_out.get(&n).map_or(&[][..], Vec::as_slice);
            for (t, kind) in graph.succs(n).chain(derived.iter().copied()) {
                if t == from || parent.contains_key(&t) {
                    continue;
                }
                parent.insert(t, (n, kind));
                if t == to {
                    break 'bfs;
                }
                queue.push_back(t);
            }
        }
        let mut steps = Vec::new();
        let mut at = to;
        while at != from {
            let &(p, kind) = parent.get(&at)?;
            steps.push((p, kind, at));
            at = p;
        }
        steps.reverse();
        Some(steps)
    }

    // ---- settlement ----------------------------------------------------

    /// Brings the relation to its fixpoint restricted to the cone of
    /// `root`: loops settlement passes until one completes without
    /// firing an edge.
    ///
    /// Each pass evaluates premises against the relation **as of pass
    /// start**: conclusions accumulate in [`DemandCore::pending`] and
    /// the batch is applied only after the pass drains — exactly the
    /// round semantics of the eager engine's naive loop, so passes
    /// converge in closure depth, not in fired-edge count, and cone
    /// memos survive a whole pass instead of thrashing per edge.
    fn settle(&mut self, graph: &SyncGraph, root: NodeId) {
        if self.settled_roots.contains(&root) {
            return;
        }
        loop {
            self.next_work_epoch();
            let mut work: Vec<u32> = Vec::new();
            let mut cone = std::mem::take(&mut self.cone_scratch);
            self.collect_cone(graph, root, &mut cone);
            self.enqueue_unsettled(&cone, &mut work);
            self.cone_scratch = cone;
            while let Some(j) = work.pop() {
                if self.settled[j as usize] {
                    continue;
                }
                self.settle_anchor(graph, j, &mut work);
            }
            if !self.apply_pending(graph) {
                self.settled_roots.insert(root);
                return;
            }
        }
    }

    fn next_work_epoch(&mut self) {
        if self.work_epoch == u32::MAX {
            self.work_mark.fill(0);
            self.work_epoch = 0;
        }
        self.work_epoch += 1;
    }

    /// Pushes every not-yet-settled event whose begin node appears in
    /// `cone`, deduplicated against the pass's work list.
    fn enqueue_unsettled(&mut self, cone: &[NodeId], work: &mut Vec<u32>) {
        for &n in cone {
            let j = self.begin_event_of[n as usize];
            if j != u32::MAX
                && !self.settled[j as usize]
                && self.work_mark[j as usize] != self.work_epoch
            {
                self.work_mark[j as usize] = self.work_epoch;
                work.push(j);
            }
        }
    }

    /// Evaluates every rule anchored at event `j` against the pass-start
    /// relation, queueing conclusions not already implied. Marks the
    /// anchor settled; if its conclusions land, the apply-time
    /// invalidation sweep un-settles whatever they affect (including
    /// `j` itself, whose next evaluation then finds them implied).
    fn settle_anchor(&mut self, graph: &SyncGraph, j: u32, work: &mut Vec<u32>) {
        if !self.settled[j as usize] {
            self.settled[j as usize] = true;
            self.settled_count += 1;
        }
        let ev = self.table.events[j as usize];
        let begin_j = graph.begin(ev);
        let queue_j = self.table.queue_of[j as usize];

        // Suppression set: the strict cone of begin(e_j) at pass start.
        self.next_sup_epoch();
        self.sup_stack.clear();
        self.sup_seed(graph, begin_j);
        self.sup_drain(graph);

        // Atomicity: for events e1 of the same queue whose begin reaches
        // end(e_j), conclude end(e1) → begin(e_j).
        if self.config.atomicity_rule {
            let end_j = graph.end(ev);
            let mut cone = std::mem::take(&mut self.cone_scratch);
            self.collect_cone(graph, end_j, &mut cone);
            self.enqueue_unsettled(&cone, work);
            for &n in &cone {
                let i1 = self.begin_event_of[n as usize];
                if i1 != u32::MAX && i1 != j && self.table.queue_of[i1 as usize] == queue_j {
                    self.stats.premises += 1;
                    let src = graph.end(self.table.events[i1 as usize]);
                    self.propose_edge(j, begin_j, src, EdgeKind::Atomicity);
                }
            }
            self.cone_scratch = cone;
        }

        if !self.config.queue_rules {
            return;
        }
        let Some(sj) = self.send_of_event[j as usize] else {
            return;
        };
        let s2 = self.sends[sj as usize];

        // Rules 1/3 (anchor posted without sendAtFront): earlier sends
        // to the same queue whose site reaches this send's site, with a
        // front flag or a no-greater delay, order their event before
        // this one.
        if !s2.front {
            let mut cone = std::mem::take(&mut self.cone_scratch);
            self.collect_cone(graph, s2.node, &mut cone);
            self.enqueue_unsettled(&cone, work);
            for &n in &cone {
                let i = self.send_of_node[n as usize];
                if i == u32::MAX || i == sj {
                    continue;
                }
                let s1 = self.sends[i as usize];
                if s1.queue != s2.queue {
                    continue;
                }
                self.stats.premises += 1;
                if s1.front || s1.delay_ms <= s2.delay_ms {
                    let kind = EdgeKind::Queue(if s1.front { 3 } else { 1 });
                    let src = graph.end(s1.event);
                    self.propose_edge(j, begin_j, src, kind);
                }
            }
            self.cone_scratch = cone;
        }

        // Rules 2/4 (anchored at the *overtaken* event e1 = e_j): a
        // front send s2 of the same queue, issued after this event's
        // send s1 (premise a: s1's site reaches s2's site) yet itself
        // reaching begin(e1) (premise b), means its event fully ran
        // before e1: end(e_{s2}) → begin(e1).
        let s1 = s2;
        let fronts: &[u32] = self
            .front_sends
            .get(s1.queue.index())
            .map_or(&[], Vec::as_slice);
        // The front list is borrowed immutably while rules fire; take a
        // cheap copy (front sends are rare by construction).
        let fronts: Vec<u32> = fronts.to_vec();
        for fj in fronts {
            if fj == sj {
                continue;
            }
            let s2f = self.sends[fj as usize];
            self.stats.premises += 1;
            // Premise (b): s2's send site strictly reaches begin(e1) —
            // exactly membership in the suppression cone.
            if self.sup_mark[s2f.node as usize] != self.sup_epoch {
                continue;
            }
            // Premise (a): s1's send site strictly reaches s2's.
            let mut cone = std::mem::take(&mut self.cone_scratch);
            self.collect_cone(graph, s2f.node, &mut cone);
            self.enqueue_unsettled(&cone, work);
            let premise_a = s1.node != s2f.node && cone.contains(&s1.node);
            self.cone_scratch = cone;
            if premise_a {
                let kind = EdgeKind::Queue(if s1.front { 4 } else { 2 });
                let src = graph.end(s2f.event);
                self.propose_edge(j, begin_j, src, kind);
            }
        }
    }

    /// Queues `src → begin(e_j)` of `kind` for end-of-pass application
    /// unless the pass-start relation already implies it (suppression =
    /// transitive reduction on insert; the suppression cone is the
    /// anchor's strict cone at pass start).
    fn propose_edge(&mut self, j: u32, begin_j: NodeId, src: NodeId, kind: EdgeKind) {
        if src == begin_j || self.sup_mark[src as usize] == self.sup_epoch {
            self.stats.suppressed += 1;
            return;
        }
        self.pending.push((j, begin_j, src, kind));
    }

    /// Applies the pass's pending conclusions, skipping repeats of
    /// already-materialized edges, then invalidates everything the new
    /// edges can affect. Returns whether the pass fired.
    fn apply_pending(&mut self, graph: &SyncGraph) -> bool {
        let mut seeds: Vec<NodeId> = Vec::new();
        while let Some((j, begin_j, src, kind)) = self.pending.pop() {
            if self.derived_in[j as usize].iter().any(|&(s, _)| s == src) {
                self.stats.suppressed += 1;
                continue;
            }
            self.derived_in[j as usize].push((src, kind));
            self.derived_out
                .entry(src)
                .or_default()
                .push((begin_j, kind));
            self.stats.edges_materialized += 1;
            seeds.push(begin_j);
        }
        if seeds.is_empty() {
            return false;
        }
        self.invalidate_from(graph, &seeds);
        true
    }

    // ---- invalidation ---------------------------------------------------

    /// Un-settles exactly what new edges into `seeds` can affect: a
    /// forward sweep over base + derived edges marks every node whose
    /// cone may have grown; any anchor with a premise-target node in
    /// the marked region is un-settled, memoized cones and settled
    /// roots with a marked target are dropped. Un-settling an anchor
    /// seeds its own begin into the sweep (its future conclusions land
    /// there), closing the dependency chain — so an untouched settled
    /// root really is final.
    fn invalidate_from(&mut self, graph: &SyncGraph, seeds: &[NodeId]) {
        if self.fwd_epoch == u32::MAX {
            self.fwd_mark.fill(0);
            self.fwd_epoch = 0;
        }
        self.fwd_epoch += 1;
        let epoch = self.fwd_epoch;
        self.fwd_stack.clear();
        for &s in seeds {
            if self.fwd_mark[s as usize] != epoch {
                self.fwd_mark[s as usize] = epoch;
                self.fwd_stack.push(s);
            }
        }
        while let Some(n) = self.fwd_stack.pop() {
            self.visit_invalidated(graph, n);
            for (t, _) in graph.succs(n) {
                if self.fwd_mark[t as usize] != epoch {
                    self.fwd_mark[t as usize] = epoch;
                    self.fwd_stack.push(t);
                }
            }
            if let Some(derived) = self.derived_out.get(&n) {
                for i in 0..derived.len() {
                    let (t, _) = self.derived_out[&n][i];
                    if self.fwd_mark[t as usize] != epoch {
                        self.fwd_mark[t as usize] = epoch;
                        self.fwd_stack.push(t);
                    }
                }
            }
        }
        // Drop settled roots inside the marked region; everything
        // outside is provably unaffected.
        let (mark, ep) = (&self.fwd_mark, epoch);
        self.settled_roots.retain(|r| mark[*r as usize] != ep);
    }

    /// Role check for one node reached by the invalidation sweep:
    /// un-settles the anchors whose premises read the node's cone, and
    /// seeds their begin nodes into the sweep.
    fn visit_invalidated(&mut self, graph: &SyncGraph, n: NodeId) {
        let begin_j = self.begin_event_of[n as usize];
        if begin_j != u32::MAX && self.settled[begin_j as usize] {
            // Suppression cone and rules-2/4 premise (b) read cone(begin).
            self.settled[begin_j as usize] = false;
            self.settled_count -= 1;
        }
        let end_j = self.end_event_of[n as usize];
        if end_j != u32::MAX && self.settled[end_j as usize] {
            // Atomicity candidates come from cone(end).
            self.unsettle(graph, end_j);
        }
        let si = self.send_of_node[n as usize];
        if si != u32::MAX {
            let s = self.sends[si as usize];
            // Rules 1/3 for the posted event read cone(send site).
            if let Some(j) = self.table.dense(s.event) {
                if self.send_of_event[j as usize] == Some(si) && self.settled[j as usize] {
                    self.unsettle(graph, j);
                }
            }
            // Rules 2/4 premise (a) reads cone(front-send site) for
            // every anchor of the queue.
            if s.front {
                let queue = s.queue.index();
                for i in 0..self.events_of_queue[queue].len() {
                    let j = self.events_of_queue[queue][i];
                    if self.settled[j as usize] {
                        self.unsettle(graph, j);
                    }
                }
            }
        }
    }

    /// Un-settles anchor `j` and extends the sweep from its begin node
    /// (where its future conclusions would land).
    fn unsettle(&mut self, graph: &SyncGraph, j: u32) {
        if self.settled[j as usize] {
            self.settled[j as usize] = false;
            self.settled_count -= 1;
        }
        let b = graph.begin(self.table.events[j as usize]);
        if self.fwd_mark[b as usize] != self.fwd_epoch {
            self.fwd_mark[b as usize] = self.fwd_epoch;
            self.fwd_stack.push(b);
        }
    }

    // ---- suppression cone (strict reverse reach of begin(e_j)) ---------

    fn next_sup_epoch(&mut self) {
        if self.sup_epoch == u32::MAX {
            self.sup_mark.fill(0);
            self.sup_epoch = 0;
        }
        self.sup_epoch += 1;
    }

    fn sup_insert(&mut self, n: NodeId) {
        if self.sup_mark[n as usize] != self.sup_epoch {
            self.sup_mark[n as usize] = self.sup_epoch;
            self.sup_stack.push(n);
        }
    }

    /// Seeds the suppression cone with the strict predecessors of
    /// `target` (base and derived), excluding the target itself.
    fn sup_seed(&mut self, graph: &SyncGraph, target: NodeId) {
        for p in graph.preds(target) {
            self.sup_insert(p);
        }
        let j = self.begin_event_of[target as usize];
        if j != u32::MAX {
            for i in 0..self.derived_in[j as usize].len() {
                let (src, _) = self.derived_in[j as usize][i];
                self.sup_insert(src);
            }
        }
    }

    fn sup_drain(&mut self, graph: &SyncGraph) {
        while let Some(n) = self.sup_stack.pop() {
            for p in graph.preds(n) {
                self.sup_insert(p);
            }
            let j = self.begin_event_of[n as usize];
            if j != u32::MAX {
                for i in 0..self.derived_in[j as usize].len() {
                    let (src, _) = self.derived_in[j as usize][i];
                    self.sup_insert(src);
                }
            }
        }
    }

    // ---- cone traversal --------------------------------------------------

    fn next_visit_epoch(&mut self) -> u32 {
        if self.visit_epoch == u32::MAX {
            self.visit_mark.fill(0);
            self.visit_epoch = 0;
        }
        self.visit_epoch += 1;
        self.visit_epoch
    }

    /// Collects the cone of `target` — `target` itself plus every node
    /// that strictly reaches it over base + derived edges fired so far —
    /// into `out` (unsorted). Callers pass the reusable
    /// [`cone_scratch`](DemandCore::cone_scratch) buffer.
    fn collect_cone(&mut self, graph: &SyncGraph, target: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let epoch = self.next_visit_epoch();
        self.bfs_stack.clear();
        self.visit_mark[target as usize] = epoch;
        self.bfs_stack.push(target);
        out.push(target);
        while let Some(n) = self.bfs_stack.pop() {
            for p in graph.preds(n) {
                if self.visit_mark[p as usize] != epoch {
                    self.visit_mark[p as usize] = epoch;
                    self.bfs_stack.push(p);
                    out.push(p);
                }
            }
            let j = self.begin_event_of[n as usize];
            if j != u32::MAX {
                for i in 0..self.derived_in[j as usize].len() {
                    let (src, _) = self.derived_in[j as usize][i];
                    if self.visit_mark[src as usize] != epoch {
                        self.visit_mark[src as usize] = epoch;
                        self.bfs_stack.push(src);
                        out.push(src);
                    }
                }
            }
        }
    }

    /// Does `from` appear in the cone of `target`? Same traversal as
    /// [`collect_cone`](DemandCore::collect_cone) but with an early
    /// exit and no materialization — the common case for answering one
    /// settled query.
    fn cone_contains(&mut self, graph: &SyncGraph, target: NodeId, from: NodeId) -> bool {
        if from == target {
            return true;
        }
        let epoch = self.next_visit_epoch();
        self.bfs_stack.clear();
        self.visit_mark[target as usize] = epoch;
        self.bfs_stack.push(target);
        while let Some(n) = self.bfs_stack.pop() {
            for p in graph.preds(n) {
                if p == from {
                    return true;
                }
                if self.visit_mark[p as usize] != epoch {
                    self.visit_mark[p as usize] = epoch;
                    self.bfs_stack.push(p);
                }
            }
            let j = self.begin_event_of[n as usize];
            if j != u32::MAX {
                for i in 0..self.derived_in[j as usize].len() {
                    let (src, _) = self.derived_in[j as usize][i];
                    if src == from {
                        return true;
                    }
                    if self.visit_mark[src as usize] != epoch {
                        self.visit_mark[src as usize] = epoch;
                        self.bfs_stack.push(src);
                    }
                }
            }
        }
        false
    }
}
