//! An indexed, parallel happens-before reachability oracle.
//!
//! [`Graph::reaches`](crate::SyncGraph::reaches) answers one query with
//! a DFS over the whole sync graph. The detector asks that question for
//! every candidate pair, so query volume grows with trace length while
//! each answer re-walks the same edges. [`ReachOracle`] replaces the
//! walk with an index exploiting the structure CAFA graphs always have:
//! every task is a *chain* (a total program order `begin → r₁ → … → rₘ
//! → end`), and cross-task edges are comparatively sparse.
//!
//! # Index layout
//!
//! Each node gets a `(chain, position)` coordinate: the chain is its
//! task, the position is `0` for `begin(t)`, `i + 1` for the sync
//! record at body index `i`, and a `u32::MAX` sentinel for `end(t)`
//! (ends sort after every record, and in a streaming skeleton the end
//! node is created before the chain length is known). `linked_until[c]`
//! is the last position wired into chain `c`'s program order —
//! `u32::MAX` once the chain is sealed — so "walk down the chain from
//! position *p*" is the interval test `p ≤ linked_until[c]`.
//!
//! Cross-chain reachability reduces to *where a path can enter the
//! target chain*:
//!
//! * a **begin matrix** — one bit per `(node, chain)` pair recording
//!   whether the node reaches `begin(chain)` by a non-empty path. Almost
//!   every cross edge (fork, send, external, total-order, atomicity,
//!   queue) targets a begin node, so for most chains this single bit is
//!   the complete answer;
//! * **mid-entry rows** — for the few chains some cross edge enters at a
//!   record (join, notify/wait, register/perform, RPC), a dense `u32`
//!   row holding, per node, the earliest position of that chain the node
//!   reaches. Measured on the catalog apps, fewer than a dozen of
//!   thousands of chains need a row;
//! * **end rows** — for chains whose `end(t)` node has a non-program
//!   in-edge (no §3.3 rule produces one, but [`SyncGraph::add_edge`]
//!   callers can), a dense bit row holding the full "reaches `end(t)`"
//!   answer per node, since such an end is reachable without walking
//!   the chain's program order at all.
//!
//! The structures close over transitivity in one reverse-topological
//! sweep, so [`reaches`](ReachOracle::reaches) is a constant number of
//! array lookups. The begin matrix is sharded into fixed-width column
//! blocks built in parallel by [`std::thread::scope`] workers; block
//! geometry is independent of the worker count, so the index content is
//! bit-identical at any `--threads` setting.

use crate::graph::{EdgeKind, NodeId, NodePoint, SyncGraph};

/// Chain-column words per begin-matrix block. Fixed (not derived from
/// the worker count) so the index layout is thread-count-independent;
/// 4 words = 256 chains per block keeps per-block work well above
/// thread-dispatch cost without starving small worker pools.
const BLOCK_WORDS: usize = 4;

/// Position sentinel for `end(t)` nodes: after every record position.
const END_POS: u32 = u32::MAX;

/// Mid-entry sentinel: no row stored for this chain.
const NO_ROW: u32 = u32::MAX;

/// Resolves a requested thread count: `0` means "auto" — the
/// `CAFA_THREADS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism.
///
/// This is **the** worker-count precedence order for every analysis
/// pool — the reachability index build, the candidate pass, the
/// island-partition fan-out, and the per-app pools of `cafa gen
/// --format counts` and `cafa validate`:
///
/// 1. an explicit request (`--threads N` with N > 0, or a config's
///    `threads` field);
/// 2. `CAFA_THREADS` (positive integer);
/// 3. the machine's available parallelism.
///
/// (`CAFA_FLEET_THREADS` is separate: it only steers
/// `cafa_engine::fleet::default_threads`, the bench harnesses' own
/// default, and is not consulted here.) Reports are byte-identical at
/// any resolved count; the setting trades wall time only.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("CAFA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A constant-time happens-before reachability index over a
/// [`SyncGraph`]; see the [module docs](self) for the layout.
///
/// Answers exactly what [`SyncGraph::reaches`] answers (non-empty-path
/// reachability) on the graph it was built from. The graph must be
/// acyclic — [`build`](ReachOracle::build) reports the offending nodes
/// otherwise.
#[derive(Clone, Debug)]
pub struct ReachOracle {
    /// Per node: owning chain (task index).
    chain: Vec<u32>,
    /// Per node: position within its chain.
    pos: Vec<u32>,
    /// Per chain: last program-order-linked position (`END_POS` once
    /// sealed).
    linked_until: Vec<u32>,
    /// Per chain: its `end(t)` node.
    end_node: Vec<NodeId>,
    /// `u64` words per begin-matrix row (`⌈chains / 64⌉`).
    words_per_row: usize,
    /// Begin matrix in column blocks: block `b` holds words
    /// `[b·BLOCK_WORDS, …)` of every node's row, row-major.
    blocks: Vec<Vec<u64>>,
    /// Per chain: index into `mid_rows`, or `NO_ROW`.
    mid_index: Vec<u32>,
    /// Earliest-reachable-position rows for mid-entry chains.
    mid_rows: Vec<Vec<u32>>,
    /// Per chain: index into `end_rows`, or `NO_ROW`.
    end_index: Vec<u32>,
    /// Full "reaches end(chain)" bit rows (one bit per node) for chains
    /// whose end node has a non-program in-edge.
    end_rows: Vec<Vec<u64>>,
    /// Fingerprint: nodes covered by the index.
    nodes: usize,
    /// Fingerprint: total edges covered by the index.
    edges: usize,
    /// Fingerprint: non-program (cross/derived) edges covered.
    cross_edges: usize,
}

/// Splits a graph's edge count into (program, non-program) totals.
fn edge_split(graph: &SyncGraph) -> (usize, usize) {
    let prog: usize = graph
        .edge_kind_counts()
        .iter()
        .filter(|&&(k, _)| k == EdgeKind::Program)
        .map(|&(_, n)| n)
        .sum();
    (prog, graph.edge_count() - prog)
}

/// Runs `f(global_index, item)` over `items`, split contiguously across
/// at most `workers` scoped threads. With one worker (or one item) runs
/// inline. The partition affects scheduling only — each item's result
/// is a pure function of the item, so output is worker-count-invariant.
fn for_each_partitioned<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let per = items.len().div_ceil(workers.min(items.len()));
    std::thread::scope(|scope| {
        for (ci, chunk) in items.chunks_mut(per).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, item) in chunk.iter_mut().enumerate() {
                    f(ci * per + off, item);
                }
            });
        }
    });
}

impl ReachOracle {
    /// Builds the index for `graph`, computing a topological order
    /// first.
    ///
    /// # Errors
    ///
    /// Returns the nodes participating in cycles if the graph is
    /// cyclic, exactly as [`SyncGraph::topo_order`] reports them.
    pub fn build(graph: &SyncGraph, threads: usize) -> Result<Self, Vec<NodeId>> {
        let topo = graph.topo_order()?;
        Ok(Self::build_with_topo(graph, &topo, threads))
    }

    /// Builds the index for `graph` given an already-computed
    /// topological order of all its nodes (as [`HbModel`] stores).
    ///
    /// [`HbModel`]: crate::HbModel
    ///
    /// # Panics
    ///
    /// Panics if `topo` does not cover the graph.
    pub fn build_with_topo(graph: &SyncGraph, topo: &[NodeId], threads: usize) -> Self {
        let v = graph.node_count();
        assert_eq!(topo.len(), v, "topological order must cover the graph");
        let workers = resolve_threads(threads);

        // Coordinates.
        let mut chain = vec![0u32; v];
        let mut pos = vec![0u32; v];
        let mut chains = 0usize;
        for n in 0..v {
            let info = graph.node(n as NodeId);
            let c = info.task.index();
            chains = chains.max(c + 1);
            chain[n] = c as u32;
            pos[n] = match info.point {
                NodePoint::Begin => 0,
                NodePoint::Record(i) => i + 1,
                NodePoint::End => END_POS,
            };
        }

        let mut end_node = vec![0 as NodeId; chains];
        let mut linked_until = vec![0u32; chains];
        for n in 0..v {
            let c = chain[n] as usize;
            if pos[n] == END_POS {
                end_node[c] = n as NodeId;
            } else if pos[n] > linked_until[c] {
                linked_until[c] = pos[n];
            }
        }
        // One scan over all edges classifies every chain: sealed (the
        // program tail → end edge exists), mid-entry (a cross edge lands
        // on a record), end-entry (a non-program edge lands on the end).
        let mut mid_index = vec![NO_ROW; chains];
        let mut mid_chains: Vec<u32> = Vec::new();
        let mut end_index = vec![NO_ROW; chains];
        let mut end_chains: Vec<u32> = Vec::new();
        for u in 0..v {
            for (s, kind) in graph.succs(u as NodeId) {
                let s = s as usize;
                let c = chain[s];
                if pos[s] == END_POS {
                    if kind == EdgeKind::Program && chain[u] == c {
                        linked_until[c as usize] = END_POS;
                    } else if end_index[c as usize] == NO_ROW {
                        end_index[c as usize] = end_chains.len() as u32;
                        end_chains.push(c);
                    }
                } else if chain[u] != c && pos[s] >= 1 && mid_index[c as usize] == NO_ROW {
                    mid_index[c as usize] = mid_chains.len() as u32;
                    mid_chains.push(c);
                }
            }
        }

        // Begin matrix, built per column block in parallel.
        let words_per_row = chains.div_ceil(64);
        let block_count = words_per_row.div_ceil(BLOCK_WORDS);
        let mut blocks: Vec<Vec<u64>> = (0..block_count)
            .map(|b| vec![0u64; v * Self::block_width_of(words_per_row, b)])
            .collect();
        {
            let (chain, pos) = (&chain, &pos);
            for_each_partitioned(&mut blocks, workers, |b, block| {
                let w0 = b * BLOCK_WORDS;
                let width = Self::block_width_of(words_per_row, b);
                let mut acc = [0u64; BLOCK_WORDS];
                for &u in topo.iter().rev() {
                    acc[..width].fill(0);
                    for (s, _) in graph.succs(u) {
                        let si = s as usize;
                        if pos[si] == 0 {
                            let c = chain[si] as usize;
                            let w = c / 64;
                            if (w0..w0 + width).contains(&w) {
                                acc[w - w0] |= 1u64 << (c % 64);
                            }
                        }
                        let srow = &block[si * width..si * width + width];
                        for (a, &sw) in acc[..width].iter_mut().zip(srow) {
                            *a |= sw;
                        }
                    }
                    let ui = u as usize;
                    block[ui * width..ui * width + width].copy_from_slice(&acc[..width]);
                }
            });
        }

        // Earliest-position rows for the mid-entry chains, in parallel.
        let mut mid_rows: Vec<Vec<u32>> = mid_chains.iter().map(|_| vec![NO_ROW; v]).collect();
        {
            let (chain, pos, mid_chains) = (&chain, &pos, &mid_chains);
            for_each_partitioned(&mut mid_rows, workers, |m, row| {
                let c = mid_chains[m];
                for &u in topo.iter().rev() {
                    let mut e = NO_ROW;
                    for (s, _) in graph.succs(u) {
                        let si = s as usize;
                        if chain[si] == c && pos[si] != END_POS {
                            e = e.min(pos[si]);
                        }
                        e = e.min(row[si]);
                    }
                    row[u as usize] = e;
                }
            });
        }

        // Full reaches-end bit rows for the end-entry chains: those ends
        // are reachable without walking their chain, so the interval
        // logic cannot answer for them.
        let words = v.div_ceil(64);
        let mut end_rows: Vec<Vec<u64>> = end_chains.iter().map(|_| vec![0u64; words]).collect();
        {
            let (end_chains, end_node) = (&end_chains, &end_node);
            for_each_partitioned(&mut end_rows, workers, |m, row| {
                let target = end_node[end_chains[m] as usize];
                for &u in topo.iter().rev() {
                    let hit = graph
                        .succs(u)
                        .any(|(s, _)| s == target || (row[s as usize / 64] >> (s % 64)) & 1 == 1);
                    if hit {
                        row[u as usize / 64] |= 1u64 << (u % 64);
                    }
                }
            });
        }

        let (prog, cross) = edge_split(graph);
        ReachOracle {
            chain,
            pos,
            linked_until,
            end_node,
            words_per_row,
            blocks,
            mid_index,
            mid_rows,
            end_index,
            end_rows,
            nodes: v,
            edges: prog + cross,
            cross_edges: cross,
        }
    }

    /// Words in column block `b` of a matrix with `words_per_row` words.
    fn block_width_of(words_per_row: usize, b: usize) -> usize {
        (words_per_row - b * BLOCK_WORDS).min(BLOCK_WORDS)
    }

    /// Does `from` reach `begin(chain c)` by a non-empty path?
    #[inline]
    fn begin_bit(&self, from: usize, c: u32) -> bool {
        let w = c as usize / 64;
        let b = w / BLOCK_WORDS;
        let width = Self::block_width_of(self.words_per_row, b);
        let word = self.blocks[b][from * width + (w - b * BLOCK_WORDS)];
        (word >> (c % 64)) & 1 == 1
    }

    /// Is there a non-empty path `from → to`?
    ///
    /// Agrees with [`SyncGraph::reaches`] on the indexed graph for every
    /// node pair, including `from == to` (false: the graph is acyclic).
    #[inline]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let (fi, ti) = (from as usize, to as usize);
        let cw = self.chain[ti];
        let pw = self.pos[ti];
        let linked = self.linked_until[cw as usize];
        if pw == END_POS {
            // An end-entry chain's end is reachable off-chain; its bit
            // row is the complete answer (any origin, any path).
            let ei = self.end_index[cw as usize];
            if ei != NO_ROW {
                let row = &self.end_rows[ei as usize];
                return (row[fi / 64] >> (fi % 64)) & 1 == 1;
            }
        }
        if self.chain[fi] == cw {
            // Within a chain, order is positional; reachable only as far
            // as the program chain is wired (an unsealed end node has no
            // incoming edge yet).
            return self.pos[fi] < pw && pw <= linked;
        }
        // Earliest entry position into the target chain: 0 via its begin
        // node, or wherever a mid-entry edge lands.
        let mut entry = if self.begin_bit(fi, cw) { 0 } else { NO_ROW };
        let mi = self.mid_index[cw as usize];
        if mi != NO_ROW {
            entry = entry.min(self.mid_rows[mi as usize][fi]);
        }
        // From the entry the program chain covers [entry, linked_until].
        entry != NO_ROW && pw >= entry && pw <= linked
    }

    /// Nodes covered by the index.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Chains (tasks) covered by the index.
    pub fn chain_count(&self) -> usize {
        self.linked_until.len()
    }

    /// How many chains needed a dense mid-entry row.
    pub fn mid_entry_chains(&self) -> usize {
        self.mid_rows.len()
    }

    /// True when the index still matches `graph` exactly.
    pub fn covers(&self, graph: &SyncGraph) -> bool {
        graph.node_count() == self.nodes && graph.edge_count() == self.edges
    }

    /// Extends the index over a graph that grew by *program-order
    /// appends only* — new record nodes chained at their task's tail
    /// and/or task seals — without touching any existing row. Returns
    /// `false` (leaving the index unchanged and stale) when the growth
    /// is not of that shape and a rebuild is required:
    ///
    /// * any non-program edge was added (a cross or derived edge can
    ///   create reachability between arbitrary existing nodes), or
    /// * a chain was sealed whose end node has outgoing edges (sealing
    ///   makes the whole chain reach those targets, invalidating every
    ///   row upstream of it).
    ///
    /// Appends cannot perturb existing rows: a fresh record node has no
    /// outgoing cross edges, so it reaches no begin and no foreign
    /// chain; nodes that newly reach it do so at a *later* position than
    /// any entry they already had, which the `linked_until` interval
    /// check covers without a matrix update.
    pub fn try_extend(&mut self, graph: &SyncGraph) -> bool {
        let v_new = graph.node_count();
        let (prog, cross) = edge_split(graph);
        if cross != self.cross_edges || v_new < self.nodes {
            return false;
        }
        if v_new == self.nodes && prog + cross == self.edges {
            return true; // nothing changed
        }

        // Stage the new coordinates; commit only if every check passes.
        let mut new_chain = Vec::with_capacity(v_new - self.nodes);
        let mut new_pos = Vec::with_capacity(v_new - self.nodes);
        for n in self.nodes..v_new {
            let info = graph.node(n as NodeId);
            let c = info.task.index();
            if c >= self.linked_until.len() {
                return false; // a new task: not an append
            }
            new_chain.push(c as u32);
            new_pos.push(match info.point {
                NodePoint::Begin => 0,
                NodePoint::Record(i) => i + 1,
                NodePoint::End => END_POS,
            });
        }

        // Recompute linked_until and refuse seals of chains whose end
        // has successors (those need full propagation).
        let mut linked = vec![0u32; self.linked_until.len()];
        let at = |n: usize| {
            if n < self.nodes {
                (self.chain[n], self.pos[n])
            } else {
                (new_chain[n - self.nodes], new_pos[n - self.nodes])
            }
        };
        for n in 0..v_new {
            let (c, p) = at(n);
            if p != END_POS && p > linked[c as usize] {
                linked[c as usize] = p;
            }
        }
        for (c, &end) in self.end_node.iter().enumerate() {
            // Sealed means the program tail → end edge exists (kind
            // checked: a forged non-program edge into the end is not a
            // seal, and forces a rebuild via the cross-count check).
            let sealed = graph.preds(end).any(|p| {
                at(p as usize).0 as usize == c
                    && graph
                        .succs(p)
                        .any(|(s, k)| s == end && k == EdgeKind::Program)
            });
            if sealed {
                if self.linked_until[c] != END_POS && graph.succs(end).next().is_some() {
                    return false; // newly sealed, end has out-edges
                }
                linked[c] = END_POS;
            }
        }

        // Commit: new rows are all-zero / no-entry (see the doc above).
        self.chain.append(&mut new_chain);
        self.pos.append(&mut new_pos);
        self.linked_until = linked;
        for (b, block) in self.blocks.iter_mut().enumerate() {
            let width = Self::block_width_of(self.words_per_row, b);
            block.resize(v_new * width, 0);
        }
        for row in &mut self.mid_rows {
            row.resize(v_new, NO_ROW);
        }
        for row in &mut self.end_rows {
            row.resize(v_new.div_ceil(64), 0);
        }
        self.nodes = v_new;
        self.edges = prog + cross;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;
    use crate::config::CausalityConfig;
    use crate::model::HbModel;
    use cafa_trace::{Trace, TraceBuilder, VarId};

    /// Asserts oracle answers equal DFS answers for every node pair.
    fn assert_matches_dfs(graph: &SyncGraph, oracle: &ReachOracle) {
        let mut scratch = BitSet::new(graph.node_count());
        for u in 0..graph.node_count() as NodeId {
            for w in 0..graph.node_count() as NodeId {
                assert_eq!(
                    oracle.reaches(u, w),
                    graph.reaches(u, w, &mut scratch),
                    "{u} -> {w} diverged"
                );
            }
        }
    }

    fn fork_join_trace() -> Trace {
        let mut b = TraceBuilder::new("oracle");
        let p = b.add_process();
        let main = b.add_thread(p, "main");
        b.read(main, VarId::new(0));
        let child = b.fork(main, p, "w");
        b.write(main, VarId::new(0));
        b.join(main, child);
        b.read(child, VarId::new(1));
        b.finish().unwrap()
    }

    #[test]
    fn matches_dfs_on_fork_join() {
        let trace = fork_join_trace();
        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        for threads in [1, 3] {
            let oracle = ReachOracle::build(model.graph(), threads).unwrap();
            assert_matches_dfs(model.graph(), &oracle);
        }
    }

    #[test]
    fn mid_entry_join_gets_a_row() {
        // end(child) → join-record is a cross edge into a record: main's
        // chain is mid-entry.
        let trace = fork_join_trace();
        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let oracle = ReachOracle::build(model.graph(), 1).unwrap();
        assert_eq!(oracle.mid_entry_chains(), 1);
        assert_eq!(oracle.chain_count(), 2);
        assert!(oracle.covers(model.graph()));
    }

    #[test]
    fn cyclic_graph_is_rejected() {
        let trace = fork_join_trace();
        let mut g = SyncGraph::from_trace(&trace);
        let tasks: Vec<_> = trace.tasks().map(|t| t.id).collect();
        g.add_edge(g.end(tasks[1]), g.begin(tasks[0]), EdgeKind::Join);
        g.add_edge(g.end(tasks[0]), g.begin(tasks[1]), EdgeKind::Fork);
        let err = ReachOracle::build(&g, 1).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn block_layout_spans_word_boundaries() {
        // More chains than one block covers: bits must land in the right
        // block regardless of thread count.
        let mut b = TraceBuilder::new("wide");
        let p = b.add_process();
        let main = b.add_thread(p, "main");
        let mut children = Vec::new();
        for _ in 0..300 {
            children.push(b.fork(main, p, "c"));
        }
        for &c in &children {
            b.join(main, c);
        }
        let trace = b.finish().unwrap();
        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let one = ReachOracle::build(model.graph(), 1).unwrap();
        let eight = ReachOracle::build(model.graph(), 8).unwrap();
        assert!(one.chain_count() > 256);
        assert_matches_dfs(model.graph(), &one);
        assert_matches_dfs(model.graph(), &eight);
    }

    #[test]
    fn end_targeted_cross_edges_get_full_rows() {
        // A cross edge straight into end(child): the end is reachable
        // without walking the child's chain, so the interval logic
        // alone would miss it.
        let trace = fork_join_trace();
        let mut g = SyncGraph::from_trace(&trace);
        let tasks: Vec<_> = trace.tasks().map(|t| t.id).collect();
        g.add_edge(g.begin(tasks[0]), g.end(tasks[1]), EdgeKind::External);
        for threads in [1, 4] {
            let oracle = ReachOracle::build(&g, threads).unwrap();
            assert_matches_dfs(&g, &oracle);
        }
    }

    #[test]
    fn non_program_edge_into_unsealed_end_is_not_a_seal() {
        let trace = fork_join_trace();
        let mut g = SyncGraph::skeleton(&trace);
        let tasks: Vec<_> = trace.tasks().map(|t| t.id).collect();
        g.append_record(tasks[0], 1);
        // Same-chain non-program edge into the unsealed end: only the
        // source (and its upstream) reach the end, not the whole chain.
        let rec = g.node_of(cafa_trace::OpRef::new(tasks[0], 1)).unwrap();
        g.add_edge(rec, g.end(tasks[0]), EdgeKind::External);
        let oracle = ReachOracle::build(&g, 2).unwrap();
        assert_matches_dfs(&g, &oracle);
    }

    #[test]
    fn extend_covers_pure_appends_and_seals() {
        let trace = fork_join_trace();
        let mut g = SyncGraph::skeleton(&trace);
        let mut oracle = ReachOracle::build(&g, 1).unwrap();
        let tasks: Vec<_> = trace.tasks().map(|t| t.id).collect();

        // Appending records and sealing (ends have no out-edges here)
        // extends in place.
        g.append_record(tasks[0], 1);
        assert!(oracle.try_extend(&g));
        assert_matches_dfs(&g, &oracle);
        g.seal_task(tasks[1]);
        assert!(oracle.try_extend(&g));
        assert!(oracle.covers(&g));
        assert_matches_dfs(&g, &oracle);

        // A cross edge forces a rebuild.
        let fork_node = g.node_of(cafa_trace::OpRef::new(tasks[0], 1)).unwrap();
        g.add_edge(fork_node, g.begin(tasks[1]), EdgeKind::Fork);
        assert!(!oracle.try_extend(&g));
        let rebuilt = ReachOracle::build(&g, 1).unwrap();
        assert_matches_dfs(&g, &rebuilt);
    }

    #[test]
    fn extend_refuses_sealing_an_end_with_successors() {
        let trace = fork_join_trace();
        let mut g = SyncGraph::skeleton(&trace);
        let tasks: Vec<_> = trace.tasks().map(|t| t.id).collect();
        // Wire end(child) → begin(main) first (cross), then build.
        g.add_edge(g.end(tasks[1]), g.begin(tasks[0]), EdgeKind::Join);
        let mut oracle = ReachOracle::build(&g, 1).unwrap();
        // Sealing the child now makes its whole chain reach begin(main):
        // existing rows would be stale, so extension must refuse.
        g.seal_task(tasks[1]);
        assert!(!oracle.try_extend(&g));
        let rebuilt = ReachOracle::build(&g, 2).unwrap();
        assert_matches_dfs(&g, &rebuilt);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
