//! The [`HbModel`] facade: build once per trace, query happens-before.

use std::sync::{Mutex, OnceLock};

use cafa_trace::{OpRef, TaskId, Trace};

use crate::bitset::BitSet;
use crate::build::base_graph_with_sends;
use crate::config::CausalityConfig;
use crate::demand::{DemandCore, DemandStats};
use crate::error::HbError;
use crate::graph::{NodeId, SyncGraph};
use crate::oracle::ReachOracle;
use crate::rules::{fixpoint, flow, DerivationStats, EventTable, FixpointState};

/// Event count at and above which [`HbModel::build`] switches from the
/// eager fixpoint (which materializes the full event-order closure —
/// quadratic memory) to the demand-driven engine. Overridable with
/// `CAFA_HB_ENGINE=eager|demand`.
const DEMAND_AUTO_THRESHOLD: usize = 32_768;

/// Engine choice for a build of `ev_count` events.
fn use_demand(ev_count: usize) -> bool {
    match std::env::var("CAFA_HB_ENGINE").ok().as_deref() {
        Some("eager") => false,
        Some("demand") => true,
        _ => ev_count >= DEMAND_AUTO_THRESHOLD,
    }
}

/// Relative order of two operations under a causality model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOrder {
    /// The first operation happens before the second.
    Before,
    /// The second operation happens before the first.
    After,
    /// Neither is ordered with the other: logically concurrent.
    Concurrent,
    /// The two references denote the same operation.
    Same,
}

/// One step of a causal chain returned by [`HbModel::explain`]: the
/// edge of `kind` connecting two sync points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CauseStep {
    /// Source sync point.
    pub from: crate::NodeInfo,
    /// Why the edge exists.
    pub kind: crate::EdgeKind,
    /// Destination sync point.
    pub to: crate::NodeInfo,
}

/// A happens-before model of one trace under one [`CausalityConfig`].
///
/// Building a model constructs the sync graph, installs the base causal
/// edges, runs the atomicity/queue-rule fixpoint of §3.3, and
/// precomputes the event-level order relation. Queries are then cheap:
/// event-level lookups are bit tests and operation-level queries are a
/// bounded graph search.
///
/// # Examples
///
/// ```
/// use cafa_trace::{TraceBuilder, OpRef};
/// use cafa_hb::{HbModel, CausalityConfig, OpOrder};
///
/// // Two events posted with equal delays from the same thread: queue
/// // rule 1 orders them, so CAFA sees A ≺ B.
/// let mut b = TraceBuilder::new("demo");
/// let p = b.add_process();
/// let q = b.add_queue(p);
/// let t = b.add_thread(p, "main");
/// let a = b.post(t, q, "A", 0);
/// let eb = b.post(t, q, "B", 0);
/// b.process_event(a);
/// b.process_event(eb);
/// let trace = b.finish().unwrap();
///
/// let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
/// assert!(model.event_before(a, eb));
/// assert!(!model.event_before(eb, a));
/// ```
#[derive(Debug)]
pub struct HbModel<'t> {
    trace: &'t Trace,
    config: CausalityConfig,
    graph: SyncGraph,
    table: EventTable,
    stats: DerivationStats,
    topo: Vec<NodeId>,
    backend: Backend,
}

/// How a model answers derived-order queries. Both backends compute the
/// same least fixpoint of the §3.3 rules, so every query answers
/// identically; they differ only in when the work happens.
#[derive(Debug)]
enum Backend {
    /// All derived edges materialized at build time (the graph holds
    /// the fixpoint), with the event-order closure as a bit matrix.
    Eager {
        /// Per dense event `e`: events `e'` with `end(e') ≺ begin(e)`.
        before_begin: Vec<BitSet>,
        /// Lazily built constant-time reachability index; once present,
        /// operation-level queries skip the DFS. Answers are identical
        /// either way, so building it never changes a report.
        oracle: OnceLock<Box<ReachOracle>>,
    },
    /// Rules evaluated lazily per query (see `demand.rs`); the
    /// graph holds only base edges. The mutex keeps the model `Sync`
    /// so detector passes can fan queries across threads; answers are
    /// pure functions of the unique least fixpoint, so results do not
    /// depend on thread count or interleaving.
    Demand(Box<Mutex<DemandCore>>),
}

impl Backend {
    fn demand(&self) -> Option<std::sync::MutexGuard<'_, DemandCore>> {
        match self {
            Backend::Demand(core) => Some(core.lock().unwrap_or_else(|poison| poison.into_inner())),
            Backend::Eager { .. } => None,
        }
    }
}

impl<'t> HbModel<'t> {
    /// Builds the model for `trace` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`HbError`] if the trace implies a cyclic happens-before
    /// relation or the rule fixpoint diverges.
    pub fn build(trace: &'t Trace, config: CausalityConfig) -> Result<Self, HbError> {
        let table = EventTable::new(trace)?;
        if use_demand(table.len()) {
            return Self::build_demand(trace, config);
        }
        Self::build_eager(trace, config)
    }

    /// Builds the model preferring the demand-driven backend whatever
    /// the event count (an explicit `CAFA_HB_ENGINE=eager` still
    /// wins). Island-partitioned analysis projects a fleet trace into
    /// sub-traces that each fall below [`DEMAND_AUTO_THRESHOLD`], yet
    /// keep the many-small-islands shape the lazy engine dominates on
    /// — the per-event heuristic of [`build`](HbModel::build)
    /// mispredicts there by an order of magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`HbError`] if the trace implies a cyclic happens-before
    /// relation or the rule fixpoint diverges.
    pub fn build_islanded(trace: &'t Trace, config: CausalityConfig) -> Result<Self, HbError> {
        match std::env::var("CAFA_HB_ENGINE").ok().as_deref() {
            Some("eager") => Self::build_eager(trace, config),
            _ => Self::build_demand(trace, config),
        }
    }

    /// Builds a model with the eager backend regardless of trace size
    /// or `CAFA_HB_ENGINE`. Exposed (hidden) so the differential suite
    /// can pin one engine on each side of a comparison.
    #[doc(hidden)]
    pub fn build_eager(trace: &'t Trace, config: CausalityConfig) -> Result<Self, HbError> {
        let (mut graph, sends) = base_graph_with_sends(trace, &config);
        let mut st = FixpointState::new(trace)?;
        st.add_sends(&sends);
        let stats = fixpoint(&mut graph, &config, &mut st)?;
        // The converged reachability rows already hold the event-order
        // closure; reuse them instead of re-sweeping the graph.
        let closure = st.converged_closure(&graph);
        Self::from_parts(trace, config, graph, stats, closure)
    }

    /// Builds a model with the demand-driven backend regardless of
    /// trace size. [`build`](HbModel::build) selects this automatically
    /// above [`DEMAND_AUTO_THRESHOLD`] events; exposed (hidden) so the
    /// differential suite can force the choice.
    #[doc(hidden)]
    pub fn build_demand(trace: &'t Trace, config: CausalityConfig) -> Result<Self, HbError> {
        let (graph, sends) = base_graph_with_sends(trace, &config);
        let topo = graph
            .topo_order()
            .map_err(|nodes| HbError::cyclic(&graph, &nodes))?;
        let table = EventTable::new(trace)?;
        let mut core = DemandCore::new(&graph, table.clone(), config);
        core.register_sends(&graph, &sends);
        Ok(Self {
            trace,
            config,
            graph,
            table,
            stats: DerivationStats::default(),
            topo,
            backend: Backend::Demand(Box::new(Mutex::new(core))),
        })
    }

    /// Assembles a model from an already-derived graph (the incremental
    /// path): verifies acyclicity and precomputes the event-order
    /// closure (reusing `closure` — per dense event, the events whose
    /// end precedes its begin — when the fixpoint engine kept its
    /// converged rows). The graph must contain the fixpoint of
    /// `config`'s rules over `trace` — [`build`](HbModel::build) is the
    /// batch shortcut.
    pub(crate) fn from_parts(
        trace: &'t Trace,
        config: CausalityConfig,
        graph: SyncGraph,
        stats: DerivationStats,
        closure: Option<Vec<BitSet>>,
    ) -> Result<Self, HbError> {
        let topo = graph
            .topo_order()
            .map_err(|nodes| HbError::cyclic(&graph, &nodes))?;

        let table = EventTable::new(trace)?;
        // Final event-order closure: mark each end(e); read each begin(e).
        let before_begin: Vec<BitSet> = match closure {
            Some(rows) => rows,
            None => {
                let mut marks: Vec<Option<u32>> = vec![None; graph.node_count()];
                for (i, &e) in table.events.iter().enumerate() {
                    marks[graph.end(e) as usize] = Some(i as u32);
                }
                let acc = flow(&graph, &topo, &marks, table.len());
                table
                    .events
                    .iter()
                    .map(|&e| acc[graph.begin(e) as usize].clone())
                    .collect()
            }
        };

        Ok(Self {
            trace,
            config,
            graph,
            table,
            stats,
            topo,
            backend: Backend::Eager {
                before_begin,
                oracle: OnceLock::new(),
            },
        })
    }

    /// Builds (once) and returns the constant-time reachability index,
    /// constructing its begin matrix with `threads` scoped workers
    /// (`0` = auto; see [`crate::resolve_threads`]). Subsequent
    /// [`happens_before`](HbModel::happens_before) queries use the
    /// index instead of a DFS.
    ///
    /// # Panics
    ///
    /// Panics on a demand-backend model: its graph holds only base
    /// edges, so an oracle over it would answer without the derived
    /// orders. Use [`ensure_reachability`](HbModel::ensure_reachability)
    /// for backend-agnostic preparation.
    pub fn ensure_oracle(&self, threads: usize) -> &ReachOracle {
        match &self.backend {
            Backend::Eager { oracle, .. } => oracle.get_or_init(|| {
                Box::new(ReachOracle::build_with_topo(
                    &self.graph,
                    &self.topo,
                    threads,
                ))
            }),
            Backend::Demand(_) => {
                panic!("ensure_oracle is eager-only; demand models answer queries lazily")
            }
        }
    }

    /// Prepares whatever reachability index the backend uses for bulk
    /// operation-level queries and reports its node coverage: the
    /// [`ReachOracle`] (built with `threads` workers) on the eager
    /// backend; a no-op on the demand backend, whose queries settle
    /// their own cones. Both return the graph's node count, so pass
    /// accounting is backend-independent.
    pub fn ensure_reachability(&self, threads: usize) -> usize {
        match &self.backend {
            Backend::Eager { .. } => self.ensure_oracle(threads).node_count(),
            Backend::Demand(_) => self.graph.node_count(),
        }
    }

    /// The reachability index, if [`ensure_oracle`](HbModel::ensure_oracle)
    /// has been called (never on the demand backend).
    pub fn oracle(&self) -> Option<&ReachOracle> {
        match &self.backend {
            Backend::Eager { oracle, .. } => oracle.get().map(Box::as_ref),
            Backend::Demand(_) => None,
        }
    }

    /// Work counters of the demand engine, when this model uses it.
    pub fn demand_stats(&self) -> Option<DemandStats> {
        self.backend.demand().map(|core| core.stats())
    }

    /// The analyzed trace.
    pub fn trace(&self) -> &'t Trace {
        self.trace
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &CausalityConfig {
        &self.config
    }

    /// The underlying sync graph.
    pub fn graph(&self) -> &SyncGraph {
        &self.graph
    }

    /// Statistics from the rule fixpoint.
    pub fn stats(&self) -> DerivationStats {
        self.stats
    }

    /// The event tasks in dense order.
    pub fn events(&self) -> &[TaskId] {
        &self.table.events
    }

    /// True when `end(e1) ≺ begin(e2)`: every operation of event `e1`
    /// happens before every operation of event `e2`.
    ///
    /// # Panics
    ///
    /// Panics if either task is not an event.
    pub fn event_before(&self, e1: TaskId, e2: TaskId) -> bool {
        let i1 = self.table.dense(e1).expect("e1 must be an event");
        let i2 = self.table.dense(e2).expect("e2 must be an event");
        match &self.backend {
            Backend::Eager { before_begin, .. } => before_begin[i2 as usize].contains(i1 as usize),
            Backend::Demand(_) => {
                let mut core = self.backend.demand().expect("demand backend");
                core.event_before(&self.graph, i1, i2)
            }
        }
    }

    /// True when two distinct events are logically concurrent (neither
    /// fully ordered with the other).
    pub fn concurrent_events(&self, e1: TaskId, e2: TaskId) -> bool {
        e1 != e2 && !self.event_before(e1, e2) && !self.event_before(e2, e1)
    }

    /// True when both tasks are events processed by the same looper.
    pub fn same_looper(&self, t1: TaskId, t2: TaskId) -> bool {
        match (self.trace.task(t1).queue(), self.trace.task(t2).queue()) {
            (Some(q1), Some(q2)) => q1 == q2,
            _ => false,
        }
    }

    /// Does the operation at `a` happen before the operation at `b`?
    ///
    /// Strict: `happens_before(a, a)` is false.
    pub fn happens_before(&self, a: OpRef, b: OpRef) -> bool {
        if a.task == b.task {
            return a.index < b.index;
        }
        let Backend::Eager {
            before_begin,
            oracle,
        } = &self.backend
        else {
            let from = self.graph.bracket_after(a);
            let to = self.graph.bracket_before(b);
            let mut core = self.backend.demand().expect("demand backend");
            return core.reaches(&self.graph, from, to);
        };
        // Event-level fast path: full order between the containing events
        // orders every operation pair.
        if let (Some(i1), Some(i2)) = (self.table.dense(a.task), self.table.dense(b.task)) {
            if before_begin[i2 as usize].contains(i1 as usize) {
                return true;
            }
            // The converse ordering rules out a forward path only if the
            // relation is acyclic (guaranteed); still, mid-task paths
            // like send≺begin are not captured by the matrix, so fall
            // through to the graph search.
        }
        let from = self.graph.bracket_after(a);
        let to = self.graph.bracket_before(b);
        if let Some(oracle) = oracle.get() {
            return oracle.reaches(from, to);
        }
        let mut scratch = BitSet::new(self.graph.node_count());
        self.graph.reaches(from, to, &mut scratch)
    }

    /// Classifies the relative order of two operations.
    pub fn order(&self, a: OpRef, b: OpRef) -> OpOrder {
        if a == b {
            OpOrder::Same
        } else if self.happens_before(a, b) {
            OpOrder::Before
        } else if self.happens_before(b, a) {
            OpOrder::After
        } else {
            OpOrder::Concurrent
        }
    }

    /// Explains *why* `a` happens before `b`: a shortest chain of
    /// causal edges from `a`'s position to `b`'s. Returns `None` when
    /// the operations are not ordered that way (including `a == b`).
    ///
    /// # Examples
    ///
    /// ```
    /// use cafa_trace::{TraceBuilder, OpRef};
    /// use cafa_hb::{HbModel, CausalityConfig, EdgeKind};
    ///
    /// let mut b = TraceBuilder::new("t");
    /// let p = b.add_process();
    /// let q = b.add_queue(p);
    /// let t = b.add_thread(p, "main");
    /// let ev = b.post(t, q, "ev", 0);
    /// b.process_event(ev);
    /// let w = b.write(ev, cafa_trace::VarId::new(0));
    /// let trace = b.finish().unwrap();
    ///
    /// let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    /// let chain = model.explain(OpRef::new(t, 0), w).unwrap();
    /// assert!(chain.iter().any(|s| s.kind == EdgeKind::Send));
    /// ```
    pub fn explain(&self, a: OpRef, b: OpRef) -> Option<Vec<CauseStep>> {
        if !self.happens_before(a, b) {
            return None;
        }
        if a.task == b.task {
            return Some(vec![CauseStep {
                from: crate::NodeInfo {
                    task: a.task,
                    point: crate::NodePoint::Record(a.index),
                },
                kind: crate::EdgeKind::Program,
                to: crate::NodeInfo {
                    task: b.task,
                    point: crate::NodePoint::Record(b.index),
                },
            }]);
        }
        let from = self.graph.bracket_after(a);
        let to = self.graph.bracket_before(b);
        // The demand backend's derived edges are not in the graph;
        // its path finder walks base and derived adjacency together.
        let path = match self.backend.demand() {
            Some(mut core) => core.find_path(&self.graph, from, to)?,
            None => self.graph.find_path(from, to)?,
        };
        Some(
            path.into_iter()
                .map(|(f, kind, t)| CauseStep {
                    from: self.graph.node(f),
                    kind,
                    to: self.graph.node(t),
                })
                .collect(),
        )
    }

    /// Prepares a batched reachability index for many-source queries.
    ///
    /// One linear sweep of the graph answers `sources[i] ≺ b` for every
    /// source and any `b` — the detector uses this with all use/free
    /// sites as sources.
    pub fn batch(&self, sources: &[OpRef]) -> BatchReach<'_, 't> {
        if matches!(self.backend, Backend::Demand(_)) {
            // The flow sweep below reads the materialized relation; the
            // demand backend answers each pair through its query engine
            // instead (still one settled fixpoint — just no bulk index).
            return BatchReach {
                model: self,
                sources: sources.to_vec(),
                group: Vec::new(),
                acc: Vec::new(),
                pointwise: true,
            };
        }
        let mut marks: Vec<Option<u32>> = vec![None; self.graph.node_count()];
        // Multiple sources may share a bracket node; give each node the
        // list position of one representative and remap afterwards.
        let mut node_group: Vec<u32> = Vec::with_capacity(sources.len());
        let mut group_count = 0u32;
        let mut group_of_node: std::collections::HashMap<NodeId, u32> =
            std::collections::HashMap::new();
        for &s in sources {
            let n = self.graph.bracket_after(s);
            let g = *group_of_node.entry(n).or_insert_with(|| {
                let g = group_count;
                marks[n as usize] = Some(g);
                group_count += 1;
                g
            });
            node_group.push(g);
        }
        let acc = flow(&self.graph, &self.topo, &marks, group_count as usize);
        BatchReach {
            model: self,
            sources: sources.to_vec(),
            group: node_group,
            acc,
            pointwise: false,
        }
    }
}

/// Precomputed multi-source reachability; see [`HbModel::batch`].
#[derive(Debug)]
pub struct BatchReach<'m, 't> {
    model: &'m HbModel<'t>,
    sources: Vec<OpRef>,
    group: Vec<u32>,
    acc: Vec<BitSet>,
    /// Demand-backend mode: answer per pair via the query engine.
    pointwise: bool,
}

impl BatchReach<'_, '_> {
    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Does source number `i` happen before the operation at `b`?
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn before(&self, i: usize, b: OpRef) -> bool {
        let a = self.sources[i];
        if a.task == b.task {
            return a.index < b.index;
        }
        if self.pointwise {
            return self.model.happens_before(a, b);
        }
        let to = self.model.graph.bracket_before(b);
        self.acc[to as usize].contains(self.group[i] as usize)
    }

    /// Are source `i` and the operation at `b` concurrent under the
    /// model? Requires `b` to also be a source (at index `j`) so the
    /// converse direction is batched too.
    pub fn concurrent(&self, i: usize, j: usize) -> bool {
        let (a, b) = (self.sources[i], self.sources[j]);
        a != b && !self.before(i, b) && !self.before(j, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::{ObjId, Pc, TraceBuilder, VarId};

    /// The Figure 1 MyTracks scenario: onServiceConnected (use) and
    /// onDestroy (free) are concurrent under CAFA.
    fn mytracks() -> (Trace, OpRef, OpRef, TaskId, TaskId) {
        let mut b = TraceBuilder::new("MyTracks");
        let app = b.add_process();
        let q = b.add_queue(app);
        let svc = b.add_process();
        let ipc = b.add_thread(svc, "binder");
        let resume = b.external(q, "onResume");
        b.process_event(resume);
        let (txn, _) = b.rpc_call(resume);
        b.rpc_handle(ipc, txn);
        let connected = b.post(ipc, q, "onServiceConnected", 0);
        let destroy = b.external(q, "onDestroy");
        b.process_event(connected);
        let use_at = b.obj_read(connected, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x10));
        b.process_event(destroy);
        let free_at = b.obj_write(destroy, VarId::new(0), None, Pc::new(0x20));
        (b.finish().unwrap(), use_at, free_at, connected, destroy)
    }

    #[test]
    fn figure1_use_and_free_are_concurrent_under_cafa() {
        let (trace, use_at, free_at, connected, destroy) = mytracks();
        let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        assert!(m.concurrent_events(connected, destroy));
        assert_eq!(m.order(use_at, free_at), OpOrder::Concurrent);
        assert!(m.same_looper(connected, destroy));
    }

    #[test]
    fn figure1_is_ordered_under_conventional_model() {
        let (trace, use_at, free_at, connected, destroy) = mytracks();
        let m = HbModel::build(&trace, CausalityConfig::conventional()).unwrap();
        // The conventional baseline totally orders the looper's events,
        // hiding the race (connected was processed before destroy).
        assert!(m.event_before(connected, destroy));
        assert_eq!(m.order(use_at, free_at), OpOrder::Before);
    }

    #[test]
    fn resume_is_ordered_before_connected_via_rpc() {
        let (trace, ..) = mytracks();
        let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let resume = m.events()[0];
        let connected = m
            .events()
            .iter()
            .copied()
            .find(|&e| m.trace().task_name(e) == "onServiceConnected")
            .unwrap();
        assert!(m.event_before(resume, connected));
    }

    #[test]
    fn mid_task_send_orders_prefix_only() {
        // A thread sends an event, then keeps writing: the write after
        // the send is concurrent with the event.
        let mut b = TraceBuilder::new("midtask");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "worker");
        let before = b.write(t, VarId::new(0));
        let ev = b.post(t, q, "handler", 0);
        let after = b.write(t, VarId::new(0));
        b.process_event(ev);
        let in_ev = b.write(ev, VarId::new(0));
        let trace = b.finish().unwrap();
        let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        assert_eq!(m.order(before, in_ev), OpOrder::Before);
        assert_eq!(m.order(after, in_ev), OpOrder::Concurrent);
        assert_eq!(m.order(in_ev, after), OpOrder::Concurrent);
        assert_eq!(m.order(before, before), OpOrder::Same);
    }

    #[test]
    fn batch_agrees_with_pointwise_queries() {
        let (trace, use_at, free_at, ..) = mytracks();
        let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let sources = vec![use_at, free_at];
        let batch = m.batch(&sources);
        assert_eq!(batch.source_count(), 2);
        assert_eq!(batch.before(0, free_at), m.happens_before(use_at, free_at));
        assert_eq!(batch.before(1, use_at), m.happens_before(free_at, use_at));
        assert!(batch.concurrent(0, 1));
        assert!(!batch.concurrent(0, 0));
    }

    #[test]
    fn batch_same_bracket_sources_are_distinct() {
        // Two data records in the same event share a bracket node; the
        // batch must still answer per-source (same-task index compare).
        let mut b = TraceBuilder::new("bracket");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e = b.external(q, "ev");
        b.process_event(e);
        let r1 = b.write(e, VarId::new(0));
        let r2 = b.write(e, VarId::new(1));
        let trace = b.finish().unwrap();
        let m = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let batch = m.batch(&[r1, r2]);
        assert!(batch.before(0, r2));
        assert!(!batch.before(1, r1));
    }
}
