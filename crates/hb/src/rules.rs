//! Fixpoint derivation of the atomicity and event-queue rules (§3.3).
//!
//! Both rule families are *self-referential*: the atomicity rule
//! consumes `begin(e₁) ≺ end(e₂)` facts, and the queue rules consume
//! `send ≺ send` facts, that may themselves only hold because of
//! previously derived edges. The paper notes this is why a one-pass
//! vector-clock algorithm does not fit (§4.2: "there are operations
//! whose happens-before relations rely on future operations"). We
//! iterate: each round computes reachability facts over the current
//! graph with two linear bitset sweeps, applies every rule, and repeats
//! until no new edge appears.

use cafa_trace::{QueueId, Record, TaskId, Trace};

use crate::bitset::BitSet;
use crate::config::CausalityConfig;
use crate::error::HbError;
use crate::graph::{EdgeKind, NodeId, SyncGraph};

/// Upper bound on fixpoint rounds; real traces converge in a handful.
const MAX_ROUNDS: u32 = 64;

/// Dense numbering of the event tasks of a trace.
#[derive(Clone, Debug)]
pub struct EventTable {
    /// Dense index → event task.
    pub events: Vec<TaskId>,
    /// Task → dense index (None for threads).
    pub index: Vec<Option<u32>>,
    /// Dense index → queue.
    pub queue_of: Vec<QueueId>,
}

impl EventTable {
    /// Numbers the events of `trace` in task order.
    pub fn new(trace: &Trace) -> Self {
        let mut events = Vec::new();
        let mut index = vec![None; trace.task_count()];
        let mut queue_of = Vec::new();
        for t in trace.events() {
            index[t.id.index()] = Some(events.len() as u32);
            events.push(t.id);
            queue_of.push(t.queue().expect("events have queues"));
        }
        Self {
            events,
            index,
            queue_of,
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Dense index of an event task.
    pub fn dense(&self, task: TaskId) -> Option<u32> {
        self.index.get(task.index()).copied().flatten()
    }
}

/// One `send`/`sendAtFront` occurrence.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SendSite {
    pub(crate) node: NodeId,
    pub(crate) event: TaskId,
    pub(crate) queue: QueueId,
    pub(crate) delay_ms: u64,
    pub(crate) front: bool,
}

/// Persistent state of the rule fixpoint, reusable across incremental
/// graph extensions.
///
/// The memo tables record *pairs already decided*: a pair is marked only
/// once its premise (a reachability fact) holds, premises are
/// append-monotone, and a fired conclusion persists as a graph edge — so
/// re-running [`fixpoint`] after appending nodes and base edges only
/// examines fresh pairs. The exception is the `sendAtFront` rules 2/4,
/// whose side condition can become true later; those pairs are memo-less
/// and re-checked every round (the bounded re-check set: front sends are
/// rare).
#[derive(Clone, Debug)]
pub(crate) struct FixState {
    /// Dense numbering of the (fixed) event set.
    pub(crate) table: EventTable,
    /// Per-queue event masks (dense indices), for the atomicity rule.
    queue_mask: Vec<BitSet>,
    /// Send sites, in ingestion order.
    pub(crate) sends: Vec<SendSite>,
    /// Per-queue send masks.
    queue_send_mask: Vec<BitSet>,
    /// Memo of send pairs already fully decided (rules 1/3, whose
    /// conclusions depend only on the pair itself).
    decided: Vec<BitSet>,
    /// Atomicity memo: pairs already ordered `end(e1) → begin(e2)`.
    atom_done: Vec<BitSet>,
}

impl FixState {
    /// Creates empty fixpoint state for `trace`. The task table (hence
    /// the event set) must be complete; bodies may still be streaming.
    pub(crate) fn new(trace: &Trace) -> Self {
        let table = EventTable::new(trace);
        let ev_count = table.len();
        let mut queue_mask = vec![BitSet::new(ev_count); trace.queue_count()];
        for (i, &q) in table.queue_of.iter().enumerate() {
            queue_mask[q.index()].insert(i);
        }
        Self {
            table,
            queue_mask,
            sends: Vec::new(),
            queue_send_mask: vec![BitSet::new(0); trace.queue_count()],
            decided: Vec::new(),
            atom_done: vec![BitSet::new(ev_count); ev_count],
        }
    }

    /// Registers newly ingested send sites, growing the pair memos.
    pub(crate) fn add_sends(&mut self, new: &[SendSite]) {
        if new.is_empty() {
            return;
        }
        let count = self.sends.len() + new.len();
        for m in &mut self.queue_send_mask {
            m.grow(count);
        }
        for d in &mut self.decided {
            d.grow(count);
        }
        for s in new {
            let i = self.sends.len();
            self.queue_send_mask[s.queue.index()].insert(i);
            self.sends.push(*s);
            self.decided.push(BitSet::new(count));
        }
    }
}

/// Statistics about a completed fixpoint derivation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DerivationStats {
    /// Rounds until convergence (≥ 1 even when nothing is derived).
    pub rounds: u32,
    /// Edges added by the atomicity rule.
    pub atomicity_edges: usize,
    /// Edges added by queue rules 1–4 respectively.
    pub queue_edges: [usize; 4],
}

impl DerivationStats {
    /// Total derived edges.
    pub fn derived_edges(&self) -> usize {
        self.atomicity_edges + self.queue_edges.iter().sum::<usize>()
    }
}

/// Computes, for every node, which marked nodes reach it (strictly,
/// through at least one edge). `mark_of[n]` gives node `n`'s source
/// index, if it is a source.
pub(crate) fn flow(
    g: &SyncGraph,
    topo: &[NodeId],
    mark_of: &[Option<u32>],
    width: usize,
) -> Vec<BitSet> {
    let mut acc: Vec<BitSet> = vec![BitSet::new(0); g.node_count()];
    for &n in topo {
        let mut row = BitSet::new(width);
        for &p in g.preds(n) {
            row.union_with(&acc[p as usize]);
            if let Some(m) = mark_of[p as usize] {
                row.insert(m as usize);
            }
        }
        acc[n as usize] = row;
    }
    acc
}

/// Runs the atomicity + queue-rule fixpoint over `g`, adding derived
/// `end(e₁) → begin(e₂)` edges in place.
///
/// # Errors
///
/// [`HbError::CyclicHappensBefore`] if the graph ever becomes cyclic
/// (an inconsistent trace), [`HbError::DerivationDiverged`] if the
/// fixpoint fails to converge within an internal round limit.
pub fn derive(
    g: &mut SyncGraph,
    trace: &Trace,
    config: &CausalityConfig,
) -> Result<DerivationStats, HbError> {
    let mut st = FixState::new(trace);

    // Send sites.
    let mut sends: Vec<SendSite> = Vec::new();
    for (at, r) in trace.iter_ops() {
        let (event, queue, delay_ms, front) = match *r {
            Record::Send {
                event,
                queue,
                delay_ms,
            } => (event, queue, delay_ms, false),
            Record::SendAtFront { event, queue } => (event, queue, 0, true),
            _ => continue,
        };
        let node = g.node_of(at).expect("send records are sync nodes");
        sends.push(SendSite {
            node,
            event,
            queue,
            delay_ms,
            front,
        });
    }
    st.add_sends(&sends);

    fixpoint(g, config, &mut st)
}

/// The fixpoint loop behind [`derive`], factored over persistent
/// [`FixState`] so incremental sessions can extend a previous run:
/// pairs memoized in `st` are never re-examined, and re-running after
/// new nodes/edges were appended converges to the same least fixpoint
/// as a batch derivation (materialized edges may differ where a fact is
/// already implied transitively; the closure is identical).
pub(crate) fn fixpoint(
    g: &mut SyncGraph,
    config: &CausalityConfig,
    st: &mut FixState,
) -> Result<DerivationStats, HbError> {
    let mut stats = DerivationStats::default();
    if !config.atomicity_rule && !config.queue_rules {
        // Still verify acyclicity so every model is checked.
        g.topo_order().map_err(|nodes| HbError::cyclic(g, &nodes))?;
        stats.rounds = 1;
        return Ok(stats);
    }

    let ev_count = st.table.len();

    // Event-begin marks (for atomicity), event-end marks (for the
    // implied-order check). Node ids shift between incremental calls,
    // so these are recomputed per call (linear in the graph).
    let mut begin_marks: Vec<Option<u32>> = vec![None; g.node_count()];
    let mut end_marks: Vec<Option<u32>> = vec![None; g.node_count()];
    for (i, &e) in st.table.events.iter().enumerate() {
        begin_marks[g.begin(e) as usize] = Some(i as u32);
        end_marks[g.end(e) as usize] = Some(i as u32);
    }

    // begin(e) node per dense event, for the implied-order check.
    let event_begin: Vec<NodeId> = st.table.events.iter().map(|&e| g.begin(e)).collect();

    // Topological position of each event's begin node, so rules can be
    // applied in an order where a conclusion's prerequisites are final.
    loop {
        stats.rounds += 1;
        if stats.rounds > MAX_ROUNDS {
            return Err(HbError::DerivationDiverged {
                rounds: stats.rounds - 1,
            });
        }
        let topo = g.topo_order().map_err(|nodes| HbError::cyclic(g, &nodes))?;

        let mut changed = false;

        // Reachability facts over the graph as of the round start.
        let acc_end = flow(g, &topo, &end_marks, ev_count);
        let acc_begin = if config.atomicity_rule {
            Some(flow(g, &topo, &begin_marks, ev_count))
        } else {
            None
        };
        let (acc_send, send_of_event) = if config.queue_rules && !st.sends.is_empty() {
            let mut send_marks: Vec<Option<u32>> = vec![None; g.node_count()];
            for (i, s) in st.sends.iter().enumerate() {
                send_marks[s.node as usize] = Some(i as u32);
            }
            let acc = flow(g, &topo, &send_marks, st.sends.len());
            // Each event is posted by at most one send (trace validation).
            let mut of_event: Vec<Option<u32>> = vec![None; ev_count];
            for (i, s) in st.sends.iter().enumerate() {
                if let Some(d) = st.table.dense(s.event) {
                    of_event[d as usize] = Some(i as u32);
                }
            }
            (Some(acc), of_event)
        } else {
            (None, Vec::new())
        };

        // Events in topological order of their begin nodes.
        let mut topo_pos: Vec<u32> = vec![0; g.node_count()];
        for (pos, &n) in topo.iter().enumerate() {
            topo_pos[n as usize] = pos as u32;
        }
        let mut event_order: Vec<usize> = (0..ev_count).collect();
        event_order.sort_by_key(|&i| topo_pos[event_begin[i] as usize]);

        // Incrementally-maintained "ends that precede begin(e)" sets:
        // evord[j] starts from the round-start facts and absorbs the
        // conclusions added *this* round, so a long already-ordered
        // chain materializes only its frontier edges instead of all
        // O(n²) transitive pairs.
        let mut evord: Vec<Option<BitSet>> = vec![None; ev_count];
        let mut delta: Vec<Vec<u32>> = vec![Vec::new(); ev_count];

        for &j in &event_order {
            let mut set = acc_end[event_begin[j] as usize].clone();
            if let Some(acc_begin) = &acc_begin {
                // Absorb this round's additions at begin-predecessors.
                for k in acc_begin[event_begin[j] as usize].iter() {
                    for &x in &delta[k] {
                        set.insert(x as usize);
                    }
                }
            }

            // Atomicity rule: same-looper e1 with begin(e1) ≺ end(e_j).
            if let Some(acc_begin) = &acc_begin {
                let e_j = st.table.events[j];
                let reach_end = &acc_begin[g.end(e_j) as usize];
                let mask = &st.queue_mask[st.table.queue_of[j].index()];
                let mut fresh: Vec<usize> = Vec::new();
                reach_end.for_each_in_diff(mask, &st.atom_done[j], |i1| {
                    if i1 != j {
                        fresh.push(i1);
                    }
                });
                // Latest predecessors first: firing (e_k, e_j) before
                // (e_i, e_j) lets e_k's absorbed set imply the earlier
                // pairs, keeping materialized edges near-linear on
                // equal-delay chains posted from one task.
                fresh.sort_by_key(|&i1| std::cmp::Reverse(topo_pos[event_begin[i1] as usize]));
                for i1 in fresh {
                    st.atom_done[j].insert(i1);
                    if set.contains(i1) {
                        continue; // already implied
                    }
                    if g.add_edge(
                        g.end(st.table.events[i1]),
                        event_begin[j],
                        EdgeKind::Atomicity,
                    ) {
                        stats.atomicity_edges += 1;
                        changed = true;
                        set.insert(i1);
                        delta[j].push(i1 as u32);
                        if let Some(Some(prior)) = evord.get(i1) {
                            for x in prior.iter() {
                                if set.insert(x) {
                                    delta[j].push(x as u32);
                                }
                            }
                        }
                    }
                }
            }

            // Queue rules 1 and 3, with e_j as the later-sent event.
            if let (Some(acc_send), Some(sj)) = (&acc_send, send_of_event.get(j).copied().flatten())
            {
                let s2 = st.sends[sj as usize];
                if !s2.front {
                    let reach = &acc_send[s2.node as usize];
                    let mask = &st.queue_send_mask[s2.queue.index()];
                    let mut fresh: Vec<usize> = Vec::new();
                    reach.for_each_in_diff(mask, &st.decided[sj as usize], |i| {
                        if i != sj as usize {
                            fresh.push(i);
                        }
                    });
                    // Same latest-first ordering as the atomicity loop.
                    fresh.sort_by_key(|&i| {
                        st.table
                            .dense(st.sends[i].event)
                            .map(|d| std::cmp::Reverse(topo_pos[event_begin[d as usize] as usize]))
                            .unwrap_or(std::cmp::Reverse(0))
                    });
                    for i in fresh {
                        st.decided[sj as usize].insert(i);
                        let s1 = &st.sends[i];
                        if !(s1.front || s1.delay_ms <= s2.delay_ms) {
                            continue;
                        }
                        let i1 = st.table.dense(s1.event).expect("sent tasks are events") as usize;
                        if set.contains(i1) {
                            continue; // already implied
                        }
                        let rule = if s1.front { 3u8 } else { 1 };
                        if g.add_edge(g.end(s1.event), event_begin[j], EdgeKind::Queue(rule)) {
                            stats.queue_edges[if s1.front { 2 } else { 0 }] += 1;
                            changed = true;
                            set.insert(i1);
                            delta[j].push(i1 as u32);
                            if let Some(Some(prior)) = evord.get(i1) {
                                for x in prior.iter() {
                                    if set.insert(x) {
                                        delta[j].push(x as u32);
                                    }
                                }
                            }
                        }
                    }
                }
            }

            evord[j] = Some(set);
        }

        // Queue rules 2 and 4: a front-send s2 ordered after s1, with
        // s2 ≺ begin(e1) — the conclusion reverses (e2 runs first).
        // Front sends are rare, so these pairs are simply re-checked
        // every round against the round-start facts.
        if let Some(acc_send) = &acc_send {
            for (j, s2) in st.sends.iter().enumerate() {
                if !s2.front {
                    continue;
                }
                let reach = &acc_send[s2.node as usize];
                let mask = &st.queue_send_mask[s2.queue.index()];
                for i in reach.iter() {
                    if i == j || !mask.contains(i) {
                        continue;
                    }
                    let s1 = &st.sends[i];
                    let begin_e1 = g.begin(s1.event);
                    if !acc_send[begin_e1 as usize].contains(j) {
                        continue; // side condition s2 ≺ begin(e1) not met
                    }
                    let i1 = st.table.dense(s1.event).expect("sent tasks are events") as usize;
                    let i2 = st.table.dense(s2.event).expect("sent tasks are events") as usize;
                    let implied = evord[i1].as_ref().is_some_and(|set| set.contains(i2))
                        || acc_end[begin_e1 as usize].contains(i2);
                    if implied {
                        continue;
                    }
                    let rule = if s1.front { 4u8 } else { 2 };
                    if g.add_edge(g.end(s2.event), begin_e1, EdgeKind::Queue(rule)) {
                        stats.queue_edges[if s1.front { 3 } else { 1 }] += 1;
                        changed = true;
                    }
                }
            }
        }

        if !changed {
            // Final acyclicity check after the last additions.
            g.topo_order().map_err(|nodes| HbError::cyclic(g, &nodes))?;
            return Ok(stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::base_graph;
    use cafa_trace::TraceBuilder;

    fn run(trace: &Trace) -> (SyncGraph, DerivationStats) {
        let config = CausalityConfig::cafa();
        let mut g = base_graph(trace, &config);
        let stats = derive(&mut g, trace, &config).expect("derivation converges");
        (g, stats)
    }

    fn ordered(g: &SyncGraph, e1: TaskId, e2: TaskId) -> bool {
        let mut scratch = BitSet::new(g.node_count());
        g.reaches(g.end(e1), g.begin(e2), &mut scratch)
    }

    /// Figure 4b: two sends with equal delays from one thread → ordered.
    #[test]
    fn fig4b_equal_delay_sends_order_events() {
        let mut b = TraceBuilder::new("fig4b");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 1);
        let e = b.post(t, q, "B", 1);
        b.process_event(a);
        b.process_event(e);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, a, e));
        assert!(!ordered(&g, e, a));
        assert!(stats.queue_edges[0] >= 1);
    }

    /// Figure 4c: earlier send has the larger delay → no order.
    #[test]
    fn fig4c_larger_delay_first_leaves_events_unordered() {
        let mut b = TraceBuilder::new("fig4c");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 5);
        let e = b.post(t, q, "B", 0);
        // B actually ran first.
        b.process_event(e);
        b.process_event(a);
        let trace = b.finish().unwrap();
        let (g, _) = run(&trace);
        assert!(!ordered(&g, a, e));
        assert!(!ordered(&g, e, a));
    }

    /// Figure 4d: send(A) then sendAtFront(B) inside event C on the same
    /// looper → B ≺ A (queue rule 2).
    #[test]
    fn fig4d_sendatfront_within_event_orders_front_first() {
        let mut b = TraceBuilder::new("fig4d");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let c = b.post(t, q, "C", 0);
        b.process_event(c);
        let a = b.post(c, q, "A", 0);
        let front = b.post_front(c, q, "B");
        b.process_event(front);
        b.process_event(a);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, front, a), "B must happen-before A");
        assert!(!ordered(&g, a, front));
        assert!(ordered(&g, c, a), "atomicity: C before A");
        assert!(stats.queue_edges[1] >= 1, "rule 2 fired");
    }

    /// Figures 4e/4f: send(A) from one task, sendAtFront(B) from another
    /// with no `sendAtFront ≺ begin(A)` guarantee → unordered.
    #[test]
    fn fig4ef_sendatfront_without_guarantee_is_unordered() {
        let mut b = TraceBuilder::new("fig4ef");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let t2 = b.add_thread(p, "T2");
        let a = b.post(t, q, "A", 0);
        let front = b.post_front(t2, q, "B");
        b.process_event(a);
        b.process_event(front);
        let trace = b.finish().unwrap();
        let (g, _) = run(&trace);
        assert!(!ordered(&g, a, front));
        assert!(!ordered(&g, front, a));
    }

    /// Queue rule 3: a front-send ordered before a later plain send →
    /// the front event runs first, regardless of delay.
    #[test]
    fn rule3_front_send_before_plain_send() {
        let mut b = TraceBuilder::new("rule3");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let front = b.post_front(t, q, "A");
        let e = b.post(t, q, "B", 50);
        b.process_event(front);
        b.process_event(e);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, front, e));
        assert!(stats.queue_edges[2] >= 1, "rule 3 fired");
    }

    /// Queue rule 4: two front-sends inside one event on the target
    /// looper → the later front-send runs first.
    #[test]
    fn rule4_two_front_sends_within_event() {
        let mut b = TraceBuilder::new("rule4");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let c = b.post(t, q, "C", 0);
        b.process_event(c);
        let e1 = b.post_front(c, q, "A");
        let e2 = b.post_front(c, q, "B");
        // B jumped in front of A.
        b.process_event(e2);
        b.process_event(e1);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, e2, e1), "the later front-send runs first");
        assert!(!ordered(&g, e1, e2));
        assert!(stats.queue_edges[3] >= 1, "rule 4 fired");
    }

    /// Figure 4a: A forks T; T performs a listener registered before B
    /// is performed... the atomicity rule orders A before B.
    #[test]
    fn fig4a_atomicity_via_fork_and_listener() {
        let mut b = TraceBuilder::new("fig4a");
        let p = b.add_process();
        let q = b.add_queue(p);
        let _main = b.add_thread(p, "main");
        let l = b.add_listener("android.view");
        let a = b.external(q, "A");
        let e = b.external(q, "B");
        b.process_event(a);
        let t = b.fork(a, p, "T");
        b.register(t, l);
        b.process_event(e);
        b.perform(e, l);
        let trace = b.finish().unwrap();

        // Disable the external rule so only fork+register+atomicity act.
        let mut config = CausalityConfig::cafa();
        config.external_rule = false;
        let mut g = base_graph(&trace, &config);
        let stats = derive(&mut g, &trace, &config).unwrap();
        assert!(ordered(&g, a, e), "atomicity lifts fork≺perform to A≺B");
        assert!(stats.atomicity_edges >= 1);
    }

    /// Derivations cascade across rounds: a queue-rule edge enables an
    /// atomicity edge for another pair.
    #[test]
    fn fixpoint_needs_multiple_rounds() {
        let mut b = TraceBuilder::new("cascade");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        // Two equal-delay sends order A ≺ B (rule 1). B sends C; then
        // atomicity and rule 1 chain C after A transitively.
        let a = b.post(t, q, "A", 0);
        let e = b.post(t, q, "B", 0);
        b.process_event(a);
        b.process_event(e);
        let c = b.post(e, q, "C", 0);
        b.process_event(c);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, a, e));
        assert!(ordered(&g, e, c));
        assert!(ordered(&g, a, c));
        assert!(stats.rounds >= 2);
    }

    /// An empty trace derives nothing and converges immediately.
    #[test]
    fn empty_trace_converges() {
        let trace = TraceBuilder::new("empty").finish().unwrap();
        let (_, stats) = run(&trace);
        assert_eq!(stats.derived_edges(), 0);
    }
}
