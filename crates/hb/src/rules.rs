//! Fixpoint derivation of the atomicity and event-queue rules (§3.3).
//!
//! Both rule families are *self-referential*: the atomicity rule
//! consumes `begin(e₁) ≺ end(e₂)` facts, and the queue rules consume
//! `send ≺ send` facts, that may themselves only hold because of
//! previously derived edges. The paper notes this is why a one-pass
//! vector-clock algorithm does not fit (§4.2: "there are operations
//! whose happens-before relations rely on future operations"). We
//! iterate rounds until no new edge appears — but *semi-naively*:
//!
//! * The reachability facts each rule premise reads (`which event ends
//!   / begins / send sites reach node n`) are kept as **persistent
//!   per-node rows** ([`RowState`]) instead of being recomputed with
//!   full-graph sweeps every round. After a round adds edges, only the
//!   rows downstream of the new-edge frontier are recomputed, by a
//!   worklist walk over the graph ([`propagate_rows`]).
//! * A round re-evaluates only the **dirty anchors** — events whose
//!   premise row actually changed — plus the memo-less `sendAtFront`
//!   rules 2/4 (whose side condition can become true later; front
//!   sends are rare, so that re-check set is bounded).
//! * The same delta structure carries across *calls*: an incremental
//!   session ([`crate::IncrementalHb`]) appends base edges between
//!   fixpoint runs, and the next run propagates exactly the suffix of
//!   the graph's edge log added since the rows last converged.
//! * Round-local working sets (the per-anchor conclusion lists) live in
//!   a reusable SoA arena ([`RoundArena`]) rather than per-round
//!   `Vec<Vec<_>>` allocations.
//!
//! The reference implementation — the textbook §3.3 loop that re-tests
//! every rule instance against every event pair and send site each
//! round with freshly swept facts — is kept behind [`fixpoint_naive`] /
//! [`derive_naive`] (test- and bench-only). Differential tests in
//! `tests/fixpoint_differential.rs` pin exact equality of the
//! materialized edge sets, not just the closure. See
//! `docs/FIXPOINT.md` for the equal-least-fixpoint argument.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cafa_trace::{QueueId, Record, TaskId, Trace};

use crate::bitset::BitSet;
use crate::config::CausalityConfig;
use crate::error::HbError;
use crate::graph::{EdgeKind, NodeId, SyncGraph};

/// Upper bound on fixpoint rounds; real traces converge in a handful.
const MAX_ROUNDS: u32 = 64;

/// Below this many events the semi-naive engine skips its frontier
/// propagation machinery (worklist heap, dirty-anchor filtering) and
/// refreshes rows with plain full sweeps each round, like the naive
/// engine — at small sizes the per-round heap overhead costs more than
/// the sweeps it avoids (the `synthetic/500` tier of
/// `BENCH_fixpoint.json` ran 0.6× naive speed before this cutoff).
/// Rows, memos, and fired edges are identical either way: a full sweep
/// computes the same exact reachability rows propagation maintains, and
/// re-evaluating a clean anchor finds no fresh candidates (its premise
/// row is unchanged and everything in it is memoized).
const SMALL_EVENT_CUTOFF: usize = 768;

/// Dense numbering of the event tasks of a trace.
#[derive(Clone, Debug)]
pub struct EventTable {
    /// Dense index → event task.
    pub events: Vec<TaskId>,
    /// Task → dense index (None for threads).
    pub index: Vec<Option<u32>>,
    /// Dense index → queue.
    pub queue_of: Vec<QueueId>,
}

impl EventTable {
    /// Numbers the events of `trace` in task order.
    ///
    /// # Errors
    ///
    /// [`HbError::MalformedTrace`] if an event task has no queue —
    /// impossible for validated traces, but hand-built or corrupted
    /// inputs surface here as an error instead of a panic.
    pub fn new(trace: &Trace) -> Result<Self, HbError> {
        let mut events = Vec::new();
        let mut index = vec![None; trace.task_count()];
        let mut queue_of = Vec::new();
        for t in trace.events() {
            let Some(queue) = t.queue() else {
                return Err(HbError::MalformedTrace {
                    task: t.id.to_string(),
                    detail: format!("event task '{}' has no queue", trace.task_name(t.id)),
                });
            };
            if queue.index() >= trace.queue_count() {
                return Err(HbError::MalformedTrace {
                    task: t.id.to_string(),
                    detail: format!(
                        "event task '{}' posted to unknown queue {}",
                        trace.task_name(t.id),
                        queue.index()
                    ),
                });
            }
            index[t.id.index()] = Some(events.len() as u32);
            events.push(t.id);
            queue_of.push(queue);
        }
        Ok(Self {
            events,
            index,
            queue_of,
        })
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Dense index of an event task.
    pub fn dense(&self, task: TaskId) -> Option<u32> {
        self.index.get(task.index()).copied().flatten()
    }
}

/// One `send`/`sendAtFront` occurrence.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SendSite {
    pub(crate) node: NodeId,
    pub(crate) event: TaskId,
    pub(crate) queue: QueueId,
    pub(crate) delay_ms: u64,
    pub(crate) front: bool,
}

/// Persistent per-node reachability rows, maintained incrementally
/// between rounds and between fixpoint calls.
///
/// Invariant: whenever `edges_applied == graph.edge_log().len()`, each
/// row holds exactly the sources (event ends / event begins / send
/// sites) that strictly reach that node in the current graph — the
/// same values a full [`flow`] sweep would compute.
#[derive(Clone, Debug)]
struct RowState {
    /// Edge-log position the rows reflect.
    edges_applied: usize,
    /// Node count the row vectors cover.
    node_count: usize,
    /// Whether `acc_begin` is maintained (atomicity rule on).
    atomicity: bool,
    /// Per node: dense events whose `end` reaches it. Width = events.
    acc_end: Vec<BitSet>,
    /// Per node: dense events whose `begin` reaches it.
    acc_begin: Option<Vec<BitSet>>,
    /// Per node: send sites that reach it. Width = `send_width`.
    acc_send: Option<Vec<BitSet>>,
    /// Column count of `acc_send` rows (grows as sends stream in).
    send_width: usize,
}

/// Reusable round-local scratch: the SoA conclusion arena plus the
/// propagation worklist, so a steady-state round allocates nothing.
#[derive(Clone, Debug, Default)]
struct RoundArena {
    /// Per dense event: the working set ("events whose end ≺ its
    /// begin, including this round's conclusions") saved when that
    /// anchor fired an edge this round. Only entries flagged in
    /// `fired_mask` are live; storage is reused across rounds.
    evord: Vec<BitSet>,
    /// Events that fired at least one edge this round, in processing
    /// order.
    fired: Vec<u32>,
    /// Same set as `fired`, as a membership mask.
    fired_mask: BitSet,
    /// SoA delta storage: for each fired anchor `k`, the events its
    /// working set gained *beyond* its round-start facts
    /// (`evord[k] \ acc_end[begin(e_k)]`), as a span into `delta_buf`.
    /// Later anchors fold these few sparse items instead of unioning
    /// the predecessor's full working set — round-start facts of a
    /// begin-predecessor are already contained in the anchor's own.
    delta_buf: Vec<u32>,
    delta_span: Vec<(u32, u32)>,
    /// Per-anchor working set ("events whose end ≺ begin(anchor)").
    set: BitSet,
    /// Candidate buffer for one anchor evaluation.
    fresh: Vec<usize>,
    /// Always-empty masks standing in for the memos on the naive path.
    empty_ev: BitSet,
    empty_send: BitSet,
    /// Frontier scratch for [`propagate_rows`].
    queued: BitSet,
    heap: BinaryHeap<Reverse<(u32, NodeId)>>,
    /// Anchors whose premise row changed since they were last
    /// evaluated (accumulated between rounds and across calls).
    dirty: BitSet,
    anchors: Vec<u32>,
}

/// Persistent state of the rule fixpoint, reusable across incremental
/// graph extensions: the rule indices (per-queue event and send-site
/// masks, built once per trace), the pair memos, and the semi-naive
/// engine's reachability rows and scratch arena.
///
/// The memo tables record *pairs already decided*: a pair is marked only
/// once its premise (a reachability fact) holds, premises are
/// append-monotone, and a fired conclusion persists as a graph edge — so
/// re-running [`fixpoint`] after appending nodes and base edges only
/// examines fresh pairs. The exception is the `sendAtFront` rules 2/4,
/// whose side condition can become true later; those pairs are memo-less
/// and re-checked every round (the bounded re-check set: front sends are
/// rare).
#[derive(Clone, Debug)]
pub(crate) struct FixpointState {
    /// Dense numbering of the (fixed) event set.
    pub(crate) table: EventTable,
    /// Per-queue event masks (dense indices), for the atomicity rule.
    queue_mask: Vec<BitSet>,
    /// Send sites, in ingestion order.
    pub(crate) sends: Vec<SendSite>,
    /// Per-queue send masks.
    queue_send_mask: Vec<BitSet>,
    /// Memo of send pairs already fully decided (rules 1/3, whose
    /// conclusions depend only on the pair itself).
    decided: Vec<BitSet>,
    /// Atomicity memo: pairs already ordered `end(e1) → begin(e2)`.
    atom_done: Vec<BitSet>,
    /// Semi-naive reachability rows; `None` until the first run (or
    /// after a config change forced a rebuild).
    rows: Option<RowState>,
    /// Round-local scratch, reused across rounds and calls.
    arena: RoundArena,
}

impl FixpointState {
    /// Creates empty fixpoint state for `trace`. The task table (hence
    /// the event set) must be complete; bodies may still be streaming.
    ///
    /// # Errors
    ///
    /// [`HbError::MalformedTrace`] if an event task has no queue.
    pub(crate) fn new(trace: &Trace) -> Result<Self, HbError> {
        let table = EventTable::new(trace)?;
        let ev_count = table.len();
        let mut queue_mask = vec![BitSet::new(ev_count); trace.queue_count()];
        for (i, &q) in table.queue_of.iter().enumerate() {
            queue_mask[q.index()].insert(i);
        }
        Ok(Self {
            table,
            queue_mask,
            sends: Vec::new(),
            queue_send_mask: vec![BitSet::new(0); trace.queue_count()],
            decided: Vec::new(),
            atom_done: vec![BitSet::new(ev_count); ev_count],
            rows: None,
            arena: RoundArena::default(),
        })
    }

    /// Registers newly ingested send sites, growing the pair memos.
    pub(crate) fn add_sends(&mut self, new: &[SendSite]) {
        if new.is_empty() {
            return;
        }
        let count = self.sends.len() + new.len();
        for m in &mut self.queue_send_mask {
            m.grow(count);
        }
        for d in &mut self.decided {
            d.grow(count);
        }
        for s in new {
            let i = self.sends.len();
            self.queue_send_mask[s.queue.index()].insert(i);
            self.sends.push(*s);
            self.decided.push(BitSet::new(count));
        }
    }

    /// The converged event-order closure, if the rows are current for
    /// `g`: per dense event, the events whose `end` precedes its
    /// `begin`. Lets model finalization skip one full flow sweep.
    pub(crate) fn converged_closure(&self, g: &SyncGraph) -> Option<Vec<BitSet>> {
        let rows = self.rows.as_ref()?;
        if rows.edges_applied != g.edge_log().len() || rows.node_count != g.node_count() {
            return None;
        }
        Some(
            self.table
                .events
                .iter()
                .map(|&e| rows.acc_end[g.begin(e) as usize].clone())
                .collect(),
        )
    }
}

/// Statistics about a completed fixpoint derivation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DerivationStats {
    /// Rounds until convergence (≥ 1 even when nothing is derived).
    pub rounds: u32,
    /// Rule instances evaluated: premise candidates tested by the
    /// atomicity rule and queue rules 1/3, plus every rules-2/4
    /// side-condition check. The semi-naive engine only pays for fresh
    /// candidates at dirty anchors; the naive reference re-tests every
    /// candidate every round.
    pub instances: u64,
    /// Edges added by the atomicity rule.
    pub atomicity_edges: usize,
    /// Edges added by queue rules 1–4 respectively.
    pub queue_edges: [usize; 4],
}

impl DerivationStats {
    /// Total derived edges.
    pub fn derived_edges(&self) -> usize {
        self.atomicity_edges + self.queue_edges.iter().sum::<usize>()
    }
}

/// Computes, for every node, which marked nodes reach it (strictly,
/// through at least one edge). `mark_of[n]` gives node `n`'s source
/// index, if it is a source.
pub(crate) fn flow(
    g: &SyncGraph,
    topo: &[NodeId],
    mark_of: &[Option<u32>],
    width: usize,
) -> Vec<BitSet> {
    let mut acc: Vec<BitSet> = vec![BitSet::new(0); g.node_count()];
    for &n in topo {
        let mut row = BitSet::new(width);
        for p in g.preds(n) {
            row.union_with(&acc[p as usize]);
            if let Some(m) = mark_of[p as usize] {
                row.insert(m as usize);
            }
        }
        acc[n as usize] = row;
    }
    acc
}

/// Collects the send sites of `trace` (nodes resolved against `g`).
pub(crate) fn collect_sends(g: &SyncGraph, trace: &Trace) -> Vec<SendSite> {
    let mut sends: Vec<SendSite> = Vec::new();
    for (at, r) in trace.iter_ops() {
        let (event, queue, delay_ms, front) = match *r {
            Record::Send {
                event,
                queue,
                delay_ms,
            } => (event, queue, delay_ms, false),
            Record::SendAtFront { event, queue } => (event, queue, 0, true),
            _ => continue,
        };
        let node = g.node_of(at).expect("send records are sync nodes");
        sends.push(SendSite {
            node,
            event,
            queue,
            delay_ms,
            front,
        });
    }
    sends
}

/// Runs the atomicity + queue-rule fixpoint over `g`, adding derived
/// `end(e₁) → begin(e₂)` edges in place.
///
/// # Errors
///
/// [`HbError::CyclicHappensBefore`] if the graph ever becomes cyclic
/// (an inconsistent trace), [`HbError::DerivationDiverged`] if the
/// fixpoint fails to converge within an internal round limit,
/// [`HbError::MalformedTrace`] if an event task has no queue.
pub fn derive(
    g: &mut SyncGraph,
    trace: &Trace,
    config: &CausalityConfig,
) -> Result<DerivationStats, HbError> {
    let mut st = FixpointState::new(trace)?;
    st.add_sends(&collect_sends(g, trace));
    fixpoint(g, config, &mut st)
}

/// The eager reference engine under its differential-testing name:
/// materializes every derived edge of the §3.3 fixpoint into `g`, like
/// [`derive`]. Production query paths go through the demand engine
/// (`demand.rs`) on large traces; this entry point exists so
/// differential suites can compare the demand engine's lazy answers
/// against the fully materialized relation.
pub fn derive_eager_reference(
    g: &mut SyncGraph,
    trace: &Trace,
    config: &CausalityConfig,
) -> Result<DerivationStats, HbError> {
    derive(g, trace, config)
}

/// The naive reference derivation: identical signature and result to
/// [`derive`], but driven by [`fixpoint_naive`]. Exposed (hidden) for
/// the differential test suite and the fixpoint benchmark only.
#[doc(hidden)]
pub fn derive_naive(
    g: &mut SyncGraph,
    trace: &Trace,
    config: &CausalityConfig,
) -> Result<DerivationStats, HbError> {
    let mut st = FixpointState::new(trace)?;
    st.add_sends(&collect_sends(g, trace));
    fixpoint_naive(g, config, &mut st)
}

/// Rule indices shared by both engines (immutable during a call).
struct RuleIndex<'a> {
    table: &'a EventTable,
    queue_mask: &'a [BitSet],
    sends: &'a [SendSite],
    queue_send_mask: &'a [BitSet],
}

/// Round-start reachability facts, per node.
struct RowView<'a> {
    acc_end: &'a [BitSet],
    acc_begin: Option<&'a [BitSet]>,
    acc_send: Option<&'a [BitSet]>,
}

/// Per-round ordering context.
struct OrderCtx<'a> {
    /// `begin(e)` node per dense event.
    event_begin: &'a [NodeId],
    /// `end(e)` node per dense event.
    event_end: &'a [NodeId],
    /// Dense event → its (unique) posting send site, if any.
    send_of_event: &'a [Option<u32>],
    /// Topological position of each node, this round.
    topo_pos: &'a [u32],
    /// Position of each dense event in this round's event order.
    order_pos: &'a [u32],
}

/// Absorbs a freshly fired conclusion `end(e_i1) → begin(e_j)` into the
/// anchor's working set, folding in `e_i1`'s own prior (its round-start
/// facts plus its conclusions this round) when it was ordered earlier
/// this round — so a long already-ordered chain materializes only its
/// frontier edges instead of all O(n²) transitive pairs. Every element
/// *newly* inserted is appended to `delta_buf`, building the anchor's
/// sparse delta span as a side effect — only genuinely new facts are
/// recorded, which keeps the per-round delta storage near-linear.
#[allow(clippy::too_many_arguments)]
fn absorb_conclusion(
    set: &mut BitSet,
    evord: &[BitSet],
    fired_mask: &BitSet,
    rows: &RowView<'_>,
    ctx: &OrderCtx<'_>,
    delta_buf: &mut Vec<u32>,
    delta_span: &[(u32, u32)],
    empty_ev: &BitSet,
    i1: usize,
    j: usize,
) {
    if set.insert(i1) {
        delta_buf.push(i1 as u32);
    }
    if ctx.order_pos[i1] >= ctx.order_pos[j] {
        return;
    }
    // Folding i1's prior claims end(x) ≺ begin(i1) ≺ end(i1) ≺ begin(j)
    // — the middle link is i1's own begin→end program chain, which an
    // incremental graph only has once i1's task is sealed. Without it
    // the fold would smuggle facts the graph does not imply into the
    // working set (and, through the pair memos, suppress real edges
    // forever), so absorb only the direct conclusion.
    let Some(acc_begin) = rows.acc_begin else {
        return;
    };
    if !acc_begin[ctx.event_end[i1] as usize].contains(i1) {
        return;
    }
    if fired_mask.contains(i1) {
        // i1's saved working set already folds its round-start facts
        // and the conclusions of anchors fired before it.
        for x in evord[i1].iter() {
            if set.insert(x) {
                delta_buf.push(x as u32);
            }
        }
        return;
    }
    for x in rows.acc_end[ctx.event_begin[i1] as usize].iter() {
        if set.insert(x) {
            delta_buf.push(x as u32);
        }
    }
    {
        // i1's fired begin-predecessors: their round-start facts are
        // contained in i1's (just absorbed above), so their sparse
        // deltas complete the fold. Spans are stable; pushes append
        // past `e`, so indexed iteration is sound.
        let row = &acc_begin[ctx.event_begin[i1] as usize];
        row.for_each_in_diff(fired_mask, empty_ev, |k| {
            let (s, e) = delta_span[k];
            for idx in s as usize..e as usize {
                let x = delta_buf[idx];
                if set.insert(x as usize) {
                    delta_buf.push(x);
                }
            }
        });
    }
}

/// Does `e_i1`'s prior this round (round-start facts plus its saved
/// working set and those of its fired begin-predecessors) contain
/// `i2`? The final-state equivalent of the working set an anchor
/// evaluation builds, used by the rules-2/4 implied-order check.
#[allow(clippy::too_many_arguments)]
fn prior_contains(
    evord: &[BitSet],
    fired: &[u32],
    fired_mask: &BitSet,
    rows: &RowView<'_>,
    ctx: &OrderCtx<'_>,
    i1: usize,
    i2: usize,
) -> bool {
    if rows.acc_end[ctx.event_begin[i1] as usize].contains(i2) {
        return true;
    }
    if fired_mask.contains(i1) && evord[i1].contains(i2) {
        return true;
    }
    if let Some(acc_begin) = rows.acc_begin {
        let row = &acc_begin[ctx.event_begin[i1] as usize];
        return fired
            .iter()
            .any(|&k| row.contains(k as usize) && evord[k as usize].contains(i2));
    }
    false
}

/// Applies one round of rules over the round-start facts in `rows`:
/// atomicity and queue rules 1/3 at each anchor in `anchors` (dense
/// events, in event order), then the memo-less rules 2/4 at every
/// front send. This is the single rule core shared by the semi-naive
/// and naive engines; they differ only in how `rows` are obtained, in
/// which anchors they evaluate, and in whether memos are consulted
/// (`memos: None` is the naive textbook mode that re-tests every
/// candidate).
#[allow(clippy::too_many_arguments)]
fn run_round(
    g: &mut SyncGraph,
    idx: &RuleIndex<'_>,
    mut memos: Option<(&mut [BitSet], &mut [BitSet])>,
    rows: &RowView<'_>,
    ctx: &OrderCtx<'_>,
    anchors: &[u32],
    arena: &mut RoundArena,
    stats: &mut DerivationStats,
) {
    let RoundArena {
        evord,
        fired,
        fired_mask,
        set,
        fresh,
        empty_ev,
        empty_send,
        delta_buf,
        delta_span,
        ..
    } = arena;
    let ev_count = ctx.event_begin.len();
    if evord.len() < ev_count {
        evord.resize_with(ev_count, || BitSet::new(0));
    }
    if fired_mask.capacity() < ev_count {
        fired_mask.grow(ev_count);
    }
    if delta_span.len() < ev_count {
        delta_span.resize(ev_count, (0, 0));
    }
    fired.clear();
    fired_mask.clear();
    delta_buf.clear();

    for &j32 in anchors {
        let j = j32 as usize;
        let begin_j = ctx.event_begin[j];

        // Working set: events whose end ≺ begin(e_j) as of the round
        // start, plus this round's conclusions at begin-predecessors.
        // A fired begin-predecessor's round-start facts are already
        // contained in ours (its begin reaches ours), so folding its
        // sparse delta is the same union as folding its full set.
        set.copy_from(&rows.acc_end[begin_j as usize]);
        if let Some(acc_begin) = rows.acc_begin {
            let row = &acc_begin[begin_j as usize];
            row.for_each_in_diff(fired_mask, empty_ev, |k| {
                let (s, e) = delta_span[k];
                for &x in &delta_buf[s as usize..e as usize] {
                    set.insert(x as usize);
                }
            });
        }
        // This anchor's own delta accumulates from here (absorb pushes
        // only newly inserted facts); folded items above are covered by
        // the referenced predecessors' spans.
        let delta_start = delta_buf.len() as u32;

        let mut anchor_fired = false;

        // Atomicity rule: same-looper e1 with begin(e1) ≺ end(e_j).
        if let Some(acc_begin) = rows.acc_begin {
            let e_j = idx.table.events[j];
            let reach_end = &acc_begin[g.end(e_j) as usize];
            let mask = &idx.queue_mask[idx.table.queue_of[j].index()];
            let not: &BitSet = match &memos {
                Some((atom_done, _)) => &atom_done[j],
                None => empty_ev,
            };
            fresh.clear();
            reach_end.for_each_in_diff(mask, not, |i1| {
                if i1 != j {
                    fresh.push(i1);
                }
            });
            stats.instances += fresh.len() as u64;
            // Latest predecessors first: firing (e_k, e_j) before
            // (e_i, e_j) lets e_k's absorbed set imply the earlier
            // pairs, keeping materialized edges near-linear on
            // equal-delay chains posted from one task.
            fresh.sort_by_key(|&i1| std::cmp::Reverse(ctx.topo_pos[ctx.event_begin[i1] as usize]));
            for &i1 in fresh.iter() {
                if let Some((atom_done, _)) = &mut memos {
                    atom_done[j].insert(i1);
                }
                if set.contains(i1) {
                    continue; // already implied
                }
                if g.add_edge(g.end(idx.table.events[i1]), begin_j, EdgeKind::Atomicity) {
                    stats.atomicity_edges += 1;
                    anchor_fired = true;
                    absorb_conclusion(
                        set, evord, fired_mask, rows, ctx, delta_buf, delta_span, empty_ev, i1, j,
                    );
                }
            }
        }

        // Queue rules 1 and 3, with e_j as the later-sent event.
        if let (Some(acc_send), Some(sj)) = (rows.acc_send, ctx.send_of_event[j]) {
            let sj = sj as usize;
            let s2 = idx.sends[sj];
            if !s2.front {
                let reach = &acc_send[s2.node as usize];
                let mask = &idx.queue_send_mask[s2.queue.index()];
                let not: &BitSet = match &memos {
                    Some((_, decided)) => &decided[sj],
                    None => empty_send,
                };
                fresh.clear();
                reach.for_each_in_diff(mask, not, |i| {
                    if i != sj {
                        fresh.push(i);
                    }
                });
                stats.instances += fresh.len() as u64;
                // Same latest-first ordering as the atomicity loop.
                fresh.sort_by_key(|&i| {
                    idx.table
                        .dense(idx.sends[i].event)
                        .map(|d| {
                            std::cmp::Reverse(ctx.topo_pos[ctx.event_begin[d as usize] as usize])
                        })
                        .unwrap_or(std::cmp::Reverse(0))
                });
                for &i in fresh.iter() {
                    if let Some((_, decided)) = &mut memos {
                        decided[sj].insert(i);
                    }
                    let s1 = &idx.sends[i];
                    if !(s1.front || s1.delay_ms <= s2.delay_ms) {
                        continue;
                    }
                    let i1 = idx.table.dense(s1.event).expect("sent tasks are events") as usize;
                    if set.contains(i1) {
                        continue; // already implied
                    }
                    let rule = if s1.front { 3u8 } else { 1 };
                    if g.add_edge(g.end(s1.event), begin_j, EdgeKind::Queue(rule)) {
                        stats.queue_edges[if s1.front { 2 } else { 0 }] += 1;
                        anchor_fired = true;
                        absorb_conclusion(
                            set, evord, fired_mask, rows, ctx, delta_buf, delta_span, empty_ev, i1,
                            j,
                        );
                    }
                }
            }
        }

        if anchor_fired {
            evord[j].copy_from(set);
            delta_span[j] = (delta_start, delta_buf.len() as u32);
            fired_mask.insert(j);
            fired.push(j32);
        }
    }

    // Queue rules 2 and 4: a front-send s2 ordered after s1, with
    // s2 ≺ begin(e1) — the conclusion reverses (e2 runs first). These
    // pairs are memo-less (the side condition can become true later)
    // and re-checked every round in both engines.
    if let Some(acc_send) = rows.acc_send {
        for (j, s2) in idx.sends.iter().enumerate() {
            if !s2.front {
                continue;
            }
            let reach = &acc_send[s2.node as usize];
            let mask = &idx.queue_send_mask[s2.queue.index()];
            for i in reach.iter() {
                if i == j || !mask.contains(i) {
                    continue;
                }
                stats.instances += 1;
                let s1 = &idx.sends[i];
                let begin_e1 = g.begin(s1.event);
                if !acc_send[begin_e1 as usize].contains(j) {
                    continue; // side condition s2 ≺ begin(e1) not met
                }
                let i1 = idx.table.dense(s1.event).expect("sent tasks are events") as usize;
                let i2 = idx.table.dense(s2.event).expect("sent tasks are events") as usize;
                if prior_contains(evord, fired, fired_mask, rows, ctx, i1, i2) {
                    continue; // already implied
                }
                let rule = if s1.front { 4u8 } else { 2 };
                if g.add_edge(g.end(s2.event), begin_e1, EdgeKind::Queue(rule)) {
                    stats.queue_edges[if s1.front { 3 } else { 1 }] += 1;
                }
            }
        }
    }
}

/// Incrementally recomputes the reachability rows affected by the
/// `suffix` of newly added edges: every edge target is enqueued, and
/// affected nodes are processed **in topological order** (a min-heap
/// keyed by `topo_pos`), so each node's row is recomputed from its
/// predecessors' final rows exactly once — the frontier-sized
/// equivalent of one [`flow`] sweep, not a chaotic iteration. Rows
/// only grow (the graph only gains edges), so a recompute is a
/// word-level union.
///
/// `topo_pos` must be a valid topological numbering of the **current**
/// graph (including the suffix edges): when a node is popped, every
/// predecessor that could still change has a smaller position and was
/// therefore popped first.
///
/// `on_changed` fires once for every node whose row grew.
#[allow(clippy::too_many_arguments)]
fn propagate_rows(
    g: &SyncGraph,
    rows: &mut [BitSet],
    marks: &[Option<u32>],
    width: usize,
    suffix: &[(NodeId, NodeId, EdgeKind)],
    topo_pos: &[u32],
    queued: &mut BitSet,
    heap: &mut BinaryHeap<Reverse<(u32, NodeId)>>,
    mut on_changed: impl FnMut(NodeId),
) {
    let n_nodes = g.node_count();
    if queued.capacity() < n_nodes {
        queued.grow(n_nodes);
    }
    queued.clear();
    heap.clear();
    for &(_, to, _) in suffix {
        if queued.insert(to as usize) {
            heap.push(Reverse((topo_pos[to as usize], to)));
        }
    }
    while let Some(Reverse((_, n))) = heap.pop() {
        // The queued bit stays set: processed-in-order nodes are final.
        // Rows only grow, so unioning the predecessors straight into
        // the node's row (taken out to satisfy the borrow checker) is
        // exactly the recompute.
        let mut row = std::mem::take(&mut rows[n as usize]);
        if row.capacity() != width {
            row = BitSet::new(width);
        }
        let mut grew = false;
        for p in g.preds(n) {
            grew |= row.union_with(&rows[p as usize]);
            if let Some(m) = marks[p as usize] {
                grew |= row.insert(m as usize);
            }
        }
        rows[n as usize] = row;
        if grew {
            on_changed(n);
            for (s, _) in g.succs(n) {
                if queued.insert(s as usize) {
                    heap.push(Reverse((topo_pos[s as usize], s)));
                }
            }
        }
    }
}

/// Source marks for the three row families of one fixpoint call.
struct CallMarks {
    begin_marks: Vec<Option<u32>>,
    end_marks: Vec<Option<u32>>,
    send_marks: Vec<Option<u32>>,
    event_begin: Vec<NodeId>,
    event_end: Vec<NodeId>,
    send_of_event: Vec<Option<u32>>,
}

fn call_marks(
    g: &SyncGraph,
    table: &EventTable,
    sends: &[SendSite],
    track_send: bool,
) -> CallMarks {
    let mut begin_marks: Vec<Option<u32>> = vec![None; g.node_count()];
    let mut end_marks: Vec<Option<u32>> = vec![None; g.node_count()];
    for (i, &e) in table.events.iter().enumerate() {
        begin_marks[g.begin(e) as usize] = Some(i as u32);
        end_marks[g.end(e) as usize] = Some(i as u32);
    }
    let event_begin: Vec<NodeId> = table.events.iter().map(|&e| g.begin(e)).collect();
    let event_end: Vec<NodeId> = table.events.iter().map(|&e| g.end(e)).collect();
    let mut send_marks: Vec<Option<u32>> = Vec::new();
    let mut send_of_event: Vec<Option<u32>> = vec![None; table.len()];
    if track_send {
        send_marks = vec![None; g.node_count()];
        for (i, s) in sends.iter().enumerate() {
            send_marks[s.node as usize] = Some(i as u32);
            // Each event is posted by at most one send (trace validation).
            if let Some(d) = table.dense(s.event) {
                send_of_event[d as usize] = Some(i as u32);
            }
        }
    }
    CallMarks {
        begin_marks,
        end_marks,
        send_marks,
        event_begin,
        event_end,
        send_of_event,
    }
}

/// The semi-naive fixpoint behind [`derive`], factored over persistent
/// [`FixpointState`] so incremental sessions can extend a previous run:
/// pairs memoized in `st` are never re-examined, converged reachability
/// rows are reused and only the appended edge-log suffix is propagated,
/// and re-running after new nodes/edges were appended converges to the
/// same least fixpoint as a batch derivation (materialized edges may
/// differ where a fact is already implied transitively; the closure is
/// identical).
pub(crate) fn fixpoint(
    g: &mut SyncGraph,
    config: &CausalityConfig,
    st: &mut FixpointState,
) -> Result<DerivationStats, HbError> {
    fixpoint_with_limit(g, config, st, MAX_ROUNDS)
}

/// [`fixpoint`] with an explicit round limit (tests exercise the
/// non-convergence diagnostic by lowering it).
pub(crate) fn fixpoint_with_limit(
    g: &mut SyncGraph,
    config: &CausalityConfig,
    st: &mut FixpointState,
    max_rounds: u32,
) -> Result<DerivationStats, HbError> {
    let mut stats = DerivationStats::default();
    if !config.atomicity_rule && !config.queue_rules {
        // Still verify acyclicity so every model is checked.
        g.topo_order().map_err(|nodes| HbError::cyclic(g, &nodes))?;
        stats.rounds = 1;
        return Ok(stats);
    }

    let ev_count = st.table.len();
    let track_send = config.queue_rules && !st.sends.is_empty();

    // Fast path: rows already converged for this exact graph — nothing
    // appended since, so the previous convergence still stands.
    if let Some(rows) = &st.rows {
        if rows.edges_applied == g.edge_log().len()
            && rows.node_count == g.node_count()
            && rows.atomicity == config.atomicity_rule
            && rows.acc_send.is_some() == track_send
            && (!track_send || rows.send_width == st.sends.len())
        {
            stats.rounds = 1;
            return Ok(stats);
        }
    }

    let marks = call_marks(g, &st.table, &st.sends, track_send);

    let FixpointState {
        table,
        queue_mask,
        sends,
        queue_send_mask,
        decided,
        atom_done,
        rows: rows_slot,
        arena,
    } = st;

    // Size the arena for this call.
    if arena.empty_ev.capacity() != ev_count {
        arena.empty_ev = BitSet::new(ev_count);
    }
    if arena.empty_send.capacity() != sends.len() {
        arena.empty_send = BitSet::new(sends.len());
    }
    if arena.dirty.capacity() < ev_count {
        arena.dirty.grow(ev_count);
    }
    arena.dirty.clear();

    // Bring the rows up to date with the graph: reuse them (the loop
    // below propagates the appended edge-log suffix before evaluating
    // anchors) when the previous rows are compatible and the suffix is
    // small, rebuild with full sweeps otherwise.
    let compatible = rows_slot.as_ref().is_some_and(|rows| {
        rows.atomicity == config.atomicity_rule && rows.acc_send.is_some() == track_send
    });
    let suffix_len = rows_slot
        .as_ref()
        .map_or(usize::MAX, |rows| g.edge_log().len() - rows.edges_applied);
    let reuse = compatible && suffix_len.saturating_mul(4) <= g.edge_count();

    let mut dirty_all = false;
    let mut topo_cache: Option<Vec<NodeId>> = None;

    if reuse {
        let rows = rows_slot.as_mut().expect("reuse implies rows");
        // Extend row vectors for nodes appended since the last call.
        let n_nodes = g.node_count();
        rows.acc_end.resize_with(n_nodes, || BitSet::new(ev_count));
        if let Some(acc_begin) = &mut rows.acc_begin {
            acc_begin.resize_with(n_nodes, || BitSet::new(ev_count));
        }
        if track_send {
            let acc_send = rows.acc_send.as_mut().expect("compat implies send rows");
            if rows.send_width < sends.len() {
                for row in acc_send.iter_mut() {
                    row.grow(sends.len());
                }
                rows.send_width = sends.len();
            }
            acc_send.resize_with(n_nodes, || BitSet::new(sends.len()));
        }
        rows.node_count = n_nodes;
        // `rows.edges_applied` stays stale: the round loop propagates
        // the cross-call suffix once it has a topological numbering of
        // the current graph.
    } else {
        // Fresh build: three linear sweeps over the current graph.
        let topo = g.topo_order().map_err(|nodes| HbError::cyclic(g, &nodes))?;
        let acc_end = flow(g, &topo, &marks.end_marks, ev_count);
        let acc_begin = config
            .atomicity_rule
            .then(|| flow(g, &topo, &marks.begin_marks, ev_count));
        let acc_send = track_send.then(|| flow(g, &topo, &marks.send_marks, sends.len()));
        *rows_slot = Some(RowState {
            edges_applied: g.edge_log().len(),
            node_count: g.node_count(),
            atomicity: config.atomicity_rule,
            acc_end,
            acc_begin,
            acc_send,
            send_width: sends.len(),
        });
        dirty_all = true;
        topo_cache = Some(topo);
    }

    let idx = RuleIndex {
        table,
        queue_mask,
        sends,
        queue_send_mask,
    };

    // Per-call ordering scratch, refilled each round.
    let mut topo_pos: Vec<u32> = vec![0; g.node_count()];
    let mut event_order: Vec<u32> = (0..ev_count as u32).collect();
    let mut order_pos: Vec<u32> = vec![0; ev_count];
    let mut anchors = std::mem::take(&mut arena.anchors);
    let mut last_delta = (0usize, 0usize);

    loop {
        stats.rounds += 1;
        if stats.rounds > max_rounds {
            let delta = &g.edge_log()[last_delta.0..last_delta.1];
            let err = HbError::diverged(g, stats.rounds - 1, delta);
            arena.anchors = anchors;
            return Err(err);
        }
        let topo = match topo_cache.take() {
            Some(t) => t,
            None => match g.topo_order() {
                Ok(t) => t,
                Err(nodes) => {
                    let err = HbError::cyclic(g, &nodes);
                    arena.anchors = anchors;
                    return Err(err);
                }
            },
        };
        for (pos, &n) in topo.iter().enumerate() {
            topo_pos[n as usize] = pos as u32;
        }

        // Bring the rows up to date with the graph before evaluating
        // anchors: propagate the edge-log suffix appended since the
        // rows last converged — the cross-call base edges on the first
        // iteration of a reused state, the previous round's conclusion
        // delta afterwards — collecting the anchors whose premise rows
        // changed as this round's dirty set. This is the only
        // propagation site, and it runs with a topological numbering
        // of the *current* graph (required by [`propagate_rows`]).
        {
            let rows = rows_slot.as_mut().expect("rows built above");
            if rows.edges_applied < g.edge_log().len() && ev_count < SMALL_EVENT_CUTOFF {
                // Small-trace path: full sweeps, every anchor re-checked
                // (see [`SMALL_EVENT_CUTOFF`]); results are identical.
                rows.acc_end = flow(g, &topo, &marks.end_marks, ev_count);
                if rows.acc_begin.is_some() {
                    rows.acc_begin = Some(flow(g, &topo, &marks.begin_marks, ev_count));
                }
                if track_send {
                    rows.acc_send = Some(flow(g, &topo, &marks.send_marks, sends.len()));
                    rows.send_width = sends.len();
                }
                rows.node_count = g.node_count();
                rows.edges_applied = g.edge_log().len();
                dirty_all = true;
            }
            if rows.edges_applied < g.edge_log().len() {
                arena.dirty.clear();
                let suffix = &g.edge_log()[rows.edges_applied..];
                propagate_rows(
                    g,
                    &mut rows.acc_end,
                    &marks.end_marks,
                    ev_count,
                    suffix,
                    &topo_pos,
                    &mut arena.queued,
                    &mut arena.heap,
                    |_| {},
                );
                if let Some(acc_begin) = &mut rows.acc_begin {
                    let dirty = &mut arena.dirty;
                    propagate_rows(
                        g,
                        acc_begin,
                        &marks.begin_marks,
                        ev_count,
                        suffix,
                        &topo_pos,
                        &mut arena.queued,
                        &mut arena.heap,
                        |n| {
                            // The atomicity premise of e_j reads the
                            // row at end(e_j).
                            if let Some(j) = marks.end_marks[n as usize] {
                                dirty.insert(j as usize);
                            }
                        },
                    );
                }
                if track_send {
                    let acc_send = rows.acc_send.as_mut().expect("send rows present");
                    let dirty = &mut arena.dirty;
                    propagate_rows(
                        g,
                        acc_send,
                        &marks.send_marks,
                        sends.len(),
                        suffix,
                        &topo_pos,
                        &mut arena.queued,
                        &mut arena.heap,
                        |n| {
                            // Rules 1/3 at anchor e_j read the row at
                            // e_j's posting send site.
                            if let Some(si) = marks.send_marks[n as usize] {
                                let s = &sends[si as usize];
                                if !s.front {
                                    if let Some(j) = table.dense(s.event) {
                                        dirty.insert(j as usize);
                                    }
                                }
                            }
                        },
                    );
                }
                rows.edges_applied = g.edge_log().len();
            }
        }

        event_order.sort_by_key(|&i| topo_pos[marks.event_begin[i as usize] as usize]);
        for (pos, &i) in event_order.iter().enumerate() {
            order_pos[i as usize] = pos as u32;
        }
        anchors.clear();
        if dirty_all {
            anchors.extend_from_slice(&event_order);
        } else {
            anchors.extend(
                event_order
                    .iter()
                    .copied()
                    .filter(|&i| arena.dirty.contains(i as usize)),
            );
        }

        let rows = rows_slot.as_ref().expect("rows built above");
        let view = RowView {
            acc_end: &rows.acc_end,
            acc_begin: rows.acc_begin.as_deref(),
            acc_send: rows.acc_send.as_deref(),
        };
        let ctx = OrderCtx {
            event_begin: &marks.event_begin,
            event_end: &marks.event_end,
            send_of_event: &marks.send_of_event,
            topo_pos: &topo_pos,
            order_pos: &order_pos,
        };
        let log_before = g.edge_log().len();
        run_round(
            g,
            &idx,
            Some((atom_done, decided)),
            &view,
            &ctx,
            &anchors,
            arena,
            &mut stats,
        );
        let log_after = g.edge_log().len();

        if log_after == log_before {
            arena.anchors = anchors;
            return Ok(stats);
        }
        // The next iteration propagates this delta into the rows once
        // it has a topological numbering that covers the new edges.
        last_delta = (log_before, log_after);
        dirty_all = false;
    }
}

/// The naive reference loop: every round sweeps fresh reachability
/// facts with three full [`flow`] passes and re-tests **every** rule
/// instance — all event pairs and send-site pairs — with no memos and
/// no dirty tracking. Kept solely as the differential-test and
/// benchmark baseline; it shares [`run_round`] with the semi-naive
/// engine, so both materialize identical edge sets round by round.
///
/// Does not read or write `st`'s memos or persistent rows (only its
/// indices and scratch arena), so it can be interleaved with
/// [`fixpoint`] runs on separate graphs for differential testing.
pub(crate) fn fixpoint_naive(
    g: &mut SyncGraph,
    config: &CausalityConfig,
    st: &mut FixpointState,
) -> Result<DerivationStats, HbError> {
    let mut stats = DerivationStats::default();
    if !config.atomicity_rule && !config.queue_rules {
        g.topo_order().map_err(|nodes| HbError::cyclic(g, &nodes))?;
        stats.rounds = 1;
        return Ok(stats);
    }

    let ev_count = st.table.len();
    let track_send = config.queue_rules && !st.sends.is_empty();
    let marks = call_marks(g, &st.table, &st.sends, track_send);

    let FixpointState {
        table,
        queue_mask,
        sends,
        queue_send_mask,
        arena,
        ..
    } = st;

    if arena.empty_ev.capacity() != ev_count {
        arena.empty_ev = BitSet::new(ev_count);
    }
    if arena.empty_send.capacity() != sends.len() {
        arena.empty_send = BitSet::new(sends.len());
    }

    let idx = RuleIndex {
        table,
        queue_mask,
        sends,
        queue_send_mask,
    };

    let mut topo_pos: Vec<u32> = vec![0; g.node_count()];
    let mut event_order: Vec<u32> = (0..ev_count as u32).collect();
    let mut order_pos: Vec<u32> = vec![0; ev_count];
    let mut last_delta = (0usize, 0usize);

    loop {
        stats.rounds += 1;
        if stats.rounds > MAX_ROUNDS {
            let delta = &g.edge_log()[last_delta.0..last_delta.1];
            return Err(HbError::diverged(g, stats.rounds - 1, delta));
        }
        let topo = g.topo_order().map_err(|nodes| HbError::cyclic(g, &nodes))?;

        // Full sweeps: the naive per-round cost the semi-naive engine
        // replaces with frontier propagation.
        let acc_end = flow(g, &topo, &marks.end_marks, ev_count);
        let acc_begin = config
            .atomicity_rule
            .then(|| flow(g, &topo, &marks.begin_marks, ev_count));
        let acc_send = track_send.then(|| flow(g, &topo, &marks.send_marks, sends.len()));

        for (pos, &n) in topo.iter().enumerate() {
            topo_pos[n as usize] = pos as u32;
        }
        event_order.sort_by_key(|&i| topo_pos[marks.event_begin[i as usize] as usize]);
        for (pos, &i) in event_order.iter().enumerate() {
            order_pos[i as usize] = pos as u32;
        }

        let view = RowView {
            acc_end: &acc_end,
            acc_begin: acc_begin.as_deref(),
            acc_send: acc_send.as_deref(),
        };
        let ctx = OrderCtx {
            event_begin: &marks.event_begin,
            event_end: &marks.event_end,
            send_of_event: &marks.send_of_event,
            topo_pos: &topo_pos,
            order_pos: &order_pos,
        };
        let anchors = event_order.clone();
        let log_before = g.edge_log().len();
        run_round(g, &idx, None, &view, &ctx, &anchors, arena, &mut stats);
        let log_after = g.edge_log().len();
        if log_after == log_before {
            return Ok(stats);
        }
        last_delta = (log_before, log_after);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::base_graph;
    use cafa_trace::TraceBuilder;

    fn run(trace: &Trace) -> (SyncGraph, DerivationStats) {
        let config = CausalityConfig::cafa();
        let mut g = base_graph(trace, &config);
        let stats = derive(&mut g, trace, &config).expect("derivation converges");
        (g, stats)
    }

    fn ordered(g: &SyncGraph, e1: TaskId, e2: TaskId) -> bool {
        let mut scratch = BitSet::new(g.node_count());
        g.reaches(g.end(e1), g.begin(e2), &mut scratch)
    }

    /// Figure 4b: two sends with equal delays from one thread → ordered.
    #[test]
    fn fig4b_equal_delay_sends_order_events() {
        let mut b = TraceBuilder::new("fig4b");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 1);
        let e = b.post(t, q, "B", 1);
        b.process_event(a);
        b.process_event(e);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, a, e));
        assert!(!ordered(&g, e, a));
        assert!(stats.queue_edges[0] >= 1);
    }

    /// Figure 4c: earlier send has the larger delay → no order.
    #[test]
    fn fig4c_larger_delay_first_leaves_events_unordered() {
        let mut b = TraceBuilder::new("fig4c");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 5);
        let e = b.post(t, q, "B", 0);
        // B actually ran first.
        b.process_event(e);
        b.process_event(a);
        let trace = b.finish().unwrap();
        let (g, _) = run(&trace);
        assert!(!ordered(&g, a, e));
        assert!(!ordered(&g, e, a));
    }

    /// Figure 4d: send(A) then sendAtFront(B) inside event C on the same
    /// looper → B ≺ A (queue rule 2).
    #[test]
    fn fig4d_sendatfront_within_event_orders_front_first() {
        let mut b = TraceBuilder::new("fig4d");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let c = b.post(t, q, "C", 0);
        b.process_event(c);
        let a = b.post(c, q, "A", 0);
        let front = b.post_front(c, q, "B");
        b.process_event(front);
        b.process_event(a);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, front, a), "B must happen-before A");
        assert!(!ordered(&g, a, front));
        assert!(ordered(&g, c, a), "atomicity: C before A");
        assert!(stats.queue_edges[1] >= 1, "rule 2 fired");
    }

    /// Figures 4e/4f: send(A) from one task, sendAtFront(B) from another
    /// with no `sendAtFront ≺ begin(A)` guarantee → unordered.
    #[test]
    fn fig4ef_sendatfront_without_guarantee_is_unordered() {
        let mut b = TraceBuilder::new("fig4ef");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let t2 = b.add_thread(p, "T2");
        let a = b.post(t, q, "A", 0);
        let front = b.post_front(t2, q, "B");
        b.process_event(a);
        b.process_event(front);
        let trace = b.finish().unwrap();
        let (g, _) = run(&trace);
        assert!(!ordered(&g, a, front));
        assert!(!ordered(&g, front, a));
    }

    /// Queue rule 3: a front-send ordered before a later plain send →
    /// the front event runs first, regardless of delay.
    #[test]
    fn rule3_front_send_before_plain_send() {
        let mut b = TraceBuilder::new("rule3");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let front = b.post_front(t, q, "A");
        let e = b.post(t, q, "B", 50);
        b.process_event(front);
        b.process_event(e);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, front, e));
        assert!(stats.queue_edges[2] >= 1, "rule 3 fired");
    }

    /// Queue rule 4: two front-sends inside one event on the target
    /// looper → the later front-send runs first.
    #[test]
    fn rule4_two_front_sends_within_event() {
        let mut b = TraceBuilder::new("rule4");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let c = b.post(t, q, "C", 0);
        b.process_event(c);
        let e1 = b.post_front(c, q, "A");
        let e2 = b.post_front(c, q, "B");
        // B jumped in front of A.
        b.process_event(e2);
        b.process_event(e1);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, e2, e1), "the later front-send runs first");
        assert!(!ordered(&g, e1, e2));
        assert!(stats.queue_edges[3] >= 1, "rule 4 fired");
    }

    /// Figure 4a: A forks T; T performs a listener registered before B
    /// is performed... the atomicity rule orders A before B.
    #[test]
    fn fig4a_atomicity_via_fork_and_listener() {
        let mut b = TraceBuilder::new("fig4a");
        let p = b.add_process();
        let q = b.add_queue(p);
        let _main = b.add_thread(p, "main");
        let l = b.add_listener("android.view");
        let a = b.external(q, "A");
        let e = b.external(q, "B");
        b.process_event(a);
        let t = b.fork(a, p, "T");
        b.register(t, l);
        b.process_event(e);
        b.perform(e, l);
        let trace = b.finish().unwrap();

        // Disable the external rule so only fork+register+atomicity act.
        let mut config = CausalityConfig::cafa();
        config.external_rule = false;
        let mut g = base_graph(&trace, &config);
        let stats = derive(&mut g, &trace, &config).unwrap();
        assert!(ordered(&g, a, e), "atomicity lifts fork≺perform to A≺B");
        assert!(stats.atomicity_edges >= 1);
    }

    /// Derivations cascade across rounds: a queue-rule edge enables an
    /// atomicity edge for another pair.
    #[test]
    fn fixpoint_needs_multiple_rounds() {
        let mut b = TraceBuilder::new("cascade");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        // Two equal-delay sends order A ≺ B (rule 1). B sends C; then
        // atomicity and rule 1 chain C after A transitively.
        let a = b.post(t, q, "A", 0);
        let e = b.post(t, q, "B", 0);
        b.process_event(a);
        b.process_event(e);
        let c = b.post(e, q, "C", 0);
        b.process_event(c);
        let trace = b.finish().unwrap();
        let (g, stats) = run(&trace);
        assert!(ordered(&g, a, e));
        assert!(ordered(&g, e, c));
        assert!(ordered(&g, a, c));
        assert!(stats.rounds >= 2);
    }

    /// An empty trace derives nothing and converges immediately.
    #[test]
    fn empty_trace_converges() {
        let trace = TraceBuilder::new("empty").finish().unwrap();
        let (_, stats) = run(&trace);
        assert_eq!(stats.derived_edges(), 0);
    }

    /// The naive reference materializes the exact same edges, rounds,
    /// and derived-edge counts as the semi-naive engine, while
    /// evaluating at least as many rule instances.
    #[test]
    fn naive_reference_matches_semi_naive() {
        let mut b = TraceBuilder::new("cascade");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 0);
        let e = b.post(t, q, "B", 0);
        b.process_event(a);
        b.process_event(e);
        let c = b.post(e, q, "C", 0);
        let f = b.post_front(e, q, "F");
        b.process_event(f);
        b.process_event(c);
        let trace = b.finish().unwrap();

        let config = CausalityConfig::cafa();
        let mut g_semi = base_graph(&trace, &config);
        let semi = derive(&mut g_semi, &trace, &config).unwrap();
        let mut g_naive = base_graph(&trace, &config);
        let naive = derive_naive(&mut g_naive, &trace, &config).unwrap();

        let mut edges_semi = g_semi.edge_log().to_vec();
        let mut edges_naive = g_naive.edge_log().to_vec();
        edges_semi.sort_by_key(|&(f, t, _)| (f, t));
        edges_naive.sort_by_key(|&(f, t, _)| (f, t));
        assert_eq!(edges_semi, edges_naive);
        assert_eq!(semi.rounds, naive.rounds);
        assert_eq!(semi.atomicity_edges, naive.atomicity_edges);
        assert_eq!(semi.queue_edges, naive.queue_edges);
        assert!(naive.instances >= semi.instances);
    }

    /// An event task with no queue surfaces as a typed error, not a
    /// panic (regression: `EventTable::new` used to `expect`).
    #[test]
    fn malformed_event_without_queue_is_typed_error() {
        let mut b = TraceBuilder::new("malformed");
        let p = b.add_process();
        let _q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        // Post to a queue id that does not exist: validation would
        // reject this, so bypass it.
        let bad_q = QueueId::new(7);
        let _ = b.post(t, bad_q, "A", 0);
        let trace = b.finish_unchecked();
        let err = EventTable::new(&trace).unwrap_err();
        assert!(matches!(err, HbError::MalformedTrace { .. }));
        assert!(err.to_string().contains("queue"));

        // And it propagates through the public derivation entry point.
        let config = CausalityConfig::cafa();
        let mut g = SyncGraph::from_trace(&trace);
        assert!(matches!(
            derive(&mut g, &trace, &config),
            Err(HbError::MalformedTrace { .. })
        ));
    }

    /// Hitting the round limit reports a typed non-convergence error
    /// naming the last delta.
    #[test]
    fn round_limit_names_last_delta() {
        // The cascade trace needs ≥ 2 rounds; a limit of 1 must fail
        // after round 1 with that round's edges as the delta.
        let mut b = TraceBuilder::new("cascade");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 0);
        let e = b.post(t, q, "B", 0);
        b.process_event(a);
        b.process_event(e);
        let c = b.post(e, q, "C", 0);
        b.process_event(c);
        let trace = b.finish().unwrap();
        let config = CausalityConfig::cafa();
        let mut g = base_graph(&trace, &config);
        let mut st = FixpointState::new(&trace).unwrap();
        st.add_sends(&collect_sends(&g, &trace));
        let err = fixpoint_with_limit(&mut g, &config, &mut st, 1).unwrap_err();
        match err {
            HbError::DerivationDiverged {
                rounds,
                delta_edges,
                last_delta,
            } => {
                assert_eq!(rounds, 1);
                assert!(delta_edges >= 1);
                assert!(!last_delta.is_empty());
            }
            other => panic!("expected DerivationDiverged, got {other:?}"),
        }
    }

    /// A converged state re-run on an unchanged graph takes the O(1)
    /// fast path: one round, zero instances.
    #[test]
    fn converged_rerun_is_a_noop() {
        let mut b = TraceBuilder::new("rerun");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 0);
        let e = b.post(t, q, "B", 0);
        b.process_event(a);
        b.process_event(e);
        let trace = b.finish().unwrap();
        let config = CausalityConfig::cafa();
        let mut g = base_graph(&trace, &config);
        let mut st = FixpointState::new(&trace).unwrap();
        st.add_sends(&collect_sends(&g, &trace));
        let first = fixpoint(&mut g, &config, &mut st).unwrap();
        assert!(first.derived_edges() >= 1);
        let edges_before = g.edge_log().len();
        let second = fixpoint(&mut g, &config, &mut st).unwrap();
        assert_eq!(second.rounds, 1);
        assert_eq!(second.instances, 0);
        assert_eq!(second.derived_edges(), 0);
        assert_eq!(g.edge_log().len(), edges_before);
    }
}
