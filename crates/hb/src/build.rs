//! Construction of the base happens-before edges from a trace.
//!
//! These are the *directly observable* causal orders of §3.3 — program
//! order (built into the graph chains), fork/join, signal-and-wait,
//! send→begin, register→perform, Binder RPC, and the external-input
//! rule — plus the baseline-specific edges (total event order,
//! unlock→lock). The *derived* orders (atomicity and queue rules) are
//! computed afterwards by the fixpoint in [`crate::rules`].

use std::collections::HashMap;

use cafa_trace::{MonitorId, OpRef, Record, Trace, TxnId};

use crate::config::CausalityConfig;
use crate::graph::{EdgeKind, SyncGraph};
use crate::rules::SendSite;

/// Builds the sync graph for `trace` and installs all base edges
/// demanded by `config`.
pub fn base_graph(trace: &Trace, config: &CausalityConfig) -> SyncGraph {
    base_graph_with_sends(trace, config).0
}

/// [`base_graph`] that also returns the trace's send sites, collected
/// during the same sweep — the fixpoint engine's rule index needs them,
/// and this saves it a second pass over the operations.
pub(crate) fn base_graph_with_sends(
    trace: &Trace,
    config: &CausalityConfig,
) -> (SyncGraph, Vec<SendSite>) {
    // Defer adjacency: every edge below goes only to the log, and one
    // compaction at the end builds the flat CSR — on large traces the
    // per-edge adjacency writes otherwise dominate construction.
    let mut g = SyncGraph::from_trace_deferred(trace);
    let mut sends: Vec<SendSite> = Vec::new();

    // Pairing tables filled in one sweep.
    let mut notifies: HashMap<(MonitorId, u32), Vec<OpRef>> = HashMap::new();
    let mut waits: HashMap<(MonitorId, u32), Vec<OpRef>> = HashMap::new();
    let mut registers: HashMap<cafa_trace::ListenerId, Vec<OpRef>> = HashMap::new();
    let mut performs: HashMap<cafa_trace::ListenerId, Vec<OpRef>> = HashMap::new();
    let mut rpc_calls: HashMap<TxnId, Vec<OpRef>> = HashMap::new();
    let mut rpc_handles: HashMap<TxnId, Vec<OpRef>> = HashMap::new();
    let mut rpc_replies: HashMap<TxnId, Vec<OpRef>> = HashMap::new();
    let mut rpc_receives: HashMap<TxnId, Vec<OpRef>> = HashMap::new();
    let mut locks: HashMap<MonitorId, Vec<(u32, OpRef)>> = HashMap::new();
    let mut unlocks: HashMap<MonitorId, Vec<(u32, OpRef)>> = HashMap::new();

    for (at, record) in trace.iter_ops() {
        match *record {
            Record::Fork { child } => {
                let n = g.node_of(at).expect("fork is a sync record");
                let edge = (n, g.begin(child));
                g.add_edge(edge.0, edge.1, EdgeKind::Fork);
            }
            Record::Join { child } => {
                let n = g.node_of(at).expect("join is a sync record");
                g.add_edge(g.end(child), n, EdgeKind::Join);
            }
            Record::Send {
                event,
                queue,
                delay_ms,
            } => {
                let n = g.node_of(at).expect("send is a sync record");
                g.add_edge(n, g.begin(event), EdgeKind::Send);
                sends.push(SendSite {
                    node: n,
                    event,
                    queue,
                    delay_ms,
                    front: false,
                });
            }
            Record::SendAtFront { event, queue } => {
                let n = g.node_of(at).expect("send is a sync record");
                g.add_edge(n, g.begin(event), EdgeKind::Send);
                sends.push(SendSite {
                    node: n,
                    event,
                    queue,
                    delay_ms: 0,
                    front: true,
                });
            }
            Record::Notify { monitor, gen } => notifies.entry((monitor, gen)).or_default().push(at),
            Record::Wait { monitor, gen } => waits.entry((monitor, gen)).or_default().push(at),
            Record::Register { listener } => registers.entry(listener).or_default().push(at),
            Record::Perform { listener } => performs.entry(listener).or_default().push(at),
            Record::RpcCall { txn } => rpc_calls.entry(txn).or_default().push(at),
            Record::RpcHandle { txn } => rpc_handles.entry(txn).or_default().push(at),
            Record::RpcReply { txn } => rpc_replies.entry(txn).or_default().push(at),
            Record::RpcReceive { txn } => rpc_receives.entry(txn).or_default().push(at),
            Record::Lock { monitor, gen } => locks.entry(monitor).or_default().push((gen, at)),
            Record::Unlock { monitor, gen } => unlocks.entry(monitor).or_default().push((gen, at)),
            _ => {}
        }
    }

    // Signal-and-wait rule, paired by notification generation.
    for (key, ns) in &notifies {
        if let Some(ws) = waits.get(key) {
            for &n in ns {
                for &w in ws {
                    let (nn, wn) = (g.node_of(n).unwrap(), g.node_of(w).unwrap());
                    if n.task == w.task {
                        continue; // a task cannot wake its own wait
                    }
                    g.add_edge(nn, wn, EdgeKind::NotifyWait);
                }
            }
        }
    }

    // Event-listener rule: every register happens-before every perform
    // of the same listener (same-task pairs that would contradict
    // program order are skipped; they cannot occur in real traces).
    if config.listener_rule {
        for (listener, regs) in &registers {
            if let Some(perfs) = performs.get(listener) {
                for &r in regs {
                    for &p in perfs {
                        if r.task == p.task && r.index >= p.index {
                            continue;
                        }
                        let (rn, pn) = (g.node_of(r).unwrap(), g.node_of(p).unwrap());
                        g.add_edge(rn, pn, EdgeKind::Register);
                    }
                }
            }
        }
    }

    // Binder RPC: call ≺ handle, reply ≺ receive (§5.2).
    for (txn, calls) in &rpc_calls {
        if let Some(handles) = rpc_handles.get(txn) {
            for &c in calls {
                for &h in handles {
                    g.add_edge(g.node_of(c).unwrap(), g.node_of(h).unwrap(), EdgeKind::Rpc);
                }
            }
        }
    }
    for (txn, replies) in &rpc_replies {
        if let Some(receives) = rpc_receives.get(txn) {
            for &r in replies {
                for &rc in receives {
                    g.add_edge(g.node_of(r).unwrap(), g.node_of(rc).unwrap(), EdgeKind::Rpc);
                }
            }
        }
    }

    // External-input rule: chain consecutive externally-generated events.
    if config.external_rule {
        for pair in trace.external_events().windows(2) {
            g.add_edge(g.end(pair[0]), g.begin(pair[1]), EdgeKind::External);
        }
    }

    // Conventional baseline: each looper's events in a total order.
    if config.total_event_order {
        for (_, q) in trace.queues() {
            for pair in q.events.windows(2) {
                g.add_edge(g.end(pair[0]), g.begin(pair[1]), EdgeKind::TotalOrder);
            }
        }
    }

    // FastTrack-style ablation: unlock(g) ≺ next lock acquisition.
    if config.lock_hb {
        for (monitor, mut uls) in unlocks {
            let Some(mut ls) = locks.remove(&monitor) else {
                continue;
            };
            uls.sort_by_key(|&(gen, _)| gen);
            ls.sort_by_key(|&(gen, _)| gen);
            for &(gen, at) in &uls {
                // The next acquisition after this release.
                let next = ls.partition_point(|&(lgen, _)| lgen <= gen);
                if let Some(&(_, lock_at)) = ls.get(next) {
                    g.add_edge(
                        g.node_of(at).unwrap(),
                        g.node_of(lock_at).unwrap(),
                        EdgeKind::LockOrder,
                    );
                }
            }
        }
    }

    g.compact();
    (g, sends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;
    use cafa_trace::TraceBuilder;

    #[test]
    fn fork_join_edges() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let main = b.add_thread(p, "main");
        let w = b.fork(main, p, "w");
        b.join(main, w);
        let trace = b.finish().unwrap();
        let g = base_graph(&trace, &CausalityConfig::cafa());
        let mut scratch = BitSet::new(g.node_count());
        assert!(g.reaches(g.begin(main), g.begin(w), &mut scratch));
        assert!(g.reaches(g.end(w), g.end(main), &mut scratch));
    }

    #[test]
    fn notify_wait_pairs_by_generation() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let a = b.add_thread(p, "a");
        let c = b.add_thread(p, "c");
        let m = MonitorId::new(0);
        b.notify(a, m, 1);
        b.notify(a, m, 2);
        b.wait(c, m, 2);
        let trace = b.finish().unwrap();
        let g = base_graph(&trace, &CausalityConfig::cafa());
        let mut scratch = BitSet::new(g.node_count());
        let n2 = g.node_of(OpRef::new(a, 1)).unwrap();
        let w2 = g.node_of(OpRef::new(c, 0)).unwrap();
        let n1 = g.node_of(OpRef::new(a, 0)).unwrap();
        assert!(g.reaches(n2, w2, &mut scratch));
        // gen-1 notify reaches the wait only through program order to
        // gen-2, which is fine; the direct pairing is gen-2 only.
        assert!(g.reaches(n1, w2, &mut scratch));
    }

    #[test]
    fn external_rule_chains_by_generation_not_processing() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let e1 = b.external(q, "first");
        let e2 = b.external(q, "second");
        // Processed in the opposite order.
        b.process_event(e2);
        b.process_event(e1);
        let trace = b.finish().unwrap();
        let g = base_graph(&trace, &CausalityConfig::cafa());
        let mut scratch = BitSet::new(g.node_count());
        assert!(g.reaches(g.end(e1), g.begin(e2), &mut scratch));
        assert!(!g.reaches(g.end(e2), g.begin(e1), &mut scratch));

        // With the rule off, no order at all.
        let mut off = CausalityConfig::cafa();
        off.external_rule = false;
        let g = base_graph(&trace, &off);
        let mut scratch = BitSet::new(g.node_count());
        assert!(!g.reaches(g.end(e1), g.begin(e2), &mut scratch));
    }

    #[test]
    fn total_order_follows_processing_sequence() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let e1 = b.post(t, q, "e1", 0);
        let e2 = b.post(t, q, "e2", 100);
        b.process_event(e1);
        b.process_event(e2);
        let trace = b.finish().unwrap();
        let g = base_graph(&trace, &CausalityConfig::conventional());
        let mut scratch = BitSet::new(g.node_count());
        assert!(g.reaches(g.end(e1), g.begin(e2), &mut scratch));
    }

    #[test]
    fn lock_hb_chains_acquisitions() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let a = b.add_thread(p, "a");
        let c = b.add_thread(p, "c");
        let m = MonitorId::new(3);
        b.lock(a, m, 0);
        b.unlock(a, m, 0);
        b.lock(c, m, 1);
        b.unlock(c, m, 1);
        let trace = b.finish().unwrap();

        let g = base_graph(&trace, &CausalityConfig::fasttrack_like());
        let mut scratch = BitSet::new(g.node_count());
        let rel_a = g.node_of(OpRef::new(a, 1)).unwrap();
        let acq_c = g.node_of(OpRef::new(c, 0)).unwrap();
        assert!(g.reaches(rel_a, acq_c, &mut scratch));

        // CAFA derives no such order.
        let g = base_graph(&trace, &CausalityConfig::cafa());
        let mut scratch = BitSet::new(g.node_count());
        let rel_a = g.node_of(OpRef::new(a, 1)).unwrap();
        let acq_c = g.node_of(OpRef::new(c, 0)).unwrap();
        assert!(!g.reaches(rel_a, acq_c, &mut scratch));
    }

    #[test]
    fn rpc_edges_cross_processes() {
        let mut b = TraceBuilder::new("t");
        let p1 = b.add_process();
        let p2 = b.add_process();
        let caller = b.add_thread(p1, "caller");
        let svc = b.add_thread(p2, "svc");
        let (txn, _) = b.rpc_call(caller);
        b.rpc_handle(svc, txn);
        b.rpc_reply(svc, txn);
        b.rpc_receive(caller, txn);
        let trace = b.finish().unwrap();
        let g = base_graph(&trace, &CausalityConfig::cafa());
        let mut scratch = BitSet::new(g.node_count());
        let call = g.node_of(OpRef::new(caller, 0)).unwrap();
        let handle = g.node_of(OpRef::new(svc, 0)).unwrap();
        let reply = g.node_of(OpRef::new(svc, 1)).unwrap();
        let recv = g.node_of(OpRef::new(caller, 1)).unwrap();
        assert!(g.reaches(call, handle, &mut scratch));
        assert!(g.reaches(reply, recv, &mut scratch));
        assert!(!g.reaches(recv, call, &mut scratch));
    }

    #[test]
    fn listener_rule_toggles() {
        let mut b = TraceBuilder::new("t");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "main");
        let l = b.add_listener("android.view");
        b.register(t, l);
        let e = b.external(q, "cb");
        b.process_event(e);
        b.perform(e, l);
        let trace = b.finish().unwrap();

        let g = base_graph(&trace, &CausalityConfig::cafa());
        let mut scratch = BitSet::new(g.node_count());
        let reg = g.node_of(OpRef::new(t, 0)).unwrap();
        assert!(g.reaches(reg, g.end(e), &mut scratch));

        let mut off = CausalityConfig::cafa();
        off.listener_rule = false;
        let g = base_graph(&trace, &off);
        let mut scratch = BitSet::new(g.node_count());
        let reg = g.node_of(OpRef::new(t, 0)).unwrap();
        assert!(!g.reaches(reg, g.end(e), &mut scratch));
    }
}
