//! Graphviz (DOT) export of the happens-before graph.
//!
//! Visualizing the sync graph of a small scenario is the fastest way to
//! understand why the model ordered (or refused to order) two events:
//! tasks render as clusters, derived edges are dashed and labelled with
//! the rule that produced them. Render with e.g.
//! `dot -Tsvg graph.dot -o graph.svg`.

use std::fmt::Write as _;

use cafa_trace::Trace;

use crate::graph::{EdgeKind, NodePoint, SyncGraph};
use crate::model::HbModel;

/// Renders `graph` as a DOT digraph, labelling nodes through `trace`.
///
/// Intended for small scenario traces; the output grows linearly with
/// nodes + edges, and graphs beyond a few hundred nodes stop being
/// readable (use [`HbModel::explain`] instead at that size).
pub fn render(graph: &SyncGraph, trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("digraph hb {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");

    // Group each task's chain into a cluster.
    for info in trace.tasks() {
        let task = info.id;
        let _ = writeln!(out, "  subgraph cluster_{} {{", task.index());
        let _ = writeln!(
            out,
            "    label=\"{} {}\";",
            if info.is_event() { "event" } else { "thread" },
            escape(trace.task_name(task)),
        );
        let mut nodes: Vec<u32> = Vec::new();
        for n in 0..graph.node_count() as u32 {
            if graph.node(n).task == task {
                nodes.push(n);
            }
        }
        for n in nodes {
            let label = match graph.node(n).point {
                NodePoint::Begin => "begin".to_owned(),
                NodePoint::End => "end".to_owned(),
                NodePoint::Record(i) => {
                    let r = trace.record(cafa_trace::OpRef::new(task, i));
                    format!("[{i}] {}", r.kind_tag())
                }
            };
            let _ = writeln!(out, "    n{n} [label=\"{}\"];", escape(&label));
        }
        out.push_str("  }\n");
    }

    // Edges, styled by kind.
    for n in 0..graph.node_count() as u32 {
        for (to, kind) in graph.succs(n) {
            let (style, label) = match kind {
                EdgeKind::Program => ("solid, color=gray", String::new()),
                EdgeKind::Atomicity => ("dashed, color=red", "atomicity".to_owned()),
                EdgeKind::Queue(r) => ("dashed, color=blue", format!("queue {r}")),
                other => ("solid", format!("{other:?}").to_lowercase()),
            };
            if label.is_empty() {
                let _ = writeln!(out, "  n{n} -> n{to} [style=\"{style}\"];");
            } else {
                let _ = writeln!(
                    out,
                    "  n{n} -> n{to} [style=\"{style}\", label=\"{label}\"];"
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Convenience: the DOT rendering of a built model's graph.
pub fn render_model(model: &HbModel<'_>) -> String {
    render(model.graph(), model.trace())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CausalityConfig, HbModel};
    use cafa_trace::TraceBuilder;

    #[test]
    fn dot_contains_clusters_nodes_and_rule_labels() {
        let mut b = TraceBuilder::new("dot");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 1);
        let e = b.post(t, q, "B", 1);
        b.process_event(a);
        b.process_event(e);
        let trace = b.finish().unwrap();
        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let dot = render_model(&model);
        assert!(dot.starts_with("digraph hb {"));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("event A") || dot.contains("label=\"event A\""));
        assert!(
            dot.contains("queue 1"),
            "the derived rule-1 edge is labelled"
        );
        assert!(dot.contains("send"));
        assert!(dot.ends_with("}\n"));
        // Balanced braces (clusters + graph).
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn names_are_escaped() {
        let mut b = TraceBuilder::new("esc");
        let p = b.add_process();
        b.add_thread(p, "na\"me");
        let trace = b.finish().unwrap();
        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let dot = render_model(&model);
        assert!(dot.contains("na\\\"me"));
    }
}
