//! The one-pass vector-clock algorithm that is *not enough* (§4.2).
//!
//! §4.2 explains why CAFA cannot adapt FastTrack-style vector clocks to
//! its model: "there are operations whose happens-before relations rely
//! on future operations" (the atomicity rule — Figure 4a derives
//! `end(A) ≺ begin(B)` from a `perform` that happens *after*
//! `begin(B)`), and some rules "need more complex checks on past
//! operations than what are maintained in the vector clock algorithm"
//! (queue rule 2 — Figure 4d). This module implements exactly that
//! insufficient algorithm — one forward pass, joining clocks at the
//! online-derivable edges only — so the gap is measurable: its relation
//! is always a *subset* of the fixpoint model's, and the unit tests
//! show the concrete Figure 4 orderings it misses.

use std::collections::HashMap;

use cafa_trace::{OpRef, Record, TaskId, Trace};

/// Event-level orderings derivable by one forward vector-clock pass.
///
/// Joins happen at `fork`/`join`, `notify`/`wait` (by generation),
/// `send → begin`, `register → perform`, Binder transaction pairs, and
/// the external-input chain. The atomicity rule and the four event-queue
/// rules are **not** applied — they are what the offline fixpoint
/// exists for.
#[derive(Debug)]
pub struct OnlineVc {
    /// Dense event list, mirroring [`HbModel::events`].
    ///
    /// [`HbModel::events`]: crate::HbModel::events
    events: Vec<TaskId>,
    /// `clock_at_begin[i][t]` = the operation count of task `t` known to
    /// precede `begin(events[i])`.
    clock_at_begin: Vec<Vec<u32>>,
    /// `clock_at_end[i]` = the clock after the event's last operation.
    clock_at_end: Vec<Vec<u32>>,
    index: HashMap<TaskId, usize>,
}

impl OnlineVc {
    /// Runs the one-pass algorithm over `trace`.
    ///
    /// The pass iterates tasks in the real processing order (per-queue
    /// `seq`, which is what an online tool observes), maintaining one
    /// vector clock per task plus join tables for messages, monitors,
    /// listeners, and transactions.
    pub fn build(trace: &Trace) -> Self {
        let task_count = trace.task_count();
        let mut clocks: Vec<Vec<u32>> = vec![vec![0; task_count]; task_count];
        for (t, c) in clocks.iter_mut().enumerate() {
            c[t] = 1;
        }

        // Join tables keyed by the runtime identifiers.
        let mut msg: HashMap<TaskId, Vec<u32>> = HashMap::new(); // event -> sender clock
        let mut cond: HashMap<(u32, u32), Vec<u32>> = HashMap::new(); // (monitor, gen)
        let mut reg: HashMap<u32, Vec<u32>> = HashMap::new(); // listener
        let mut rpc: HashMap<u32, Vec<u32>> = HashMap::new(); // txn (call->handle)
        let mut rpc_back: HashMap<u32, Vec<u32>> = HashMap::new(); // txn (reply->receive)
        let mut thread_ends: HashMap<TaskId, Vec<u32>> = HashMap::new();
        let mut prev_external_end: Option<Vec<u32>> = None;

        // Process tasks in an order an online tool would see them:
        // events by queue processing order interleaved with threads.
        // Threads have no begin constraint beyond their fork, so process
        // each task's body when all its join-ins are available — for
        // simplicity, iterate in task order but resolve joins from the
        // tables (the trace's task ids are creation-ordered, which is a
        // valid observation order for the online-derivable edges).
        let mut events = Vec::new();
        let mut index = HashMap::new();
        let mut clock_at_begin = Vec::new();
        let mut clock_at_end = Vec::new();

        let order = observation_order(trace);
        for &task in &order {
            let info = trace.task(task);
            // Begin joins.
            if info.is_event() {
                if let Some(snd) = msg.get(&task) {
                    join(&mut clocks[task.index()], snd);
                }
                if info.origin().is_some_and(|o| o.is_external()) {
                    if let Some(prev) = &prev_external_end {
                        join(&mut clocks[task.index()], prev);
                    }
                }
                index.insert(task, events.len());
                events.push(task);
                clock_at_begin.push(clocks[task.index()].clone());
            }
            // Body.
            for (i, r) in trace.body(task).iter().enumerate() {
                let at = OpRef::new(task, i as u32);
                let _ = at;
                match *r {
                    Record::Fork { child } => {
                        let snapshot = clocks[task.index()].clone();
                        join(&mut clocks[child.index()], &snapshot);
                        clocks[task.index()][task.index()] += 1;
                    }
                    Record::Join { child } => {
                        if let Some(end) = thread_ends.get(&child) {
                            let end = end.clone();
                            join(&mut clocks[task.index()], &end);
                        }
                    }
                    Record::Notify { monitor, gen } => {
                        let snapshot = clocks[task.index()].clone();
                        cond.entry((monitor.as_u32(), gen))
                            .and_modify(|c| join(c, &snapshot))
                            .or_insert(snapshot);
                        clocks[task.index()][task.index()] += 1;
                    }
                    Record::Wait { monitor, gen } => {
                        if let Some(c) = cond.get(&(monitor.as_u32(), gen)) {
                            let c = c.clone();
                            join(&mut clocks[task.index()], &c);
                        }
                    }
                    Record::Send { event, .. } | Record::SendAtFront { event, .. } => {
                        let snapshot = clocks[task.index()].clone();
                        msg.entry(event)
                            .and_modify(|c| join(c, &snapshot))
                            .or_insert(snapshot);
                        clocks[task.index()][task.index()] += 1;
                    }
                    Record::Register { listener } => {
                        let snapshot = clocks[task.index()].clone();
                        reg.entry(listener.as_u32())
                            .and_modify(|c| join(c, &snapshot))
                            .or_insert(snapshot);
                        clocks[task.index()][task.index()] += 1;
                    }
                    Record::Perform { listener } => {
                        if let Some(c) = reg.get(&listener.as_u32()) {
                            let c = c.clone();
                            join(&mut clocks[task.index()], &c);
                        }
                    }
                    Record::RpcCall { txn } => {
                        rpc.insert(txn.as_u32(), clocks[task.index()].clone());
                        clocks[task.index()][task.index()] += 1;
                    }
                    Record::RpcHandle { txn } => {
                        if let Some(c) = rpc.get(&txn.as_u32()) {
                            let c = c.clone();
                            join(&mut clocks[task.index()], &c);
                        }
                    }
                    Record::RpcReply { txn } => {
                        rpc_back.insert(txn.as_u32(), clocks[task.index()].clone());
                        clocks[task.index()][task.index()] += 1;
                    }
                    Record::RpcReceive { txn } => {
                        if let Some(c) = rpc_back.get(&txn.as_u32()) {
                            let c = c.clone();
                            join(&mut clocks[task.index()], &c);
                        }
                    }
                    _ => {}
                }
                clocks[task.index()][task.index()] += 1;
            }
            // End.
            if info.is_event() {
                clock_at_end.push(clocks[task.index()].clone());
                if info.origin().is_some_and(|o| o.is_external()) {
                    prev_external_end = Some(clocks[task.index()].clone());
                }
            } else {
                thread_ends.insert(task, clocks[task.index()].clone());
            }
        }

        Self {
            events,
            clock_at_begin,
            clock_at_end,
            index,
        }
    }

    /// The events the pass saw, in observation order.
    pub fn events(&self) -> &[TaskId] {
        &self.events
    }

    /// Does the one-pass relation order `end(e1) ≺ begin(e2)`?
    ///
    /// Returns false for unknown tasks (threads, or events the pass
    /// never observed).
    pub fn event_before(&self, e1: TaskId, e2: TaskId) -> bool {
        let (Some(&i1), Some(&i2)) = (self.index.get(&e1), self.index.get(&e2)) else {
            return false;
        };
        if i1 == i2 {
            return false;
        }
        // end(e1) ≺ begin(e2) iff e2's begin clock dominates e1's end
        // clock on e1's own component.
        let end1 = &self.clock_at_end[i1];
        let begin2 = &self.clock_at_begin[i2];
        end1[e1.index()] <= begin2[e1.index()]
    }
}

fn join(into: &mut [u32], from: &[u32]) {
    for (a, b) in into.iter_mut().zip(from) {
        *a = (*a).max(*b);
    }
}

/// The order the pass observes task bodies: tasks sorted by the
/// topological position of their `begin` node in the *base* causal
/// graph (no derived rules). Every join-table entry a task reads was
/// then written by an operation that really precedes it, so the
/// resulting relation under-approximates real causality — the subset
/// property the tests assert. (Task-granular processing loses some
/// interleaved joins, e.g. a mid-body `wait` notified by a
/// later-beginning task; that only under-approximates further, which is
/// exactly the point of this illustrative baseline.)
fn observation_order(trace: &Trace) -> Vec<TaskId> {
    let graph = crate::build::base_graph(trace, &crate::CausalityConfig::cafa());
    // A cyclic base graph means the trace is inconsistent with any real
    // execution; observe nothing rather than invent an order (the
    // resulting empty relation keeps the subset guarantee trivially).
    let Ok(topo) = graph.topo_order() else {
        return Vec::new();
    };
    let mut pos = vec![usize::MAX; trace.task_count()];
    for (i, &n) in topo.iter().enumerate() {
        let info = graph.node(n);
        if matches!(info.point, crate::NodePoint::Begin) {
            pos[info.task.index()] = i;
        }
    }
    let mut order: Vec<TaskId> = trace.tasks().map(|t| t.id).collect();
    order.sort_by_key(|t| pos[t.index()]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CausalityConfig, HbModel};
    use cafa_trace::TraceBuilder;

    /// Figure 4a: the atomicity ordering depends on a *future*
    /// `perform`, so the one-pass algorithm misses it while the
    /// fixpoint model derives it — the exact §4.2 argument.
    #[test]
    fn misses_future_dependent_atomicity() {
        let mut b = TraceBuilder::new("fig4a");
        let p = b.add_process();
        let q = b.add_queue(p);
        let l = b.add_listener("android.view");
        let t1 = b.add_thread(p, "srcA");
        let t2 = b.add_thread(p, "srcB");
        let a = b.post(t1, q, "A", 0);
        let ev_b = b.post(t2, q, "B", 5); // different delay: no queue rule
        b.process_event(a);
        let t = b.fork(a, p, "T");
        b.register(t, l);
        b.process_event(ev_b);
        b.perform(ev_b, l);
        let trace = b.finish().unwrap();

        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        assert!(
            model.event_before(a, ev_b),
            "fixpoint derives A ≺ B via atomicity"
        );

        let online = OnlineVc::build(&trace);
        assert!(
            !online.event_before(a, ev_b),
            "one pass cannot know at begin(B) what perform(B, L) will imply"
        );
    }

    /// Figure 4b: queue rule 1 needs the send-order + delay comparison,
    /// which plain clock joins never encode.
    #[test]
    fn misses_queue_rule_orderings() {
        let mut b = TraceBuilder::new("fig4b");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t = b.add_thread(p, "T");
        let a = b.post(t, q, "A", 1);
        let e = b.post(t, q, "B", 1);
        b.process_event(a);
        b.process_event(e);
        let trace = b.finish().unwrap();

        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        assert!(
            model.event_before(a, e),
            "queue rule 1 orders equal-delay sends"
        );

        let online = OnlineVc::build(&trace);
        assert!(
            !online.event_before(a, e),
            "clock joins alone miss the FIFO guarantee"
        );
    }

    /// What the pass *does* derive is always also derived by the
    /// fixpoint model: the one-pass relation is a subset.
    #[test]
    fn online_relation_is_subset_of_model() {
        // A busier trace: sends, forks, listeners, externals.
        let mut b = TraceBuilder::new("subset");
        let p = b.add_process();
        let q = b.add_queue(p);
        let l = b.add_listener("android.view");
        let main = b.add_thread(p, "main");
        let e1 = b.post(main, q, "e1", 0);
        b.process_event(e1);
        let worker = b.fork(e1, p, "worker");
        b.register(worker, l);
        let e2 = b.post(worker, q, "e2", 0);
        let e3 = b.external(q, "e3");
        let e4 = b.external(q, "e4");
        b.process_event(e2);
        b.perform(e2, l);
        b.process_event(e3);
        b.process_event(e4);
        let trace = b.finish().unwrap();

        let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
        let online = OnlineVc::build(&trace);
        let events = [e1, e2, e3, e4];
        let mut online_count = 0;
        for &x in &events {
            for &y in &events {
                if x != y && online.event_before(x, y) {
                    online_count += 1;
                    assert!(
                        model.event_before(x, y),
                        "online orders {x} ≺ {y} but the model does not"
                    );
                }
            }
        }
        // Only the external chain (e3 ≺ e4) is online-derivable at
        // end≺begin granularity: a send joins the *prefix* of the
        // sender, never its end — which is §4.2's point amplified.
        assert!(online_count >= 1);
        // And the model strictly exceeds it here (atomicity orders
        // e1 ≺ e2's successors etc.).
        let model_count = events
            .iter()
            .flat_map(|&x| events.iter().map(move |&y| (x, y)))
            .filter(|&(x, y)| x != y && model.event_before(x, y))
            .count();
        assert!(model_count > online_count);
    }
}
