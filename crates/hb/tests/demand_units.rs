//! Deterministic edge-case units for the demand-driven query engine —
//! the cases the differential proptest suites cover only by accident:
//! self-queries, queries probing still-unsealed tasks, and memo
//! invalidation when an [`IncrementalHb`] extends the graph under a
//! live query index. No proptest here: every trace is built by hand so
//! a failure names its scenario.

use cafa_hb::{CausalityConfig, HbModel, IncrementalHb};
use cafa_trace::{DerefKind, ObjId, Pc, TaskId, Trace, TraceBuilder, VarId};

/// A one-process app where the main thread posts `first` and `second`
/// back-to-back with equal delays (queue rule 1 orders them), and
/// `first` itself posts `nested` (atomicity orders `first` before it).
fn chain_trace() -> (Trace, TaskId, TaskId, TaskId, TaskId) {
    let mut b = TraceBuilder::new("demand-units");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "main");
    let first = b.post(t, q, "first", 2);
    let second = b.post(t, q, "second", 2);
    b.process_event(first);
    b.obj_read(first, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x1010));
    b.deref(first, ObjId::new(1), Pc::new(0x1014), DerefKind::Field);
    let nested = b.post(first, q, "nested", 0);
    b.process_event(second);
    b.obj_write(second, VarId::new(0), None, Pc::new(0x2010));
    b.process_event(nested);
    (b.finish().unwrap(), t, first, second, nested)
}

#[test]
fn self_query_is_never_ordered() {
    let (trace, _, first, second, nested) = chain_trace();
    let model =
        HbModel::build_demand(&trace, CausalityConfig::cafa()).expect("chain trace is acyclic");
    for e in [first, second, nested] {
        assert!(
            !model.event_before(e, e),
            "event {e} must not precede itself"
        );
    }
    // Operation-level hb(a, a) is false too — same task, same index.
    for (op, _) in trace.iter_ops() {
        assert!(!model.happens_before(op, op), "op {op:?} preceding itself");
    }
    // ...while genuinely ordered pairs still answer true.
    assert!(model.event_before(first, second), "rule 1 orders the posts");
}

/// An unsealed task's `end` is disconnected, so no rule premise can
/// complete around it: the atomicity edge `end(first) ≺ begin(nested)`
/// needs `begin(first) ≺ end(nested)`, and that premise probes the
/// *unsealed* `nested`'s end. The demand engine must answer false —
/// lazily evaluating the rule is not allowed to peek past the seal.
#[test]
fn queries_against_unsealed_tasks_stay_unordered() {
    let (trace, t, first, second, nested) = chain_trace();
    let config = CausalityConfig::cafa();
    let mut inc = IncrementalHb::new(&trace, config).expect("well-formed trace");

    // Nothing sealed: no send is registered, nothing is ordered.
    assert!(!inc.demand_event_before(first, second));
    assert!(!inc.demand_event_before(first, nested));

    // Sender sealed: both top-level sends are registered, so rule 1
    // orders first ≺ second even though neither event body is sealed —
    // the premises live entirely in the sealed sender.
    inc.seal(&trace, t);
    assert!(inc.demand_event_before(first, second));

    // But first ≺ nested still needs the atomicity premise through
    // end(nested), and `nested` is unsealed: must stay unordered.
    inc.seal(&trace, first);
    inc.seal(&trace, second);
    assert!(
        !inc.demand_event_before(first, nested),
        "atomicity premise completed through an unsealed task's end"
    );

    inc.seal(&trace, nested);
    assert!(
        inc.demand_event_before(first, nested),
        "sealing nested completes the atomicity premise"
    );
}

/// Extending the graph must invalidate exactly the memoized state the
/// new edges can reach: a query answered `false` before a seal flips
/// to `true` after it, and a repeated query with no extension in
/// between is a pure memo hit (no new premise evaluations).
#[test]
fn memos_invalidate_across_incremental_extension() {
    let (trace, t, first, second, nested) = chain_trace();
    let config = CausalityConfig::cafa();
    let mut inc = IncrementalHb::new(&trace, config).expect("well-formed trace");
    inc.seal(&trace, t);
    inc.seal(&trace, first);
    inc.seal(&trace, second);

    // Settle the (currently-false) answer and memoize it.
    assert!(!inc.demand_event_before(first, nested));
    let before = inc.demand_stats().expect("queries ran");

    // Re-asking the settled query costs no rule work.
    assert!(!inc.demand_event_before(first, nested));
    let repeat = inc.demand_stats().expect("queries ran");
    assert_eq!(repeat.queries, before.queries + 1);
    assert_eq!(
        repeat.premises, before.premises,
        "memoized query re-evaluated premises"
    );

    // Sealing `nested` adds its bracket edges; the invalidation sweep
    // must reach the memoized root and flip the answer.
    inc.seal(&trace, nested);
    assert!(
        inc.demand_event_before(first, nested),
        "stale memo survived the extension"
    );
    let after = inc.demand_stats().expect("queries ran");
    assert!(
        after.premises > repeat.premises,
        "the flipped answer must come from re-evaluated rules"
    );

    // And the refreshed answer memoizes again.
    assert!(inc.demand_event_before(first, nested));
    let settled = inc.demand_stats().expect("queries ran");
    assert_eq!(settled.premises, after.premises);
}
