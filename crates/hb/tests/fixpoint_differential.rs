//! Differential tests: the semi-naive delta-driven fixpoint engine
//! against the naive textbook reference loop (`derive_naive`).
//!
//! The two engines share the rule core (`run_round`) but differ in
//! everything around it: the naive loop re-sweeps reachability facts
//! and re-tests every rule instance each round, while the semi-naive
//! engine keeps persistent rows, propagates only new-edge frontiers,
//! and re-evaluates only dirty anchors. These tests pin that they
//! still materialize **exactly the same edge sets** — not merely the
//! same closure — across three input families:
//!
//! * **random tape traces** ([`trace_from_tape`]), including
//!   inconsistent ones both engines must reject;
//! * **perturbed catalog traces** — bundled app workloads re-run under
//!   simulation seeds Table 1 does not use;
//! * **incremental-append sequences** — two [`IncrementalHb`]
//!   sessions fed identical task seals, one deriving semi-naively
//!   (with cross-call row reuse and memos), one with the naive
//!   reference, compared edge-for-edge after every seal.

use proptest::prelude::*;

use cafa_hb::{
    base_graph, derive, derive_naive, CausalityConfig, IncrementalHb, NodeId, SyncGraph,
};
use cafa_trace::arbitrary::trace_from_tape;
use cafa_trace::Trace;

/// The graph's materialized edges in a comparable order. `EdgeKind`
/// is not `Ord`; its debug form is a stable tiebreaker.
fn sorted_edges(g: &SyncGraph) -> Vec<(NodeId, NodeId, String)> {
    let mut edges: Vec<(NodeId, NodeId, String)> = g
        .edge_log()
        .iter()
        .map(|&(a, b, k)| (a, b, format!("{k:?}")))
        .collect();
    edges.sort();
    edges
}

/// Runs both engines from identical base graphs and asserts exact
/// agreement: same success/failure, same materialized edge multiset,
/// same rounds and per-rule edge counts, and no more rule instances
/// evaluated by the semi-naive engine than by the naive one.
fn assert_engines_agree(trace: &Trace, config: &CausalityConfig) {
    let mut g_semi = base_graph(trace, config);
    let mut g_naive = base_graph(trace, config);
    let semi = derive(&mut g_semi, trace, config);
    let naive = derive_naive(&mut g_naive, trace, config);
    match (semi, naive) {
        (Ok(s), Ok(n)) => {
            assert_eq!(
                sorted_edges(&g_semi),
                sorted_edges(&g_naive),
                "materialized edge sets diverged"
            );
            assert_eq!(s.rounds, n.rounds, "round counts diverged");
            assert_eq!(s.atomicity_edges, n.atomicity_edges);
            assert_eq!(s.queue_edges, n.queue_edges);
            assert!(
                s.instances <= n.instances,
                "semi-naive evaluated more instances ({}) than naive ({})",
                s.instances,
                n.instances
            );
        }
        (Err(_), Err(_)) => {} // both reject (e.g. a cyclic tape)
        (s, n) => panic!(
            "engines disagree on acceptance: semi ok={} naive ok={}",
            s.is_ok(),
            n.is_ok()
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Batch derivation on arbitrary tape traces, both rule configs.
    #[test]
    fn engines_agree_on_random_tapes(tape in proptest::collection::vec(any::<u8>(), 0..400)) {
        let trace = trace_from_tape(&tape);
        assert_engines_agree(&trace, &CausalityConfig::cafa());
        assert_engines_agree(&trace, &CausalityConfig::conventional());
    }

    /// Two incremental sessions fed the same seal sequence — one
    /// semi-naive (rows and memos carried across calls), one naive —
    /// materialize identical edges after every single seal. Round
    /// counts are not compared here: the semi-naive engine's converged
    /// fast path answers no-op derives without a rule round.
    #[test]
    fn incremental_appends_agree(tape in proptest::collection::vec(any::<u8>(), 0..400)) {
        let trace = trace_from_tape(&tape);
        let config = CausalityConfig::cafa();
        let mut semi = IncrementalHb::new(&trace, config).expect("tape traces are well-formed");
        let mut naive = IncrementalHb::new(&trace, config).expect("tape traces are well-formed");
        for info in trace.tasks() {
            semi.seal(&trace, info.id);
            naive.seal(&trace, info.id);
            let rs = semi.derive_now();
            let rn = naive.derive_now_reference();
            prop_assert_eq!(rs.is_ok(), rn.is_ok(), "acceptance diverged at {}", info.id);
            if rs.is_err() {
                return Ok(()); // cyclic tape, both rejected
            }
            prop_assert_eq!(
                sorted_edges(semi.graph()),
                sorted_edges(naive.graph()),
                "edge sets diverged after sealing {}",
                info.id
            );
        }
    }
}

/// Regression: an incremental graph contains begin/end nodes for
/// *unsealed* tasks, which are not yet connected by their program
/// chain. Absorbing such an event's prior into a working set used to
/// smuggle in facts the graph does not imply (`end(x) ≺ begin(i1)`
/// without `begin(i1) ≺ end(i1)`), and the pair memo then suppressed a
/// real Queue(1) edge in every later derive. This tape drove two
/// sessions apart after sealing its fourth task.
#[test]
fn unsealed_absorb_does_not_poison_memos() {
    let tape: Vec<u8> = vec![
        105, 43, 54, 87, 250, 144, 7, 40, 122, 233, 140, 8, 229, 144, 104, 188, 40, 154, 213, 135,
        143, 65, 112, 166, 237, 241, 208, 106, 91, 17, 74, 66, 51, 178, 136, 122, 180, 4, 66, 149,
        21, 40, 173, 107, 211, 21, 23, 107, 16, 158, 45, 100, 173, 251, 221, 179, 102, 242, 8, 206,
        254, 195, 249, 78, 47, 81, 2, 40, 148, 137, 201, 48, 150, 238, 3, 180, 167, 46, 109, 243,
        34, 178, 111, 110, 128, 94, 23, 94, 36, 223, 153, 217, 229, 12, 201, 194, 55, 199, 4, 70,
        245, 238, 165, 67, 186, 71, 98, 245, 204, 237, 138, 25, 153, 2, 119, 15, 217, 214, 16, 114,
        160, 82, 115, 50, 61, 94, 22, 89, 23, 82, 238, 200, 102, 18, 209, 186, 37, 100, 162, 194,
        96, 246, 211, 180, 38, 225, 162, 43, 33, 229, 59, 38, 23, 143, 171, 3, 1, 93, 30, 232, 27,
        182, 210, 154, 169, 138, 172, 67, 217, 86, 236, 126, 215, 150, 181, 92, 221, 230, 198, 249,
        63, 98, 211, 180, 127, 100, 217, 6, 63, 120, 93, 115, 217, 217, 148, 241, 13, 24, 216, 196,
        98, 226, 162, 61, 42, 205, 11, 117, 1, 140, 130, 91, 96, 130, 214, 85, 66, 143, 249, 58,
        242, 149, 222, 238, 112, 248, 254, 172, 202, 158, 197, 17, 141, 121, 33, 107, 188, 97, 32,
        111, 157, 161, 65, 214, 81, 39, 254, 155, 5, 56, 194, 145, 252, 41, 185, 8, 41, 227, 171,
        163, 154, 9, 73, 105, 215, 143, 170, 122, 68, 222, 47, 53, 195, 54, 130, 234, 135, 164,
        152, 107, 123, 55, 85, 180, 54, 255, 121, 3, 250, 187, 9, 37, 14, 81, 33, 20, 30, 155,
    ];
    let trace = trace_from_tape(&tape);
    let config = CausalityConfig::cafa();
    let mut semi = IncrementalHb::new(&trace, config).expect("tape traces are well-formed");
    let mut naive = IncrementalHb::new(&trace, config).expect("tape traces are well-formed");
    for info in trace.tasks() {
        semi.seal(&trace, info.id);
        naive.seal(&trace, info.id);
        semi.derive_now().expect("tape converges");
        naive.derive_now_reference().expect("tape converges");
        assert_eq!(
            sorted_edges(semi.graph()),
            sorted_edges(naive.graph()),
            "edge sets diverged after sealing {}",
            info.id
        );
    }
}

/// Catalog workloads under seeds Table 1 does not use: smallest,
/// median, and largest app by expected events, both rule configs.
#[test]
fn engines_agree_on_perturbed_catalog_traces() {
    let apps = cafa_apps::all_apps();
    let mut order: Vec<usize> = (0..apps.len()).collect();
    order.sort_by_key(|&i| apps[i].expected.events);
    let picks = [order[0], order[apps.len() / 2], *order.last().unwrap()];

    for (round, &i) in picks.iter().enumerate() {
        let app = &apps[i];
        let mut config = cafa_sim::SimConfig::with_seed(6869 + round as u64);
        config.instrument = cafa_sim::InstrumentConfig::paper_packages();
        let mut outcome = cafa_sim::run(&app.program, &config).expect("simulation runs");
        let trace = outcome.trace.take().expect("instrumentation is on");
        assert_engines_agree(&trace, &CausalityConfig::cafa());
        assert_engines_agree(&trace, &CausalityConfig::conventional());
    }
}
