//! Property tests: the happens-before model on arbitrary traces.
//!
//! Arbitrary tape traces are not always consistent with a real
//! execution (the tape may process events in an order the queue rules
//! contradict); the model must then *detect* the inconsistency as a
//! cycle rather than produce garbage. When it accepts, the relation
//! must be a strict partial order and all query paths must agree.

use proptest::prelude::*;

use cafa_hb::{CausalityConfig, HbModel, OpOrder};
use cafa_trace::arbitrary::trace_from_tape;
use cafa_trace::OpRef;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Build either succeeds or reports a cycle; on success the event
    /// order is a strict partial order.
    #[test]
    fn model_accepts_or_rejects_cleanly(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let Ok(model) = HbModel::build(&trace, CausalityConfig::cafa()) else {
            return Ok(()); // inconsistent trace, correctly rejected
        };
        let events = model.events().to_vec();
        for &e1 in events.iter().take(20) {
            prop_assert!(!model.event_before(e1, e1));
            for &e2 in events.iter().take(20) {
                prop_assert!(!(model.event_before(e1, e2) && model.event_before(e2, e1)));
                if e1 != e2 && model.event_before(e1, e2) {
                    for &e3 in events.iter().take(20) {
                        if e2 != e3 && model.event_before(e2, e3) {
                            prop_assert!(model.event_before(e1, e3), "transitivity");
                        }
                    }
                }
            }
        }
    }

    /// Point queries and batched queries agree everywhere.
    #[test]
    fn batch_equals_pointwise(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let Ok(model) = HbModel::build(&trace, CausalityConfig::cafa()) else {
            return Ok(());
        };
        let sources: Vec<OpRef> = trace
            .tasks()
            .filter(|t| trace.body_len(t.id) > 0)
            .take(24)
            .map(|t| OpRef::new(t.id, trace.body_len(t.id) / 2))
            .collect();
        if sources.is_empty() {
            return Ok(());
        }
        let batch = model.batch(&sources);
        for (i, &a) in sources.iter().enumerate() {
            for &b in &sources {
                prop_assert_eq!(
                    batch.before(i, b),
                    model.happens_before(a, b),
                    "batch vs pointwise for {} -> {}", a, b
                );
            }
        }
    }

    /// `order` is consistent with `happens_before` and irreflexive.
    #[test]
    fn order_classification_consistent(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let Ok(model) = HbModel::build(&trace, CausalityConfig::cafa()) else {
            return Ok(());
        };
        let ops: Vec<OpRef> = trace
            .tasks()
            .filter(|t| trace.body_len(t.id) > 0)
            .take(16)
            .map(|t| OpRef::new(t.id, 0))
            .collect();
        for &a in &ops {
            prop_assert_eq!(model.order(a, a), OpOrder::Same);
            for &b in &ops {
                match model.order(a, b) {
                    OpOrder::Before => prop_assert!(model.happens_before(a, b)),
                    OpOrder::After => prop_assert!(model.happens_before(b, a)),
                    OpOrder::Concurrent => {
                        prop_assert!(!model.happens_before(a, b));
                        prop_assert!(!model.happens_before(b, a));
                    }
                    OpOrder::Same => prop_assert_eq!(a, b),
                }
            }
        }
    }

    /// DOT export renders any accepted model without panicking and
    /// stays structurally balanced.
    #[test]
    fn dot_renders_arbitrary_models(tape in proptest::collection::vec(any::<u8>(), 0..200)) {
        let trace = trace_from_tape(&tape);
        let Ok(model) = HbModel::build(&trace, CausalityConfig::cafa()) else {
            return Ok(());
        };
        let dot = cafa_hb::dot::render_model(&model);
        let well_formed = dot.starts_with("digraph hb")
            && dot.matches('{').count() == dot.matches('}').count();
        prop_assert!(well_formed, "unbalanced or malformed DOT output");
    }

    /// `explain` returns a well-formed chain exactly when ordered: steps
    /// are contiguous, and every step's endpoints live in the trace.
    #[test]
    fn explain_chains_are_well_formed(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let Ok(model) = HbModel::build(&trace, CausalityConfig::cafa()) else {
            return Ok(());
        };
        let ops: Vec<OpRef> = trace
            .tasks()
            .filter(|t| trace.body_len(t.id) > 0)
            .take(12)
            .map(|t| OpRef::new(t.id, 0))
            .collect();
        for &a in &ops {
            for &b in &ops {
                let chain = model.explain(a, b);
                prop_assert_eq!(chain.is_some(), a != b && model.happens_before(a, b));
                if let Some(chain) = chain {
                    prop_assert!(!chain.is_empty());
                    for w in chain.windows(2) {
                        // Contiguous: each step ends where the next starts,
                        // within the same task chain or across an edge.
                        prop_assert_eq!(w[0].to, w[1].from);
                    }
                    for step in &chain {
                        prop_assert!(step.from.task.index() < trace.task_count());
                        prop_assert!(step.to.task.index() < trace.task_count());
                    }
                }
            }
        }
    }

    /// Dropping rules never *adds* orderings: every CAFA-ordering
    /// derived without the queue rules also holds with them.
    #[test]
    fn queue_rules_only_add_order(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        let (Ok(full), Ok(reduced)) = (
            HbModel::build(&trace, CausalityConfig::cafa()),
            HbModel::build(&trace, CausalityConfig::no_queue_rules()),
        ) else {
            return Ok(());
        };
        let events = full.events().to_vec();
        for &e1 in events.iter().take(24) {
            for &e2 in events.iter().take(24) {
                if e1 != e2 && reduced.event_before(e1, e2) {
                    prop_assert!(full.event_before(e1, e2));
                }
            }
        }
    }
}
