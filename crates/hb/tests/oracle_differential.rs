//! Differential tests: the indexed reachability oracle against the
//! per-pair DFS ground truth ([`SyncGraph::reaches`]).
//!
//! Three input families, in increasing realism:
//!
//! * **random DAGs** — synthetic task chains with proptest-chosen
//!   cross edges, including inputs the topological sort must reject;
//! * **arbitrary tape traces** — full `HbModel` builds over
//!   [`trace_from_tape`] inputs, exercising every derived edge kind;
//! * **perturbed catalog traces** — the bundled app workloads re-run
//!   under different simulation seeds than Table 1 uses.
//!
//! Small graphs are checked over *every* ordered node pair; the large
//! catalog graphs over 10k deterministically sampled pairs. The
//! vendored proptest seeds from the test name, so every run replays
//! the same cases.

use proptest::prelude::*;

use cafa_hb::bitset::BitSet;
use cafa_hb::{CausalityConfig, EdgeKind, HbModel, ReachOracle, SyncGraph};
use cafa_trace::arbitrary::trace_from_tape;
use cafa_trace::TraceBuilder;

/// Asserts oracle == DFS over every ordered pair of graph nodes.
fn assert_all_pairs(graph: &SyncGraph, oracle: &ReachOracle) {
    let n = graph.node_count() as u32;
    let mut scratch = BitSet::new(graph.node_count());
    for from in 0..n {
        for to in 0..n {
            assert_eq!(
                oracle.reaches(from, to),
                graph.reaches(from, to, &mut scratch),
                "oracle disagrees with DFS on {from} -> {to}"
            );
        }
    }
}

/// Asserts oracle == DFS over `count` pairs drawn by a fixed xorshift
/// stream, so large graphs stay affordable and runs stay replayable.
fn assert_sampled_pairs(graph: &SyncGraph, oracle: &ReachOracle, count: usize, seed: u64) {
    let n = graph.node_count() as u64;
    let mut scratch = BitSet::new(graph.node_count());
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..count {
        let from = (next() % n) as u32;
        let to = (next() % n) as u32;
        assert_eq!(
            oracle.reaches(from, to),
            graph.reaches(from, to, &mut scratch),
            "oracle disagrees with DFS on sampled {from} -> {to}"
        );
    }
}

/// Builds a `tasks`-chain graph (each chain `recs` notify records
/// long) and adds the proptest-chosen cross `edges` between arbitrary
/// nodes — cyclic results included on purpose.
fn random_dag(tasks: usize, recs: usize, edges: &[(u8, u8)]) -> SyncGraph {
    let mut b = TraceBuilder::new("dag");
    let p = b.add_process();
    let ids: Vec<_> = (0..tasks)
        .map(|i| b.add_thread(p, &format!("t{i}")))
        .collect();
    for &t in &ids {
        for g in 0..recs {
            b.notify(t, cafa_trace::MonitorId::new(0), g as u32);
        }
    }
    let trace = b.finish().expect("chains are well-formed");
    let mut graph = SyncGraph::from_trace(&trace);
    let n = graph.node_count() as u32;
    for &(a, z) in edges {
        let (from, to) = (u32::from(a) % n, u32::from(z) % n);
        if from != to {
            graph.add_edge(from, to, EdgeKind::External);
        }
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On random DAGs the oracle accepts exactly when the topological
    /// sort does, and then answers every pair like the DFS — at one
    /// worker and at several.
    #[test]
    fn oracle_matches_dfs_on_random_dags(
        tasks in 1usize..5,
        recs in 0usize..6,
        edges in proptest::collection::vec(any::<(u8, u8)>(), 0..24),
    ) {
        let graph = random_dag(tasks, recs, &edges);
        match ReachOracle::build(&graph, 1) {
            Err(nodes) => {
                prop_assert!(graph.topo_order().is_err());
                prop_assert!(!nodes.is_empty());
            }
            Ok(oracle) => {
                prop_assert!(graph.topo_order().is_ok());
                assert_all_pairs(&graph, &oracle);
                let wide = ReachOracle::build(&graph, 4).expect("same graph");
                assert_all_pairs(&graph, &wide);
            }
        }
    }

    /// On arbitrary tape traces the model's oracle (over the fully
    /// derived graph, all rule edge kinds) matches the DFS everywhere.
    #[test]
    fn oracle_matches_dfs_on_arbitrary_traces(
        tape in proptest::collection::vec(any::<u8>(), 0..400),
        threads in 1usize..5,
    ) {
        let trace = trace_from_tape(&tape);
        let Ok(model) = HbModel::build(&trace, CausalityConfig::cafa()) else {
            return Ok(()); // inconsistent trace, correctly rejected
        };
        let oracle = model.ensure_oracle(threads);
        assert_all_pairs(model.graph(), oracle);
    }
}

/// Catalog app traces, re-recorded under seeds Table 1 never uses, are
/// checked on 10k sampled pairs each (their graphs are far too large
/// for all-pairs DFS). Covers both causality models and several worker
/// counts on real-shaped graphs.
#[test]
fn oracle_matches_dfs_on_perturbed_catalog_traces() {
    let apps = cafa_apps::all_apps();
    // Smallest, a mid-size, and the largest workload by trace events.
    let mut picks = vec![0usize];
    let mut order: Vec<usize> = (0..apps.len()).collect();
    order.sort_by_key(|&i| apps[i].expected.events);
    picks.push(order[apps.len() / 2]);
    picks.push(*order.last().expect("catalog is non-empty"));
    picks.sort_unstable();
    picks.dedup();

    for (round, &i) in picks.iter().enumerate() {
        let app = &apps[i];
        let mut config = cafa_sim::SimConfig::with_seed(7919 + round as u64);
        config.instrument = cafa_sim::InstrumentConfig::paper_packages();
        let mut outcome = cafa_sim::run(&app.program, &config).expect("simulation runs");
        let trace = outcome.trace.take().expect("instrumentation is on");
        for causality in [CausalityConfig::cafa(), CausalityConfig::conventional()] {
            let model = HbModel::build(&trace, causality).expect("real traces are consistent");
            let threads = if round % 2 == 0 { 1 } else { 8 };
            let oracle = model.ensure_oracle(threads);
            if model.graph().node_count() <= 64 {
                assert_all_pairs(model.graph(), oracle);
            } else {
                assert_sampled_pairs(model.graph(), oracle, 10_000, 0x5eed + round as u64);
            }
        }
    }
}
