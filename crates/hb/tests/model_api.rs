//! API-surface tests for the happens-before crate: explain chains,
//! derivation statistics, edge-kind accounting, locksets across tasks,
//! and the event table.

use cafa_hb::{
    base_graph, derive, CausalityConfig, EdgeKind, EventTable, HbModel, LockSets, OpOrder,
};
use cafa_trace::{MonitorId, ObjId, OpRef, Pc, TraceBuilder, VarId};

#[test]
fn explain_follows_an_rpc_chain() {
    let mut b = TraceBuilder::new("rpc-explain");
    let p1 = b.add_process();
    let p2 = b.add_process();
    let caller = b.add_thread(p1, "caller");
    let svc = b.add_thread(p2, "svc");
    let before = b.write(caller, VarId::new(0));
    let (txn, _) = b.rpc_call(caller);
    b.rpc_handle(svc, txn);
    let in_svc = b.write(svc, VarId::new(1));
    b.rpc_reply(svc, txn);
    b.rpc_receive(caller, txn);
    let after = b.write(caller, VarId::new(2));
    let trace = b.finish().unwrap();
    let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();

    // caller's pre-call write ≺ service body write: via the Rpc edge.
    let chain = model
        .explain(before, in_svc)
        .expect("ordered through the call");
    assert!(chain.iter().any(|s| s.kind == EdgeKind::Rpc));

    // service body write ≺ caller's post-receive write: via the reply.
    let chain = model
        .explain(in_svc, after)
        .expect("ordered through the reply");
    assert!(chain.iter().any(|s| s.kind == EdgeKind::Rpc));

    // Unordered pairs yield no chain.
    assert!(model.explain(after, before).is_none());
    assert_eq!(model.order(after, in_svc), OpOrder::After);
}

#[test]
fn derivation_stats_count_rule_firings() {
    let mut b = TraceBuilder::new("stats");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "T");
    // Rule 1 chain of three events.
    let e1 = b.post(t, q, "e1", 1);
    let e2 = b.post(t, q, "e2", 1);
    let e3 = b.post(t, q, "e3", 1);
    b.process_event(e1);
    b.process_event(e2);
    b.process_event(e3);
    let trace = b.finish().unwrap();

    let config = CausalityConfig::cafa();
    let mut g = base_graph(&trace, &config);
    let stats = derive(&mut g, &trace, &config).unwrap();
    assert!(stats.rounds >= 1);
    // Adjacent pairs materialize; the transitive (e1, e3) pair is
    // implied and skipped, so exactly 2 rule-1 edges.
    assert_eq!(stats.queue_edges[0], 2);
    assert_eq!(stats.derived_edges(), stats.atomicity_edges + 2);

    let queue_edge_total: usize = g
        .edge_kind_counts()
        .iter()
        .filter(|(k, _)| matches!(k, EdgeKind::Queue(_)))
        .map(|(_, n)| *n)
        .sum();
    assert_eq!(queue_edge_total, 2);
}

#[test]
fn event_table_is_dense_over_events() {
    let mut b = TraceBuilder::new("table");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "T");
    let e1 = b.post(t, q, "e1", 0);
    let e2 = b.external(q, "e2");
    b.process_event(e1);
    b.process_event(e2);
    let trace = b.finish().unwrap();
    let table = EventTable::new(&trace).unwrap();
    assert_eq!(table.len(), 2);
    assert!(!table.is_empty());
    assert_eq!(table.dense(e1), Some(0));
    assert_eq!(table.dense(e2), Some(1));
    assert_eq!(table.dense(t), None, "threads are not events");
}

#[test]
fn locksets_filter_only_under_a_common_monitor() {
    let mut b = TraceBuilder::new("locks");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t1 = b.add_thread(p, "s1");
    let t2 = b.add_thread(p, "s2");
    let ev = b.post(t1, q, "ev", 0);
    b.process_event(ev);
    let m = MonitorId::new(0);
    let other = MonitorId::new(1);
    b.lock(ev, m, 1);
    let in_ev = b.obj_read(ev, VarId::new(0), Some(ObjId::new(1)), Pc::new(0x10));
    b.unlock(ev, m, 1);
    b.lock(t2, m, 2);
    let same_mon = b.obj_write(t2, VarId::new(0), None, Pc::new(0x20));
    b.unlock(t2, m, 2);
    b.lock(t2, other, 1);
    let diff_mon = b.obj_write(t2, VarId::new(0), None, Pc::new(0x24));
    b.unlock(t2, other, 1);
    let trace = b.finish().unwrap();

    let locks = LockSets::new(&trace);
    assert_eq!(locks.common(in_ev, same_mon), Some(m));
    assert_eq!(locks.common(in_ev, diff_mon), None);
    // Events participate in locksets like any task.
    assert_eq!(locks.held(in_ev), vec![m]);
}

#[test]
fn explain_includes_derived_queue_edges() {
    let mut b = TraceBuilder::new("explain-queue");
    let p = b.add_process();
    let q = b.add_queue(p);
    let t = b.add_thread(p, "T");
    let e1 = b.post(t, q, "e1", 2);
    let e2 = b.post(t, q, "e2", 2);
    b.process_event(e1);
    let w1 = b.write(e1, VarId::new(0));
    b.process_event(e2);
    let w2 = b.write(e2, VarId::new(0));
    let trace = b.finish().unwrap();
    let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    let chain = model.explain(w1, w2).expect("rule 1 orders the writes");
    assert!(
        chain.iter().any(|s| matches!(s.kind, EdgeKind::Queue(1))),
        "the chain names queue rule 1: {chain:?}"
    );
}

#[test]
fn same_task_explain_is_program_order() {
    let mut b = TraceBuilder::new("po");
    let p = b.add_process();
    let t = b.add_thread(p, "T");
    let a = b.write(t, VarId::new(0));
    let c = b.write(t, VarId::new(1));
    let trace = b.finish().unwrap();
    let model = HbModel::build(&trace, CausalityConfig::cafa()).unwrap();
    let chain = model.explain(a, c).unwrap();
    assert_eq!(chain.len(), 1);
    assert_eq!(chain[0].kind, EdgeKind::Program);
    assert!(model.explain(OpRef::new(t, 0), OpRef::new(t, 0)).is_none());
}
