//! Differential tests: the demand-driven query engine (`demand.rs`)
//! against the eager fixpoint it replaces at scale.
//!
//! The two backends are **not** expected to materialize the same edge
//! sets — the demand core transitively-reduces derived edges on insert
//! and evaluates premises only inside the cones that queries probe. The
//! contract is weaker and more useful: both compute the *same unique
//! least fixpoint* of the §3.3 rules, so every **answer** — event-level
//! `end(e₁) ≺ begin(e₂)` and operation-level `a ≺ b` — must agree
//! exactly. These tests pin that contract across three input families:
//!
//! * **random tape traces** ([`trace_from_tape`]), all event pairs and
//!   all operation pairs, under both rule configs;
//! * **perturbed catalog traces** — bundled app workloads re-run under
//!   simulation seeds Table 1 does not use;
//! * **incremental seal-by-seal sequences** — a demand session that
//!   never materializes rule edges, checked after every seal against a
//!   naive-reference session that materializes everything and answers
//!   through a rebuilt [`ReachOracle`].

use proptest::prelude::*;

use cafa_hb::{CausalityConfig, HbModel, IncrementalHb};
use cafa_trace::arbitrary::trace_from_tape;
use cafa_trace::{OpRef, TaskId, Trace};

/// Dense-order event ids of `trace`.
fn events_of(trace: &Trace) -> Vec<TaskId> {
    trace
        .tasks()
        .filter(|t| t.is_event())
        .map(|t| t.id)
        .collect()
}

/// Fixed-stride subsample so a catalog-sized trace contributes a
/// bounded quadratic, not events².
fn sample<T: Copy>(items: &[T], cap: usize) -> Vec<T> {
    if items.len() <= cap {
        return items.to_vec();
    }
    let stride = items.len().div_ceil(cap);
    items.iter().copied().step_by(stride).collect()
}

/// Every operation reference, subsampled with a fixed stride when the
/// trace is large so a case stays quadratic in ~120, not in the trace.
fn ops_of(trace: &Trace, cap: usize) -> Vec<OpRef> {
    let all: Vec<OpRef> = trace.iter_ops().map(|(r, _)| r).collect();
    sample(&all, cap)
}

/// Builds one model per backend (pinned explicitly — the comparison
/// must not collapse to demand-vs-demand under `CAFA_HB_ENGINE`) and
/// asserts exact agreement on acceptance, every event-pair answer, and
/// every (subsampled) operation-pair answer.
fn assert_backends_agree(trace: &Trace, config: CausalityConfig) {
    let eager = HbModel::build_eager(trace, config);
    let demand = HbModel::build_demand(trace, config);
    let (eager, demand) = match (eager, demand) {
        (Ok(e), Ok(d)) => (e, d),
        (Err(_), Err(_)) => return, // both reject (e.g. a cyclic tape)
        (e, d) => panic!(
            "backends disagree on acceptance: eager ok={} demand ok={}",
            e.is_ok(),
            d.is_ok()
        ),
    };
    let events = sample(&events_of(trace), 140);
    for &a in &events {
        for &b in &events {
            assert_eq!(
                eager.event_before(a, b),
                demand.event_before(a, b),
                "event_before({a}, {b}) diverged"
            );
        }
    }
    for &a in &ops_of(trace, 120) {
        for &b in &ops_of(trace, 120) {
            assert_eq!(
                eager.happens_before(a, b),
                demand.happens_before(a, b),
                "happens_before({a:?}, {b:?}) diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch queries on arbitrary tape traces, both rule configs.
    #[test]
    fn backends_agree_on_random_tapes(tape in proptest::collection::vec(any::<u8>(), 0..300)) {
        let trace = trace_from_tape(&tape);
        assert_backends_agree(&trace, CausalityConfig::cafa());
        assert_backends_agree(&trace, CausalityConfig::conventional());
    }

    /// A demand-query incremental session against a naive-reference
    /// session fed the identical seal sequence. The demand side never
    /// calls a derive — the query engine does all rule work inside the
    /// cones each answer needs; the reference side materializes the
    /// full fixpoint after every seal and answers through a rebuilt
    /// oracle. Every event pair must agree after every single seal,
    /// including pairs involving still-unsealed tasks (whose ends are
    /// disconnected, so no rule premise can fire around them yet).
    #[test]
    fn incremental_demand_agrees_seal_by_seal(
        tape in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let trace = trace_from_tape(&tape);
        let config = CausalityConfig::cafa();
        let mut demand = IncrementalHb::new(&trace, config).expect("tape traces are well-formed");
        let mut reference = IncrementalHb::new(&trace, config).expect("tape traces are well-formed");
        let events = events_of(&trace);
        for info in trace.tasks() {
            demand.seal(&trace, info.id);
            reference.seal(&trace, info.id);
            if reference.derive_now_reference().is_err() {
                return Ok(()); // cyclic tape; demand answers are unspecified
            }
            reference.refresh_oracle(1);
            let oracle = reference.oracle().expect("just refreshed");
            let g = reference.graph();
            for &a in &events {
                for &b in &events {
                    let expect = a != b && oracle.reaches(g.end(a), g.begin(b));
                    prop_assert_eq!(
                        demand.demand_event_before(a, b),
                        expect,
                        "event_before({}, {}) diverged after sealing {}",
                        a, b, info.id
                    );
                }
            }
        }
        // Operation-level spot check once the whole trace is sealed.
        let oracle = reference.oracle().expect("refreshed in the loop");
        let g = reference.graph();
        for &a in &ops_of(&trace, 80) {
            for &b in &ops_of(&trace, 80) {
                let expect = if a.task == b.task {
                    a.index < b.index
                } else {
                    oracle.reaches(g.bracket_after(a), g.bracket_before(b))
                };
                prop_assert_eq!(
                    demand.demand_happens_before(a, b),
                    expect,
                    "happens_before({:?}, {:?}) diverged", a, b
                );
            }
        }
    }
}

/// Catalog workloads under seeds Table 1 does not use: the three
/// smallest apps by expected events, both rule configs. (Catalog
/// traces are dense single-app workloads — the demand engine's
/// worst case, which is exactly why they make good differential
/// fodder and bad wall-clock fodder; the larger apps add minutes of
/// settlement for no extra rule coverage.)
#[test]
fn backends_agree_on_perturbed_catalog_traces() {
    let apps = cafa_apps::all_apps();
    let mut order: Vec<usize> = (0..apps.len()).collect();
    order.sort_by_key(|&i| apps[i].expected.events);
    let picks = [order[0], order[1], order[2]];

    for (round, &i) in picks.iter().enumerate() {
        let app = &apps[i];
        let mut config = cafa_sim::SimConfig::with_seed(9091 + round as u64);
        config.instrument = cafa_sim::InstrumentConfig::paper_packages();
        let mut outcome = cafa_sim::run(&app.program, &config).expect("simulation runs");
        let trace = outcome.trace.take().expect("instrumentation is on");
        assert_backends_agree(&trace, CausalityConfig::cafa());
        assert_backends_agree(&trace, CausalityConfig::conventional());
    }
}

/// Interleaved demand queries must not change what a later derive
/// materializes, and a demand session queried *after* eager edges were
/// derived into its own graph still answers the fixpoint: the cone
/// walks see materialized edges and the suppression logic treats them
/// as already-implied conclusions.
#[test]
fn demand_queries_coexist_with_eager_derives() {
    let tape: Vec<u8> = (0..240).map(|i| (i * 37 % 251) as u8).collect();
    let trace = trace_from_tape(&tape);
    let config = CausalityConfig::cafa();
    let eager = match HbModel::build_eager(&trace, config) {
        Ok(m) => m,
        Err(_) => return, // tape happens to be cyclic; nothing to compare
    };
    let mut inc = IncrementalHb::new(&trace, config).expect("tape traces are well-formed");
    let events = events_of(&trace);
    for (n, info) in trace.tasks().enumerate() {
        inc.seal(&trace, info.id);
        // Alternate: odd seals materialize eagerly into the same graph
        // the demand core walks; even seals leave the rule work to the
        // query engine.
        if n % 2 == 1 {
            inc.derive_now().expect("eager build converged above");
        }
        for &a in &events {
            if inc.is_sealed(a) {
                for &b in &events {
                    if inc.is_sealed(b) && inc.demand_event_before(a, b) {
                        assert!(
                            eager.event_before(a, b),
                            "demand claimed event_before({a}, {b}) the eager model denies"
                        );
                    }
                }
            }
        }
    }
    // Fully sealed: answers now match the batch model exactly.
    for &a in &events {
        for &b in &events {
            assert_eq!(
                inc.demand_event_before(a, b),
                eager.event_before(a, b),
                "event_before({a}, {b}) diverged after full seal"
            );
        }
    }
}
