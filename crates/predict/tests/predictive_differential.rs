//! Differential suite: the predictive relation vs the HB relation.
//!
//! Three contracts, over every catalog app plus a slice of the
//! generated corpus:
//!
//! * **Weaker, never stronger.** The predictive order is a subset of
//!   the observed-trace HB order: any pair the predictive relation
//!   orders, HB orders the same way, and somewhere in the corpus the
//!   containment is strict (the conflict gate actually dropped
//!   orderings). The report-level corollary: every HB race appears in
//!   the predictive section classified `both` — the weaker relation
//!   cannot lose a race the stronger one found.
//! * **Deterministic.** `--detector both` reports are byte-identical
//!   at `--threads` 1, 2, and 8. (A subset sweeps here; ci.sh sweeps
//!   the full 50-app generated corpus with the release binary.)
//! * **Bit-untouched default.** The HB section of a both-mode report
//!   equals the default-backend report, which equals the pinned golden
//!   report bytes for the ten paper apps.
//!
//! The corpus is recorded once and the both-mode baseline analyses run
//! once, shared across tests through a `OnceLock` — on a single-core
//! debug runner the redundant re-analysis dominates the suite's cost
//! otherwise.

use std::sync::OnceLock;

use cafa_core::{
    AnalysisSession, Analyzer, DetectorConfig, DetectorKind, PredictClass, RaceReport,
};
use cafa_hb::{CausalityConfig, OpOrder};
use cafa_predict::PredictModel;
use cafa_trace::Trace;

/// The catalog plus the first six seed-7 generated apps (the slice CI
/// pins; it plants both lock-handoff and fifo-handoff patterns), each
/// paired with its both-mode report at `--threads 1`.
fn shared() -> &'static [(Trace, RaceReport)] {
    static CORPUS: OnceLock<Vec<(Trace, RaceReport)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut corpus = Vec::new();
        let mut traces = Vec::new();
        for app in cafa_apps::all_apps() {
            let outcome = app.record(0).expect("catalog records cleanly");
            traces.push(outcome.trace.expect("instrumentation is on"));
        }
        for idx in 0..6 {
            let app = cafa_apps::resolve(&format!("gen:7:{idx}")).expect("gen slots resolve");
            let outcome = app.record(7).expect("generated workloads run clean");
            traces.push(outcome.trace.expect("instrumentation is on"));
        }
        for trace in traces {
            let report = Analyzer::with_config(both_config(1))
                .analyze(&trace)
                .expect("analysis succeeds");
            corpus.push((trace, report));
        }
        corpus
    })
}

fn both_config(threads: usize) -> DetectorConfig {
    let mut config = DetectorConfig::cafa();
    config.detector = DetectorKind::Both;
    config.threads = threads;
    config
}

#[test]
fn predictive_order_is_contained_in_hb_order() {
    let mut gated_somewhere = 0u64;
    for (trace, _) in shared() {
        let session = AnalysisSession::new(trace);
        let hb = session
            .model(CausalityConfig::cafa())
            .expect("hb model builds");
        let predict = PredictModel::build(trace, 1).expect("predictive model builds");

        // Bounded deterministic sample: stride the op list so the
        // quadratic sweep stays small — the invariant is per-pair, so
        // a spread sample across every trace catches an inversion
        // without a single-core debug runner paying for millions of
        // order queries.
        let ops: Vec<_> = trace.iter_ops().map(|(at, _)| at).collect();
        let stride = (ops.len() / 160).max(1);
        let sample: Vec<_> = ops.into_iter().step_by(stride).collect();
        for &a in &sample {
            for &b in &sample {
                if a == b {
                    continue;
                }
                if predict.happens_before(a, b) {
                    assert_eq!(
                        hb.order(a, b),
                        OpOrder::Before,
                        "{}: predictive orders {a} -> {b} but HB does not — \
                         the predictive relation must never invent orderings",
                        trace.meta().app
                    );
                } else if hb.order(a, b) == OpOrder::Before {
                    // HB orders it, predictive dropped it: the strict
                    // part of the containment.
                    gated_somewhere += 1;
                }
            }
        }
    }
    assert!(
        gated_somewhere > 0,
        "no pair anywhere in the corpus was HB-ordered but predictively \
         concurrent: the relation is not actually weaker"
    );
}

#[test]
fn every_hb_race_survives_into_the_predictive_section_as_both() {
    for (trace, report) in shared() {
        let section = report
            .predictive
            .as_ref()
            .expect("both mode attaches the predictive section");
        for race in &report.races {
            let key = (race.var, race.use_site.read_pc, race.free_site.pc);
            let hit = section.races.iter().find(|p| {
                (p.var, p.use_site.read_pc, p.free_site.pc) == key && p.class == PredictClass::Both
            });
            assert!(
                hit.is_some(),
                "{}: HB race on {} missing from the predictive section — \
                 a weaker relation cannot lose a race the stronger one found",
                trace.meta().app,
                race.var
            );
        }
        // The classification partitions the section: both + only.
        let both = section.count(PredictClass::Both);
        let only = section.count(PredictClass::PredictiveOnly);
        assert_eq!(both + only, section.races.len());
        assert_eq!(both, report.races.len(), "{}", trace.meta().app);
    }
}

#[test]
fn both_mode_reports_are_byte_identical_across_thread_counts() {
    // A spread subset: the largest catalog apps plus the two gen slots
    // whose planted patterns drive the adjudication paths. The full
    // 50-app corpus sweeps at 1/2/8 threads in ci.sh with the release
    // binary, where each sweep costs seconds instead of minutes.
    let subset = [0usize, 6, 9, 10, 11];
    let corpus = shared();
    for &i in &subset {
        let (trace, baseline) = &corpus[i];
        let bytes = cafa_core::json::render_json(baseline, trace);
        assert!(
            bytes.contains("\"predictive\""),
            "{}: both-mode JSON must carry the predictive section",
            trace.meta().app
        );
        for threads in [2, 8] {
            let report = Analyzer::with_config(both_config(threads))
                .analyze(trace)
                .expect("analysis succeeds");
            assert_eq!(
                bytes,
                cafa_core::json::render_json(&report, trace),
                "{}: both-mode report differs between --threads 1 and --threads {threads}",
                trace.meta().app
            );
        }
    }
}

#[test]
fn hb_section_bytes_match_the_golden_reports() {
    let golden_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/reports");
    let corpus = shared();
    for (app, (trace, both)) in cafa_apps::all_apps().iter().zip(corpus) {
        let golden =
            std::fs::read_to_string(format!("{golden_dir}/{}.json", app.name.to_lowercase()))
                .expect("golden report exists");

        // Default backend: bit-identical to the pinned golden.
        let hb = Analyzer::new().analyze(trace).expect("analysis succeeds");
        assert_eq!(
            cafa_core::json::render_json(&hb, trace),
            golden,
            "{}: default-backend report drifted from the golden",
            app.name
        );

        // Both mode with the predictive section stripped: the HB
        // section the predictive backend rode along with is untouched.
        let mut stripped = both.clone();
        stripped.predictive = None;
        assert_eq!(
            cafa_core::json::render_json(&stripped, trace),
            golden,
            "{}: running the predictive backend perturbed the HB section",
            app.name
        );
    }
}
