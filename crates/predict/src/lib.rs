//! Predictive (weaker-than-HB) partial order for event-driven traces.
//!
//! The PLDI'14 happens-before model orders exactly what the *observed*
//! execution proves ordered: the §3.3 atomicity and queue rules fire
//! unconditionally, and the external-input rule chains every pair of
//! user gestures. That relation is sound for the observed trace, but it
//! also orders event pairs that could legitimately run the other way in
//! a feasible reordering — races the single-trace model can never
//! report. Predictive detectors (WCP, DC, SmartTrack — see PAPERS.md)
//! weaken the order so that only *conflicting* operations keep their
//! observed ordering, then lean on a secondary judge to discharge the
//! unsound remainder.
//!
//! [`PredictModel`] is that weaker relation for the CAFA event model:
//!
//! * base edges (program order, fork/join, wait/notify, post→begin,
//!   RPC, listener registration) are kept as hard causality;
//! * the **external-input rule** is *conflict-scoped*: two gestures are
//!   ordered only when their handlers access a common variable —
//!   independent gestures could arrive in either order;
//! * the **atomicity and queue rules** are *conflict-gated*: a derived
//!   `end(e₁) → begin(e₂)` edge is kept only when `e₁` and `e₂` access
//!   a common variable. A FIFO ordering between events that share no
//!   state is an accident of the observed schedule, not causality —
//!   dropping it is exactly the DC-style "doesn't-commute" relaxation.
//!
//! Every fact of this relation is implied by the paper's model, so the
//! predictive order is a subset of HB (`predictive ⊆ HB`, pinned by
//! `tests/predictive_differential.rs`): anything HB-concurrent stays
//! concurrent here, and some HB-ordered pairs become concurrent — those
//! are the *predictive-only* race candidates. The relation is
//! deliberately unsound in isolation; `cafa-replay`'s directed→guided→
//! random ladder adjudicates every extra report into a replay-confirmed
//! witness or a counted false positive (see `docs/PREDICT.md`).
//!
//! Lock treatment mirrors the same philosophy. The detector's lockset
//! filter suppresses any racing pair covered by a common monitor; the
//! predictive backend honors that suppression only when the two tasks
//! conflict on state *beyond the racing variable*
//! ([`PredictModel::tasks_conflict_besides`]) — a WCP-style
//! release-acquire trust limited to critical sections that demonstrably
//! sequence other shared data. A lock whose sections touch only the
//! racing pointer does not decide the order of its sections, so the
//! pair stays reportable and replay decides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use cafa_hb::bitset::BitSet;
use cafa_hb::{
    base_graph, resolve_threads, CausalityConfig, EdgeKind, EventTable, HbError, NodeId,
    ReachOracle, SyncGraph,
};
use cafa_trace::{OpRef, QueueId, Record, TaskId, Trace, VarId};

/// Upper bound on fixpoint rounds, same safety net as the HB engine.
const MAX_ROUNDS: u32 = 64;

/// A failure while building the predictive model.
#[derive(Debug)]
#[non_exhaustive]
pub enum PredictError {
    /// The underlying graph machinery failed (malformed trace, cycle).
    Hb(HbError),
    /// The conflict-gated fixpoint failed to converge within the round
    /// limit. The gate only removes rule firings, so this can only
    /// happen on traces where the HB fixpoint diverges too.
    Diverged {
        /// Rounds executed before giving up.
        rounds: u32,
    },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::Hb(e) => write!(f, "predictive model: {e}"),
            PredictError::Diverged { rounds } => write!(
                f,
                "predictive rule fixpoint failed to converge after {rounds} rounds"
            ),
        }
    }
}

impl std::error::Error for PredictError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PredictError::Hb(e) => Some(e),
            PredictError::Diverged { .. } => None,
        }
    }
}

impl From<HbError> for PredictError {
    fn from(e: HbError) -> Self {
        PredictError::Hb(e)
    }
}

impl From<PredictError> for HbError {
    fn from(e: PredictError) -> Self {
        match e {
            PredictError::Hb(e) => e,
            PredictError::Diverged { rounds } => HbError::diverged_after(rounds),
        }
    }
}

/// Statistics about a completed predictive-model build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictStats {
    /// Event tasks in the trace.
    pub events: usize,
    /// Send sites feeding the queue rules.
    pub sends: usize,
    /// Conflict-scoped external-input edges added (gesture pairs whose
    /// handlers conflict).
    pub external_edges: usize,
    /// Rounds until the gated fixpoint converged (≥ 1).
    pub rounds: u32,
    /// Rule instances evaluated (premise candidates + side-condition
    /// checks), the naive re-test-everything count.
    pub instances: u64,
    /// Rule conclusions suppressed by the conflict gate: orderings the
    /// HB model materializes that this relation deliberately drops.
    pub gated: u64,
    /// Atomicity/queue edges actually added.
    pub derived_edges: usize,
}

/// One `send`/`sendAtFront` occurrence (the HB crate's equivalent
/// structure is crate-private).
#[derive(Clone, Copy, Debug)]
struct SendSite {
    node: NodeId,
    event: TaskId,
    queue: QueueId,
    delay_ms: u64,
    front: bool,
}

/// The predictive partial order over one trace, queryable per
/// operation pair through the same chain-decomposition oracle the HB
/// model uses.
#[derive(Debug)]
pub struct PredictModel {
    graph: SyncGraph,
    oracle: ReachOracle,
    /// Per task: the variables its body accesses.
    access: Vec<BitSet>,
    stats: PredictStats,
}

impl PredictModel {
    /// Builds the predictive order for `trace`: hard base edges, the
    /// conflict-scoped external rule, then the conflict-gated §3.3
    /// fixpoint, closed into a [`ReachOracle`] using up to `threads`
    /// workers (0 = auto). Deterministic at every thread count.
    ///
    /// # Errors
    ///
    /// [`PredictError::Hb`] on malformed traces or a cyclic relation
    /// (impossible for recorded executions), [`PredictError::Diverged`]
    /// if the fixpoint exceeds its round limit.
    pub fn build(trace: &Trace, threads: usize) -> Result<Self, PredictError> {
        let mut config = CausalityConfig::cafa();
        config.external_rule = false;
        let mut g = base_graph(trace, &config);
        let table = EventTable::new(trace)?;
        let access = access_sets(trace);
        let mut stats = PredictStats {
            events: table.len(),
            ..PredictStats::default()
        };

        // Conflict-scoped external-input rule: order a gesture pair
        // only when the handlers share state. The HB chain orders all
        // pairs transitively, so every edge added here is HB-implied.
        let ext = trace.external_events();
        for (i, &a) in ext.iter().enumerate() {
            for &b in &ext[i + 1..] {
                if conflicts(&access, a, b) && g.add_edge(g.end(a), g.begin(b), EdgeKind::External)
                {
                    stats.external_edges += 1;
                }
            }
        }

        let sends = collect_sends(&g, trace);
        stats.sends = sends.len();
        fixpoint(&mut g, trace, &table, &sends, &access, &mut stats)?;

        let oracle = ReachOracle::build(&g, resolve_threads(threads))
            .map_err(|nodes| PredictError::Hb(HbError::cyclic(&g, &nodes)))?;
        Ok(Self {
            graph: g,
            oracle,
            access,
            stats,
        })
    }

    /// Does `a` happen before `b` under the predictive order? Same-task
    /// operations follow program order; cross-task pairs are bracketed
    /// to their surrounding sync nodes and answered by the oracle —
    /// the exact query discipline of `HbModel::happens_before`.
    pub fn happens_before(&self, a: OpRef, b: OpRef) -> bool {
        if a.task == b.task {
            return a.index < b.index;
        }
        self.oracle
            .reaches(self.graph.bracket_after(a), self.graph.bracket_before(b))
    }

    /// True when neither operation is predictive-ordered before the
    /// other.
    pub fn concurrent(&self, a: OpRef, b: OpRef) -> bool {
        !self.happens_before(a, b) && !self.happens_before(b, a)
    }

    /// Do the bodies of `a` and `b` access a common variable other than
    /// `var`? The predictive lockset relaxation: a common monitor
    /// suppresses a racing pair only when this holds — critical
    /// sections that sequence no state beyond the racing variable do
    /// not pin their own order, so the pair stays reportable.
    pub fn tasks_conflict_besides(&self, a: TaskId, b: TaskId, var: VarId) -> bool {
        let (sa, sb) = (&self.access[a.index()], &self.access[b.index()]);
        let skip = var.index();
        let (skip_word, skip_bit) = (skip / 64, 1u64 << (skip % 64));
        sa.words()
            .iter()
            .zip(sb.words())
            .enumerate()
            .any(|(w, (x, y))| {
                let mut both = x & y;
                if w == skip_word {
                    both &= !skip_bit;
                }
                both != 0
            })
    }

    /// Build statistics.
    pub fn stats(&self) -> PredictStats {
        self.stats
    }
}

/// Per task: the set of variables its body reads or writes (scalar or
/// pointer). The conflict relation of the gate.
fn access_sets(trace: &Trace) -> Vec<BitSet> {
    let width = trace
        .iter_ops()
        .filter_map(|(_, r)| r.accessed_var())
        .map(|v| v.index() + 1)
        .max()
        .unwrap_or(0);
    let mut sets = vec![BitSet::new(width); trace.task_count()];
    for (at, r) in trace.iter_ops() {
        if let Some(var) = r.accessed_var() {
            sets[at.task.index()].insert(var.index());
        }
    }
    sets
}

/// Do two tasks access a common variable?
fn conflicts(access: &[BitSet], a: TaskId, b: TaskId) -> bool {
    access[a.index()]
        .words()
        .iter()
        .zip(access[b.index()].words())
        .any(|(x, y)| x & y != 0)
}

/// Collects the send sites of `trace` (nodes resolved against `g`).
fn collect_sends(g: &SyncGraph, trace: &Trace) -> Vec<SendSite> {
    let mut sends = Vec::new();
    for (at, r) in trace.iter_ops() {
        let (event, queue, delay_ms, front) = match *r {
            Record::Send {
                event,
                queue,
                delay_ms,
            } => (event, queue, delay_ms, false),
            Record::SendAtFront { event, queue } => (event, queue, 0, true),
            _ => continue,
        };
        let node = g.node_of(at).expect("send records are sync nodes");
        sends.push(SendSite {
            node,
            event,
            queue,
            delay_ms,
            front,
        });
    }
    sends
}

/// Computes, for every node, which marked nodes reach it (strictly,
/// through at least one edge) — the naive full-sweep reachability the
/// HB reference engine uses per round.
fn flow(g: &SyncGraph, topo: &[NodeId], mark_of: &[Option<u32>], width: usize) -> Vec<BitSet> {
    let mut acc: Vec<BitSet> = vec![BitSet::new(0); g.node_count()];
    for &n in topo {
        let mut row = BitSet::new(width);
        for p in g.preds(n) {
            row.union_with(&acc[p as usize]);
            if let Some(m) = mark_of[p as usize] {
                row.insert(m as usize);
            }
        }
        acc[n as usize] = row;
    }
    acc
}

/// Immutable per-build rule indices.
struct RuleCtx<'a> {
    table: &'a EventTable,
    sends: &'a [SendSite],
    access: &'a [BitSet],
    /// Per queue: dense-event membership mask.
    queue_mask: Vec<BitSet>,
    /// Per queue: send-site membership mask.
    queue_send_mask: Vec<BitSet>,
    /// `begin(e)` / `end(e)` node per dense event.
    event_begin: Vec<NodeId>,
    event_end: Vec<NodeId>,
    /// Dense event → its (unique) posting send site, if any.
    send_of_event: Vec<Option<u32>>,
    /// Node → dense source marks for the three flow families.
    begin_marks: Vec<Option<u32>>,
    end_marks: Vec<Option<u32>>,
    send_marks: Vec<Option<u32>>,
}

impl<'a> RuleCtx<'a> {
    fn new(
        g: &SyncGraph,
        trace: &Trace,
        table: &'a EventTable,
        sends: &'a [SendSite],
        access: &'a [BitSet],
    ) -> Self {
        let ev_count = table.len();
        let mut queue_mask = vec![BitSet::new(ev_count); trace.queue_count()];
        for (i, &q) in table.queue_of.iter().enumerate() {
            queue_mask[q.index()].insert(i);
        }
        let mut queue_send_mask = vec![BitSet::new(sends.len()); trace.queue_count()];
        for (i, s) in sends.iter().enumerate() {
            queue_send_mask[s.queue.index()].insert(i);
        }
        let mut begin_marks: Vec<Option<u32>> = vec![None; g.node_count()];
        let mut end_marks: Vec<Option<u32>> = vec![None; g.node_count()];
        for (i, &e) in table.events.iter().enumerate() {
            begin_marks[g.begin(e) as usize] = Some(i as u32);
            end_marks[g.end(e) as usize] = Some(i as u32);
        }
        let event_begin: Vec<NodeId> = table.events.iter().map(|&e| g.begin(e)).collect();
        let event_end: Vec<NodeId> = table.events.iter().map(|&e| g.end(e)).collect();
        let mut send_marks: Vec<Option<u32>> = vec![None; g.node_count()];
        let mut send_of_event: Vec<Option<u32>> = vec![None; ev_count];
        for (i, s) in sends.iter().enumerate() {
            send_marks[s.node as usize] = Some(i as u32);
            // Each event is posted by at most one send (trace validation).
            if let Some(d) = table.dense(s.event) {
                send_of_event[d as usize] = Some(i as u32);
            }
        }
        Self {
            table,
            sends,
            access,
            queue_mask,
            queue_send_mask,
            event_begin,
            event_end,
            send_of_event,
            begin_marks,
            end_marks,
            send_marks,
        }
    }

    /// The conflict gate on a dense event pair.
    fn gate(&self, i: usize, j: usize) -> bool {
        conflicts(self.access, self.table.events[i], self.table.events[j])
    }
}

/// Round-start reachability facts.
struct Rows {
    acc_end: Vec<BitSet>,
    acc_begin: Vec<BitSet>,
    acc_send: Option<Vec<BitSet>>,
}

/// Round-local working-set scratch (the chain-folding discipline of the
/// HB engine, without its memo/delta machinery).
struct Scratch {
    /// Saved working set per anchor that fired this round.
    evord: Vec<BitSet>,
    fired: Vec<u32>,
    fired_mask: BitSet,
    set: BitSet,
    fresh: Vec<usize>,
    empty: BitSet,
    empty_send: BitSet,
}

impl Scratch {
    fn new(ev_count: usize, send_count: usize) -> Self {
        Self {
            evord: vec![BitSet::new(0); ev_count],
            fired: Vec::new(),
            fired_mask: BitSet::new(ev_count),
            set: BitSet::new(ev_count),
            fresh: Vec::new(),
            empty: BitSet::new(ev_count),
            empty_send: BitSet::new(send_count),
        }
    }
}

/// Absorbs a fired conclusion `end(e_i1) → begin(e_j)` into the
/// anchor's working set, folding `e_i1`'s own prior when it is ordered
/// earlier this round — so an already-ordered chain materializes only
/// its frontier edges instead of all O(n²) transitive pairs.
#[allow(clippy::too_many_arguments)]
fn absorb(
    set: &mut BitSet,
    evord: &[BitSet],
    fired_mask: &BitSet,
    empty: &BitSet,
    rows: &Rows,
    ctx: &RuleCtx<'_>,
    order_pos: &[u32],
    i1: usize,
    j: usize,
) {
    set.insert(i1);
    if order_pos[i1] >= order_pos[j] {
        return;
    }
    // Folding i1's prior claims end(x) ≺ begin(i1) ≺ end(i1) ≺ begin(j);
    // the middle link is i1's own begin→end chain, present once sealed.
    if !rows.acc_begin[ctx.event_end[i1] as usize].contains(i1) {
        return;
    }
    if fired_mask.contains(i1) {
        set.union_with(&evord[i1]);
        return;
    }
    set.union_with(&rows.acc_end[ctx.event_begin[i1] as usize]);
    // i1's fired begin-predecessors: end(x) ≺ begin(k) ≺ begin(i1)
    // ≺ end(i1) ≺ begin(j) for every x in their saved sets.
    let row = &rows.acc_begin[ctx.event_begin[i1] as usize];
    row.for_each_in_diff(fired_mask, empty, |k| {
        set.union_with(&evord[k]);
    });
}

/// One round of the conflict-gated rules over round-start facts: the
/// atomicity rule and queue rules 1/3 at every anchor (event order),
/// then the memo-less front-send rules 2/4. Identical premise and
/// side-condition logic to the HB engine's round core; the only
/// difference is the gate applied to each conclusion's event pair.
fn run_round(
    g: &mut SyncGraph,
    ctx: &RuleCtx<'_>,
    rows: &Rows,
    anchors: &[u32],
    positions: (&[u32], &[u32]),
    sc: &mut Scratch,
    stats: &mut PredictStats,
) {
    let (topo_pos, order_pos) = positions;
    let Scratch {
        evord,
        fired,
        fired_mask,
        set,
        fresh,
        empty,
        empty_send,
    } = sc;
    fired.clear();
    fired_mask.clear();

    for &j32 in anchors {
        let j = j32 as usize;
        let begin_j = ctx.event_begin[j];

        // Working set: events whose end ≺ begin(e_j) at round start,
        // plus this round's conclusions at begin-predecessors.
        set.copy_from(&rows.acc_end[begin_j as usize]);
        rows.acc_begin[begin_j as usize].for_each_in_diff(fired_mask, empty, |k| {
            set.union_with(&evord[k]);
        });
        let mut anchor_fired = false;

        // Atomicity rule: same-looper e1 with begin(e1) ≺ end(e_j).
        {
            let reach_end = &rows.acc_begin[ctx.event_end[j] as usize];
            let mask = &ctx.queue_mask[ctx.table.queue_of[j].index()];
            fresh.clear();
            reach_end.for_each_in_diff(mask, empty, |i1| {
                if i1 != j {
                    fresh.push(i1);
                }
            });
            stats.instances += fresh.len() as u64;
            // Latest predecessors first, as in the HB engine: firing
            // the nearest pair first lets its absorbed set imply the
            // earlier ones, keeping materialized edges near-linear.
            fresh.sort_by_key(|&i1| std::cmp::Reverse(topo_pos[ctx.event_begin[i1] as usize]));
            for &i1 in fresh.iter() {
                if set.contains(i1) {
                    continue; // already implied
                }
                if !ctx.gate(i1, j) {
                    stats.gated += 1;
                    continue; // HB would order this pair; we drop it
                }
                if g.add_edge(g.end(ctx.table.events[i1]), begin_j, EdgeKind::Atomicity) {
                    stats.derived_edges += 1;
                    anchor_fired = true;
                    absorb(set, evord, fired_mask, empty, rows, ctx, order_pos, i1, j);
                }
            }
        }

        // Queue rules 1 and 3, with e_j as the later-sent event.
        if let (Some(acc_send), Some(sj)) = (rows.acc_send.as_ref(), ctx.send_of_event[j]) {
            let sj = sj as usize;
            let s2 = ctx.sends[sj];
            if !s2.front {
                let reach = &acc_send[s2.node as usize];
                let mask = &ctx.queue_send_mask[s2.queue.index()];
                fresh.clear();
                reach.for_each_in_diff(mask, empty_send, |i| {
                    if i != sj {
                        fresh.push(i);
                    }
                });
                stats.instances += fresh.len() as u64;
                fresh.sort_by_key(|&i| {
                    ctx.table
                        .dense(ctx.sends[i].event)
                        .map(|d| std::cmp::Reverse(topo_pos[ctx.event_begin[d as usize] as usize]))
                        .unwrap_or(std::cmp::Reverse(0))
                });
                for &i in fresh.iter() {
                    let s1 = &ctx.sends[i];
                    if !(s1.front || s1.delay_ms <= s2.delay_ms) {
                        continue;
                    }
                    let i1 = ctx.table.dense(s1.event).expect("sent tasks are events") as usize;
                    if set.contains(i1) {
                        continue; // already implied
                    }
                    if !ctx.gate(i1, j) {
                        stats.gated += 1;
                        continue;
                    }
                    let rule = if s1.front { 3u8 } else { 1 };
                    if g.add_edge(g.end(s1.event), begin_j, EdgeKind::Queue(rule)) {
                        stats.derived_edges += 1;
                        anchor_fired = true;
                        absorb(set, evord, fired_mask, empty, rows, ctx, order_pos, i1, j);
                    }
                }
            }
        }

        if anchor_fired {
            evord[j].copy_from(set);
            fired_mask.insert(j);
            fired.push(j32);
        }
    }

    // Queue rules 2 and 4: a front-send s2 ordered after s1, with
    // s2 ≺ begin(e1) — the conclusion reverses (e2 runs first).
    if let Some(acc_send) = rows.acc_send.as_ref() {
        for (j, s2) in ctx.sends.iter().enumerate() {
            if !s2.front {
                continue;
            }
            let reach = &acc_send[s2.node as usize];
            let mask = &ctx.queue_send_mask[s2.queue.index()];
            for i in reach.iter() {
                if i == j || !mask.contains(i) {
                    continue;
                }
                stats.instances += 1;
                let s1 = &ctx.sends[i];
                let begin_e1 = g.begin(s1.event);
                if !acc_send[begin_e1 as usize].contains(j) {
                    continue; // side condition s2 ≺ begin(e1) not met
                }
                let i1 = ctx.table.dense(s1.event).expect("sent tasks are events") as usize;
                let i2 = ctx.table.dense(s2.event).expect("sent tasks are events") as usize;
                if rows.acc_end[ctx.event_begin[i1] as usize].contains(i2)
                    || (fired_mask.contains(i1) && evord[i1].contains(i2))
                    || fired.iter().any(|&k| {
                        rows.acc_begin[ctx.event_begin[i1] as usize].contains(k as usize)
                            && evord[k as usize].contains(i2)
                    })
                {
                    continue; // already implied
                }
                if !ctx.gate(i2, i1) {
                    stats.gated += 1;
                    continue;
                }
                let rule = if s1.front { 4u8 } else { 2 };
                if g.add_edge(g.end(s2.event), begin_e1, EdgeKind::Queue(rule)) {
                    stats.derived_edges += 1;
                }
            }
        }
    }
}

/// The naive round loop: full flow sweeps, re-test every rule instance,
/// stop when no new edge appears. Matches the HB reference engine's
/// naive fixpoint structure; the conflict gate only removes firings,
/// so convergence is inherited.
fn fixpoint(
    g: &mut SyncGraph,
    trace: &Trace,
    table: &EventTable,
    sends: &[SendSite],
    access: &[BitSet],
    stats: &mut PredictStats,
) -> Result<(), PredictError> {
    let ev_count = table.len();
    if ev_count == 0 {
        g.topo_order()
            .map_err(|nodes| PredictError::Hb(HbError::cyclic(g, &nodes)))?;
        stats.rounds = 1;
        return Ok(());
    }
    let ctx = RuleCtx::new(g, trace, table, sends, access);

    let track_send = !sends.is_empty();
    let mut topo_pos: Vec<u32> = vec![0; g.node_count()];
    let mut event_order: Vec<u32> = (0..ev_count as u32).collect();
    let mut order_pos: Vec<u32> = vec![0; ev_count];
    let mut sc = Scratch::new(ev_count, sends.len());

    loop {
        stats.rounds += 1;
        if stats.rounds > MAX_ROUNDS {
            return Err(PredictError::Diverged {
                rounds: stats.rounds - 1,
            });
        }
        let topo = g
            .topo_order()
            .map_err(|nodes| PredictError::Hb(HbError::cyclic(g, &nodes)))?;

        let acc_end = flow(g, &topo, &ctx.end_marks, ev_count);
        let acc_begin = flow(g, &topo, &ctx.begin_marks, ev_count);
        let acc_send = track_send.then(|| flow(g, &topo, &ctx.send_marks, sends.len()));

        for (pos, &n) in topo.iter().enumerate() {
            topo_pos[n as usize] = pos as u32;
        }
        event_order.sort_by_key(|&i| topo_pos[ctx.event_begin[i as usize] as usize]);
        for (pos, &i) in event_order.iter().enumerate() {
            order_pos[i as usize] = pos as u32;
        }

        let rows = Rows {
            acc_end,
            acc_begin,
            acc_send,
        };
        let before = g.edge_log().len();
        run_round(
            g,
            &ctx,
            &rows,
            &event_order,
            (&topo_pos, &order_pos),
            &mut sc,
            stats,
        );
        if g.edge_log().len() == before {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafa_trace::TraceBuilder;

    /// Two externally posted gestures whose handlers conflict stay
    /// ordered; an unrelated pair becomes concurrent (HB orders both).
    #[test]
    fn external_rule_is_conflict_scoped() {
        let mut b = TraceBuilder::new("ext");
        let p = b.add_process();
        let q = b.add_queue(p);
        let t1 = b.external(q, "tap1");
        let t2 = b.external(q, "tap2");
        let t3 = b.external(q, "tap3");
        b.process_event(t1);
        b.process_event(t2);
        b.process_event(t3);
        let shared = VarId::new(0);
        let lonely = VarId::new(1);
        let u1 = b.write(t1, shared);
        let u2 = b.read(t2, shared);
        let u3 = b.read(t3, lonely);
        let trace = b.finish().unwrap();

        let m = PredictModel::build(&trace, 1).unwrap();
        assert!(
            m.happens_before(u1, u2),
            "conflicting gestures stay ordered"
        );
        assert!(m.concurrent(u1, u3), "independent gestures decouple");
        assert!(m.concurrent(u2, u3));
        assert_eq!(m.stats().external_edges, 1);
    }

    /// The queue rules still fire between conflicting events but are
    /// gated off for disjoint ones.
    #[test]
    fn queue_rule_is_conflict_gated() {
        let shared = VarId::new(0);
        let other = VarId::new(1);

        // Conflicting pair: ordered sends, equal delays → rule 1 fires.
        let mut b = TraceBuilder::new("gated");
        let p = b.add_process();
        let q = b.add_queue(p);
        let src = b.add_thread(p, "src");
        let e1 = b.post(src, q, "e1", 5);
        let e2 = b.post(src, q, "e2", 5);
        b.process_event(e1);
        b.process_event(e2);
        let a1 = b.write(e1, shared);
        let a2 = b.read(e2, shared);
        let trace = b.finish().unwrap();
        let m = PredictModel::build(&trace, 1).unwrap();
        assert!(m.happens_before(a1, a2), "conflicting FIFO pair kept");
        assert!(m.stats().derived_edges >= 1);

        // Disjoint pair: same shape, no shared variable → concurrent.
        let mut b = TraceBuilder::new("gated2");
        let p = b.add_process();
        let q = b.add_queue(p);
        let src = b.add_thread(p, "src");
        let e1 = b.post(src, q, "e1", 5);
        let e2 = b.post(src, q, "e2", 5);
        b.process_event(e1);
        b.process_event(e2);
        let a1 = b.write(e1, shared);
        let a2 = b.read(e2, other);
        let trace = b.finish().unwrap();
        let m = PredictModel::build(&trace, 1).unwrap();
        assert!(m.concurrent(a1, a2), "disjoint FIFO pair decoupled");
        assert!(m.stats().gated >= 1);
    }

    /// Hard causality (post→begin) is never relaxed.
    #[test]
    fn base_edges_are_hard() {
        let mut b = TraceBuilder::new("base");
        let p = b.add_process();
        let q = b.add_queue(p);
        let src = b.add_thread(p, "src");
        let v = VarId::new(0);
        let w = b.write(src, v);
        let e = b.post(src, q, "e", 0);
        b.process_event(e);
        let r = b.read(e, v);
        let trace = b.finish().unwrap();
        let m = PredictModel::build(&trace, 1).unwrap();
        assert!(m.happens_before(w, r));
    }

    /// The lockset relaxation: conflict beyond the racing variable.
    #[test]
    fn conflict_besides_excludes_the_racing_var() {
        let mut b = TraceBuilder::new("locks");
        let p = b.add_process();
        let t1 = b.add_thread(p, "a");
        let t2 = b.add_thread(p, "b");
        let ptr = VarId::new(0);
        let flag = VarId::new(1);
        b.write(t1, ptr);
        b.write(t2, ptr);
        b.write(t1, flag);
        let trace = b.finish().unwrap();
        let m = PredictModel::build(&trace, 1).unwrap();
        assert!(
            !m.tasks_conflict_besides(t1, t2, ptr),
            "only the pair's var"
        );

        let mut b = TraceBuilder::new("locks2");
        let p = b.add_process();
        let t1 = b.add_thread(p, "a");
        let t2 = b.add_thread(p, "b");
        b.write(t1, ptr);
        b.write(t2, ptr);
        b.write(t1, flag);
        b.write(t2, flag);
        let trace = b.finish().unwrap();
        let m = PredictModel::build(&trace, 1).unwrap();
        assert!(
            m.tasks_conflict_besides(t1, t2, ptr),
            "flag conflicts beyond ptr"
        );
    }
}
